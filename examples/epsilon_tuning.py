#!/usr/bin/env python3
"""Tuning epsilon: solution quality versus reconfiguration cost.

Section IV's knob in practice: sweep epsilon on one workload and print
the trade-off between load balance (and locality) and the block
movement the optimizer generates.  The paper's testbed settled on
``epsilon = 0.8`` "as suggested by our simulations"; this example shows
how to re-derive that choice for your own workload.

Run with ``python examples/epsilon_tuning.py``.
"""

import numpy as np

from repro.core.admissibility import (
    theorem9_approximation_factor,
    theorem9_iteration_bound,
)
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import render_table
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def main() -> None:
    trace = generate_yahoo_trace(YahooTraceConfig(
        num_files=80,
        jobs_per_hour=450.0,
        duration_hours=2.0,
        mean_task_duration=90.0,
        seed=3,
    ))
    cluster = ClusterConfig(
        num_racks=6, machines_per_rack=6, capacity_blocks=200,
        slots_per_machine=4,
    )
    rows = []
    for epsilon in (0.1, 0.3, 0.6, 0.8):
        result = run_experiment(trace, ExperimentConfig(
            system=SystemKind.AURORA,
            cluster=cluster,
            epsilon=epsilon,
            seed=2,
        ))
        loads = np.array(result.machine_task_loads)
        rows.append((
            epsilon,
            result.remote_fraction * 100,
            float(loads.std()),
            result.moves_per_machine_per_hour,
            theorem9_approximation_factor(rack_aware=True, epsilon=epsilon),
        ))
    print(render_table(
        ["epsilon", "remote tasks %", "load stddev", "moves/machine/h",
         "guaranteed factor"],
        rows,
    ))
    print()
    bound = theorem9_iteration_bound(sol=100.0, opt=10.0, epsilon=0.5)
    print(
        "Theorem 9: from a 10x-off start, epsilon=0.5 converges within "
        f"{bound:.1f} admissible operations"
    )
    print(
        "pick the largest epsilon whose locality you can accept — "
        "movement falls with epsilon while the guarantee degrades "
        "gracefully (4 + 3*epsilon)"
    )


if __name__ == "__main__":
    main()
