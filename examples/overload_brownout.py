#!/usr/bin/env python3
"""Overload protection and Aurora brownout, end to end.

Demonstrates the graceful-degradation stack in ``repro.overload`` on a
live simulation: bounded per-datanode service queues shed excess work
by priority (client reads outrank re-replication outrank migration),
per-node circuit breakers stop the client hammering saturated
replicas, hedged reads race a slow primary against the next-best
replica, and the Aurora optimizer detects the overload and browns out
— raising its admissibility threshold and deferring every planned
migration until the storm passes.

Run with ``python examples/overload_brownout.py``.
"""

import dataclasses
import random

from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import DatanodeUnavailableError
from repro.overload import OverloadConfig, ShedPolicy, install_overload_protection
from repro.simulation.engine import Simulation

SEED = 3
HORIZON = 480.0       # an 8-minute storm ...
CALM_AT = 300.0       # ... that calms down after 5 minutes
TICK = 5.0
SERVICE_RATE = 2.0    # reads/s each datanode can actually serve
STORM_MULTIPLIER = 2.0


def main() -> None:
    sim = Simulation()
    topology = ClusterTopology.uniform(3, 4, capacity=100)
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(SEED)),
        sim=sim,
        transfer_service=TransferService(topology, sim=sim,
                                         rng=random.Random(SEED + 1)),
        rng=random.Random(SEED + 2),
    )
    HeartbeatService(sim, namenode, interval=3.0, expiry=30.0).start()

    # Arm the whole stack: bounded queues with priority shedding on
    # every datanode, token-bucket admission over background traffic,
    # and one circuit breaker per node for the client to consult.
    protection = install_overload_protection(namenode, OverloadConfig(
        queue_capacity=8,
        service_rate=SERVICE_RATE,
        shed_policy=ShedPolicy.PRIORITY,
        hedge_latency_budget=2.0,
    ))
    client = DfsClient(namenode, breakers=protection.breakers(),
                       hedge_latency_budget=2.0)

    blocks = []
    for i in range(8):
        blocks.extend(client.write_file(f"/hot/file-{i}", 4).block_ids)
    print(f"cluster: {topology.describe()}, {len(blocks)} blocks at 3x")

    # Aurora with brownout: under sustained overload it raises epsilon
    # (tolerating more imbalance) and defers its migration replay — the
    # rebalancing traffic would only deepen the queues it is reacting to.
    aurora = AuroraSystem(namenode, AuroraConfig(
        epsilon=0.1, window=240.0, period=120.0,
        brownout_enter_threshold=0.5, brownout_exit_threshold=0.25,
    ))
    # Feed brownout the *high-water mark* of mean cluster saturation
    # since the last period — queues drain between ticks, so a single
    # instantaneous sample at the period boundary can miss the storm.
    window_peak = [0.0]

    def high_water() -> float:
        peak = window_peak[0]
        window_peak[0] = 0.0
        return peak

    aurora.saturation_provider = high_water
    aurora.run_periodic(sim)
    sim.schedule_periodic(1.0, lambda: window_peak.__setitem__(
        0, max(window_peak[0], namenode.cluster_saturation())
    ))

    rng = random.Random(SEED + 3)
    served = shed = 0

    def read_tick() -> None:
        # 2x capacity while the storm lasts, 0.2x after.
        multiplier = STORM_MULTIPLIER if sim.now < CALM_AT else 0.2
        offered = round(multiplier * topology.num_machines
                        * SERVICE_RATE * TICK)
        weights = [1.0 / (rank + 1) for rank in range(len(blocks))]
        for block in rng.choices(blocks, weights=weights, k=offered):
            delay = rng.uniform(0.0, TICK)
            reader = rng.randrange(topology.num_machines)
            sim.schedule(delay, lambda b=block, r=reader: one_read(b, r))

    def one_read(block: int, reader: int) -> None:
        nonlocal served, shed
        try:
            client.read_block(block, reader)
            served += 1
        except DatanodeUnavailableError:
            shed += 1

    sim.schedule_periodic(TICK, read_tick)
    sim.run(until=HORIZON)

    print(f"\nstorm over at t={sim.now:.0f}s: {served} reads served, "
          f"{shed} refused fast (no unbounded queueing)")
    print(f"client: {client.hedged_reads} hedged reads "
          f"({client.hedge_wins} won), {client.breaker_skips} breaker skips")
    tripped = sum(1 for b in client.breakers.values() if b.trips)
    print(f"breakers: {tripped}/{len(client.breakers)} nodes tripped "
          f"at least once")
    print(f"queues: {protection.total_served()} served, "
          f"{protection.total_shed()} shed across the cluster")

    print("\naurora periods:")
    for index, report in enumerate(aurora.reports):
        state = "BROWNOUT" if report.brownout else "normal  "
        print(f"  period {index}: {state} saturation={report.saturation:.2f} "
              f"epsilon={report.effective_epsilon:.2f} "
              f"moves deferred={report.deferred_moves}")
    browned = [r for r in aurora.reports if r.brownout]
    assert browned, "the storm should push Aurora into brownout"
    assert not aurora.reports[-1].brownout, (
        "brownout should clear once load drops"
    )
    total_deferred = sum(r.deferred_moves for r in browned)
    print(f"\nbrownout engaged for {len(browned)} period(s), deferred "
          f"{total_deferred} migrations, cleared after the storm calmed")


if __name__ == "__main__":
    main()
