#!/usr/bin/env python3
"""DFS administration tour: namespace, balancer, decommission, recovery.

Walks the operational surface of the HDFS-like substrate — the pieces a
cluster operator would touch day to day — independent of Aurora:

1. a hierarchical namespace (mkdir / rename / recursive delete);
2. the stock disk-usage balancer (the tool the paper contrasts with
   Aurora's load-aware balancing);
3. graceful datanode decommissioning;
4. namenode crash recovery from the edit log plus block reports.

Run with ``python examples/dfs_admin.py``.
"""

import random

from repro.cluster.topology import ClusterTopology
from repro.dfs import (
    Balancer,
    DfsClient,
    Namenode,
    attach_edit_log,
    recover_namenode,
)
from repro.dfs.policies import DefaultHdfsPolicy


def main() -> None:
    topology = ClusterTopology.uniform(3, 4, capacity=60)
    namenode = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(0)),
        rng=random.Random(0),
    )
    log = attach_edit_log(namenode)
    client = DfsClient(namenode)

    # 1. Namespace operations.
    namenode.mkdir("/warehouse/raw")
    for i in range(4):
        client.write_file(f"/warehouse/raw/part-{i}", num_blocks=3)
    client.write_file("/staging/incoming", num_blocks=2)
    print("namespace:", namenode.list_files())
    namenode.rename("/staging/incoming", "/warehouse/raw/part-4")
    print("after rename:", namenode.list_directory("/warehouse/raw"))

    # 2. The disk-usage balancer.
    for i in range(12):
        client.write_file(
            f"/skewed/f{i}", num_blocks=1, writer=0,
            replication=1, rack_spread=1,
        )
    balancer = Balancer(namenode, threshold=0.05, rng=random.Random(1))
    print(
        f"\nnode 0 disk before balancing: "
        f"{namenode.datanode(0).disk_utilization:.0%}"
    )
    report = balancer.run()
    print(report.describe())
    print(
        f"node 0 disk after balancing: "
        f"{namenode.datanode(0).disk_utilization:.0%}"
    )

    # 3. Graceful decommission.
    victim = 5
    moves = namenode.decommission_node(victim)
    print(
        f"\ndecommissioned node {victim}: {moves} replicas migrated, "
        f"drained={namenode.is_decommissioned(victim)}"
    )
    assert all(
        namenode.is_file_available(path) for path in namenode.list_files()
    )

    # 4. Namenode crash recovery.
    fresh = Namenode(
        topology,
        placement_policy=DefaultHdfsPolicy(random.Random(9)),
        rng=random.Random(9),
    )
    recover_namenode(fresh, log, surviving_datanodes=namenode.datanodes)
    same_namespace = fresh.list_files() == namenode.list_files()
    print(
        f"\nnamenode restarted from {len(log)} journal entries; "
        f"namespace identical: {same_namespace}"
    )
    fresh.audit()
    print("post-recovery audit passed")


if __name__ == "__main__":
    main()
