#!/usr/bin/env python3
"""Hotspot mitigation: Aurora vs stock HDFS on a skewed workload.

The scenario the paper's introduction motivates: a MapReduce cluster
whose file popularity follows a long tail, so the machines owning
popular blocks become performance hotspots.  This example replays the
same Yahoo!-like trace under stock HDFS and under Aurora (with dynamic
replication) and prints the locality, balance and overhead comparison.

Run with ``python examples/hotspot_mitigation.py``.
"""

import numpy as np

from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import render_table
from repro.workload.popularity import top_share
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace


def main() -> None:
    trace = generate_yahoo_trace(YahooTraceConfig(
        num_files=80,
        jobs_per_hour=450.0,
        duration_hours=2.0,
        mean_task_duration=90.0,
        seed=42,
    ))
    accesses = list(trace.accesses_per_file().values())
    print(
        f"workload: {trace.num_jobs} jobs over {trace.num_files} files; "
        f"the hottest sixth of files draws "
        f"{top_share(accesses, 1 / 6) * 100:.0f}% of all accesses"
    )

    cluster = ClusterConfig(
        num_racks=6, machines_per_rack=6, capacity_blocks=200,
        slots_per_machine=4,
    )
    rows = []
    for label, system, budget in (
        ("HDFS", SystemKind.HDFS, None),
        ("Aurora", SystemKind.AURORA, trace.total_blocks),
    ):
        result = run_experiment(trace, ExperimentConfig(
            system=system,
            cluster=cluster,
            epsilon=0.1,
            budget_extra_blocks=budget,
            seed=1,
        ))
        loads = np.array(result.machine_task_loads)
        mean_jct = float(np.mean(list(result.job_completions.values())))
        rows.append((
            label,
            result.remote_fraction * 100,
            float(loads.std()),
            mean_jct,
            result.moves_per_machine_per_hour,
        ))
    print()
    print(render_table(
        ["system", "remote tasks %", "load stddev", "mean job time (s)",
         "moves/machine/h"],
        rows,
    ))
    hdfs, aurora = rows
    print()
    print(
        f"Aurora cuts remote tasks from {hdfs[1]:.1f}% to {aurora[1]:.1f}% "
        f"and mean job completion from {hdfs[3]:.0f}s to {aurora[3]:.0f}s"
    )


if __name__ == "__main__":
    main()
