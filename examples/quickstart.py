#!/usr/bin/env python3
"""Quickstart: the core placement API in five minutes.

Builds a small cluster and a long-tail block population, then walks the
paper's pipeline end to end:

1. choose replication factors under a budget (Algorithm 3 / Rep-Factor);
2. place all replicas greedily (Algorithm 4);
3. balance machine load with rack-aware local search (Algorithm 2);
4. certify the result against the theoretical lower bounds.

Run with ``python examples/quickstart.py``.
"""

from repro.cluster.topology import ClusterTopology
from repro.core import (
    BlockSpec,
    PlacementProblem,
    PlacementState,
    RelativeGapPolicy,
    balance_rack_aware,
    combined_lower_bound,
    compute_replication_factors,
    place_all_blocks,
)
from repro.workload.popularity import zipf_weights


def main() -> None:
    # A 4-rack, 16-machine cluster; each machine stores up to 60 blocks.
    topology = ClusterTopology.uniform(4, 4, capacity=60)
    print(f"cluster: {topology.describe()}")

    # 100 blocks with long-tail (Zipf) popularity.
    num_blocks = 100
    weights = zipf_weights(num_blocks, skew=1.1)
    popularities = {i: float(10_000 * w) for i, w in enumerate(weights)}

    # Step 1 — Algorithm 3: replication factors under a global budget.
    budget = 3 * num_blocks + 80  # 3 replicas minimum, 80 extra
    factors = compute_replication_factors(
        popularities,
        min_factors={i: 3 for i in range(num_blocks)},
        budget=budget,
        num_machines=topology.num_machines,
    )
    hottest = max(popularities, key=popularities.get)
    print(
        f"Rep-Factor: hottest block gets {factors.factors[hottest]} replicas, "
        f"max per-replica popularity {factors.max_share:.1f} "
        f"(budget used {factors.budget_used}/{budget})"
    )

    # Step 2 — Algorithm 4: greedy initial placement.
    blocks = tuple(
        BlockSpec(
            block_id=i,
            popularity=popularities[i],
            replication_factor=factors.factors[i],
            rack_spread=2,
        )
        for i in range(num_blocks)
    )
    problem = PlacementProblem(topology=topology, blocks=blocks)
    state = PlacementState(problem)
    place_all_blocks(state)
    print(f"after Algorithm 4: max machine load {state.cost():.1f}")

    # Step 3 — Algorithm 2: epsilon-admissible rack-aware local search.
    stats = balance_rack_aware(state, policy=RelativeGapPolicy(epsilon=0.1))
    print(
        f"after Algorithm 2: max machine load {stats.final_cost:.1f} "
        f"({stats.total_operations} operations, "
        f"{stats.blocks_transferred} block transfers)"
    )

    # Step 4 — certify against the lower bounds of Section III.
    lower = combined_lower_bound(problem)
    print(
        f"lower bound {lower:.1f}; empirical ratio "
        f"{state.cost() / lower:.3f} (guarantee: <= 4)"
    )
    for spec in problem:
        assert state.rack_spread(spec.block_id) >= spec.rack_spread
    print("every block spans >= 2 racks - single-rack failures are survivable")


if __name__ == "__main__":
    main()
