#!/usr/bin/env python3
"""Extending the library: write your own block placement policy.

The namenode accepts any object implementing the
:class:`~repro.dfs.policies.BlockPlacementPolicy` protocol.  This
example implements a *power-of-two-choices* policy — sample two
candidate machines per replica, take the less loaded — and compares it
against stock random placement and Aurora's greedy controller on the
same write stream.

Run with ``python examples/custom_policy.py``.
"""

import random

from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy, LoadAwarePolicy
from repro.errors import CapacityExceededError
from repro.experiments.report import render_table
from repro.workload.popularity import zipf_weights


class PowerOfTwoChoicesPolicy:
    """Two random candidates per replica; the less loaded one wins.

    The classic balls-into-bins result: two choices drop the maximum
    load from Theta(log n / log log n) to Theta(log log n) — a nice
    middle ground between random (no load queries) and greedy (a full
    scan per replica).
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose_targets(self, context, meta, writer=None):
        topo = context.topology
        chosen = []
        chosen_racks = []

        def pick(candidates):
            pool = [
                node for node in candidates
                if node not in chosen and context.can_store(node, meta.block_id)
            ]
            if not pool:
                return None
            if len(pool) == 1:
                return pool[0]
            first, second = self._rng.sample(pool, 2)
            return min((first, second), key=context.node_load)

        first = writer if (
            writer is not None and context.can_store(writer, meta.block_id)
        ) else pick(list(topo.machines))
        if first is None:
            raise CapacityExceededError("no machine available")
        chosen.append(first)
        chosen_racks.append(topo.rack_of[first])
        while len(chosen_racks) < meta.rack_spread:
            other_racks = [r for r in topo.racks if r not in chosen_racks]
            self._rng.shuffle(other_racks)
            placed = False
            for rack in other_racks:
                node = pick(list(topo.machines_in_rack(rack)))
                if node is not None:
                    chosen.append(node)
                    chosen_racks.append(rack)
                    placed = True
                    break
            if not placed:
                raise CapacityExceededError("cannot satisfy rack spread")
        while len(chosen) < meta.replication_factor:
            pool = [
                node for rack in chosen_racks
                for node in topo.machines_in_rack(rack)
            ]
            node = pick(pool)
            if node is None:
                raise CapacityExceededError("chosen racks are full")
            chosen.append(node)
        return chosen


def evaluate(policy_name: str, policy, seed: int = 0) -> tuple:
    """Write a skewed block population and report the load imbalance."""
    topo = ClusterTopology.uniform(4, 5, capacity=200)
    nn = Namenode(topo, placement_policy=policy, rng=random.Random(seed))
    num_files = 60
    weights = zipf_weights(num_files, 1.1)
    popularity = {}
    for i, w in enumerate(weights):
        meta = nn.create_file(f"/f{i}", num_blocks=4)
        for block in meta.block_ids:
            popularity[block] = 10_000 * w / 4
    # Popularity-weighted machine loads under this placement.
    loads = [0.0] * topo.num_machines
    for block, pop in popularity.items():
        locations = nn.blockmap.locations(block)
        for node in locations:
            loads[node] += pop / len(locations)
    imbalance = max(loads) / (sum(loads) / len(loads))
    return policy_name, max(loads), imbalance


def main() -> None:
    rows = [
        evaluate("HDFS random", DefaultHdfsPolicy(random.Random(1))),
        evaluate("power-of-two", PowerOfTwoChoicesPolicy(random.Random(1))),
        evaluate("Aurora greedy (Alg 4)", LoadAwarePolicy()),
    ]
    print(render_table(
        ["policy", "max machine load", "max/mean imbalance"], rows
    ))
    print()
    print(
        "power-of-two needs only two load queries per replica yet "
        "narrows most of the gap between random and the full greedy scan"
    )


if __name__ == "__main__":
    main()
