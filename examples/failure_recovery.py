#!/usr/bin/env python3
"""Fault tolerance: rack failures, heartbeat detection and re-replication.

Demonstrates the reliability half of the placement problem: with
``rho = 2`` rack spread, no single node or Top-of-Rack switch failure
makes a file unreadable, and the namenode repairs replication as soon as
the heartbeat protocol detects an outage.

Run with ``python examples/failure_recovery.py``.
"""

import random

from repro.cluster.failures import generate_failure_plan
from repro.cluster.topology import ClusterTopology
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import LoadAwarePolicy
from repro.dfs.replication import TransferService
from repro.simulation.engine import Simulation


def main() -> None:
    sim = Simulation()
    topology = ClusterTopology.uniform(4, 5, capacity=100)
    namenode = Namenode(
        topology,
        placement_policy=LoadAwarePolicy(),
        sim=sim,
        transfer_service=TransferService(topology, sim=sim, jitter=0.0),
        rng=random.Random(0),
    )
    heartbeats = HeartbeatService(sim, namenode, interval=3.0, expiry=30.0)
    heartbeats.start()

    for i in range(10):
        namenode.create_file(f"/data/file-{i}", num_blocks=4)
    print(f"loaded 10 files / 40 blocks on {topology.describe()}")

    # 1. A whole rack dies (ToR switch failure).
    print("\n--- rack 0 fails ---")
    for node in topology.machines_in_rack(0):
        namenode.datanode(node).crash()
    available = all(
        namenode.is_file_available(f"/data/file-{i}") for i in range(10)
    )
    print(f"every file still readable during the outage: {available}")

    # 2. The heartbeat service detects the outage and repairs replication.
    sim.run(until=sim.now + 120.0)
    live = namenode.live_nodes()
    under = namenode.blockmap.under_replicated(live)
    print(
        f"after heartbeat detection (+120s): "
        f"{heartbeats.detected_failures} failures detected, "
        f"{len(under)} blocks still under-replicated"
    )

    # 3. The rack comes back; block reports restore its replicas.
    print("\n--- rack 0 recovers ---")
    namenode.recover_rack(0)
    sim.run(until=sim.now + 60.0)
    over = namenode.blockmap.over_replicated()
    print(
        f"recovered nodes re-reported their blocks; "
        f"{len(over)} blocks temporarily over-replicated "
        "(excess is trimmed lazily when space is needed)"
    )

    # 4. A randomized month of failures: availability never breaks.
    print("\n--- randomized failure schedule ---")
    plan = generate_failure_plan(
        topology,
        horizon=6 * 3600.0,
        rng=random.Random(1),
        machine_mtbf=2 * 3600.0,
        repair_time=300.0,
    )
    print(f"replaying {plan.machine_outages()} machine outages over 6 hours")
    violations = 0
    for event in plan:
        if event.is_recovery:
            namenode.recover_node(event.target)
        else:
            namenode.fail_node(event.target)
        for i in range(10):
            if not namenode.is_file_available(f"/data/file-{i}"):
                violations += 1
    print(f"availability violations observed: {violations}")
    assert violations == 0


if __name__ == "__main__":
    main()
