#!/usr/bin/env python3
"""Fault tolerance: a seeded fault-injection storm, end to end.

Demonstrates the reliability half of the placement problem with the
``repro.faults`` machinery: a :class:`FaultInjector` arms crashes, a
rack partition profile and flaky transfers on a live simulation; client
reads fail over across stale replicas while the heartbeat protocol
catches up; and the namenode's prioritized, throttled re-replication
queue (with retry-on-alternate-source) repairs every block.

Run with ``python examples/failure_recovery.py``.
"""

import random

from repro.cluster.topology import ClusterTopology
from repro.dfs.client import DfsClient
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.namenode import Namenode
from repro.dfs.policies import LoadAwarePolicy
from repro.dfs.replication import TransferService
from repro.errors import DatanodeUnavailableError
from repro.faults import (
    CrashProfile,
    FaultInjector,
    FlakyTransferProfile,
    PartitionProfile,
    RetryPolicy,
)
from repro.simulation.engine import Simulation

HORIZON = 1800.0  # a 30-minute storm
SEED = 0


def main() -> None:
    sim = Simulation()
    topology = ClusterTopology.uniform(4, 4, capacity=100)
    namenode = Namenode(
        topology,
        placement_policy=LoadAwarePolicy(),
        sim=sim,
        transfer_service=TransferService(topology, sim=sim,
                                         rng=random.Random(SEED)),
        rng=random.Random(SEED + 1),
        replication_throttle=4,
    )
    heartbeats = HeartbeatService(sim, namenode, interval=3.0, expiry=30.0)
    heartbeats.start()
    client = DfsClient(namenode)

    blocks = []
    for i in range(8):
        blocks.extend(client.write_file(f"/data/file-{i}", 4).block_ids)
    print(f"loaded 8 files / {len(blocks)} blocks on {topology.describe()}")

    # The retry policy the namenode applies to failed transfers — shown
    # here jitter-free so the schedule reads cleanly.
    backoffs = list(RetryPolicy(max_attempts=4, base_delay=5.0,
                                jitter=0.0).delays())
    print(f"transfer retry backoff schedule: {backoffs} seconds")

    # Arm the storm: fail-stop crashes, one rack's ToR switch, and
    # transfers that abort mid-flight.  One seed replays it exactly.
    injector = FaultInjector(
        sim, namenode,
        profiles=[
            CrashProfile(mtbf=900.0, repair_time=180.0),
            PartitionProfile(mtbf=2700.0, duration=120.0),
            FlakyTransferProfile(failure_probability=0.2),
        ],
        horizon=HORIZON, seed=SEED, heartbeats=heartbeats,
    )
    armed = injector.install()
    print(f"fault injector armed: {armed} timed outages over "
          f"{HORIZON / 60:.0f} minutes\n")

    # A steady read workload: the client discovers stale replicas by
    # trying, then fails over down the preference order.
    reads = {"served": 0, "failed": 0, "failovers": 0}
    reader_rng = random.Random(SEED + 2)

    def read_tick() -> None:
        block = reader_rng.choice(blocks)
        reader = reader_rng.randrange(topology.num_machines)
        try:
            outcome = client.read_block(block, reader)
        except DatanodeUnavailableError:
            reads["failed"] += 1
        else:
            reads["served"] += 1
            if outcome.failed_over:
                reads["failovers"] += 1

    sim.schedule_periodic(15.0, read_tick)
    sim.schedule_periodic(60.0, namenode.check_replication)

    sim.run(until=HORIZON)
    namenode.transfers.fault_hook = None  # storm over; let repairs land
    sim.run(until=HORIZON + 900.0)
    heartbeats.stop()
    namenode.audit()

    lost = sum(1 for b in blocks if not namenode.blockmap.locations(b))
    attempted = reads["served"] + reads["failed"]
    print("--- storm report ---")
    print(f"faults injected:          {dict(sorted(injector.injected.items()))}")
    print(f"failures detected:        {heartbeats.detected_failures} "
          f"(reconciled {heartbeats.reconciliations})")
    print(f"reads served:             {reads['served']}/{attempted} "
          f"({reads['failovers']} failed over)")
    print(f"transfer retries:         {namenode.transfer_retries} "
          f"(requeued {namenode.replications_requeued})")
    print(f"replications completed:   {namenode.replications_completed}")
    episodes = namenode.recovery_times
    mean = sum(episodes) / len(episodes) if episodes else 0.0
    print(f"recovery episodes:        {len(episodes)} "
          f"(mean {mean:.1f}s, max {max(episodes, default=0.0):.1f}s)")
    print(f"blocks permanently lost:  {lost}")
    assert lost == 0, "a survivable storm must lose nothing"


if __name__ == "__main__":
    main()
