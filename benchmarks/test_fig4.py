"""Benchmark E4: regenerate Figure 4 (Case 2, rack-aware).

Same panels as Figure 3 with every block required to span two racks, so
Aurora runs the full Algorithm 2 operation set.  Checks that the
locality win survives the rack constraint and that no run ever violates
it (the harness would fail job streams otherwise).
"""

import numpy as np
import pytest

from conftest import write_result
from repro.experiments.fig3 import default_trace
from repro.experiments.fig4 import render_fig4, run_fig4

EPSILONS = (0.1, 0.6, 0.8)


@pytest.fixture(scope="module")
def fig4_result():
    result = run_fig4(
        trace=default_trace(seed=0), epsilons=EPSILONS, seed=0
    )
    write_result("fig4.txt", render_fig4(result))
    return result


def test_fig4a_remote_tasks(fig4_result, benchmark):
    """Panel (a): Aurora beats HDFS under the rack constraint too."""

    def panel():
        return {
            eps: run.remote_tasks_per_hour
            for eps, run in fig4_result.aurora.items()
        }

    values = benchmark(panel)
    baseline = fig4_result.baseline.remote_tasks_per_hour
    assert baseline > 0
    assert all(value < baseline for value in values.values())


def test_fig4b_machine_load_cdf(fig4_result, benchmark):
    """Panel (b): load distribution tightens."""

    def panel():
        return float(np.std(fig4_result.aurora[0.1].machine_task_loads))

    aurora_std = benchmark(panel)
    hdfs_std = float(np.std(fig4_result.baseline.machine_task_loads))
    assert aurora_std < hdfs_std


def test_fig4c_block_movements(fig4_result, benchmark):
    """Panel (c): movement overhead shrinks with epsilon."""

    def panel():
        return {
            eps: run.moves_per_machine_per_hour
            for eps, run in fig4_result.aurora.items()
        }

    moves = benchmark(panel)
    assert moves[0.1] > 0
    assert moves[0.8] <= moves[0.1]
    # All jobs completed despite migrations: rack constraints held.
    for run in fig4_result.aurora.values():
        assert run.jobs_completed == run.jobs_submitted
