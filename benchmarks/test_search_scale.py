"""Solver scale benchmark: incremental engine vs the naive reference.

Runs :func:`repro.experiments.scale.run_solver_scale_study` — identical
random-start instances balanced to convergence by the incremental engine
(``repro.core.local_search``) and the frozen naive transcription
(``repro.core.reference``) — and commits the table to
``benchmarks/results/search_scale.txt``.

Assertions are deliberately loose (a fraction of the measured speedups)
so the suite fails loudly on a real solver regression without flaking on
shared CI boxes.  The ``perf``-marked smoke test is the one CI runs on
every push; the full sweep carries the committed results.
"""

import pytest

from conftest import write_result
from repro.experiments.scale import (
    render_solver_scale_study,
    run_solver_scale_study,
)

pytestmark = pytest.mark.bench


@pytest.mark.perf
def test_solver_smoke_budget():
    """Smoke-sized run for CI: correctness plus a loose time budget."""
    points = run_solver_scale_study(sizes=((3, 4, 160), (5, 6, 600)))
    assert all(point.results_match for point in points)
    largest = points[-1]
    # Measured ~0.33 s incremental / 2.3x speedup at this size; budgets
    # leave generous slack for slow CI hardware.
    assert largest.incremental_seconds < 5.0
    assert largest.speedup >= 1.2
    assert largest.pairs_pruned > 0


def test_solver_scale_sweep():
    """Full sweep; commits the before/after table to results/."""
    points = run_solver_scale_study()
    write_result("search_scale.txt", render_solver_scale_study(points))
    assert all(point.results_match for point in points)
    largest = points[-1]
    # Measured ~6.3x on the 144-machine / 4000-block instance; require
    # half of that so noise cannot mask a real regression for long.
    assert largest.speedup >= 3.0
    # The speedup must grow with instance size — the engine's point.
    assert points[-1].speedup > points[0].speedup
