"""Benchmarks E6-E8: regenerate Figure 6 (the 10-node testbed).

Checks the paper's three testbed claims: Aurora achieves the highest
task locality, positive average speed-up over Scarlett, and block
movements that mostly complete within seconds.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.experiments.fig6 import render_fig6, run_fig6, speedup_over


@pytest.fixture(scope="module")
def fig6_result():
    result = run_fig6(seed=0)
    write_result("fig6.txt", render_fig6(result))
    return result


def test_fig6a_remote_percentage(fig6_result, benchmark):
    """Panel (a): locality ordering Aurora >= Scarlett > HDFS."""

    def panel():
        return {
            name: run.remote_fraction
            for name, run in fig6_result.runs().items()
        }

    fractions = benchmark(panel)
    assert fractions["Aurora"] <= fractions["Scarlett"] + 0.02
    assert fractions["Scarlett"] < fractions["HDFS"]
    assert fractions["HDFS"] > 0.05  # the testbed is actually contended


def test_fig6b_speedup_cdf(fig6_result, benchmark):
    """Panel (b): per-job speed-up of Aurora over Scarlett."""

    def panel():
        return speedup_over(fig6_result.scarlett, fig6_result.aurora)

    ratios = benchmark(panel)
    assert len(ratios) > 100
    # Paper: Aurora outperforms Scarlett on average (up to 8%).
    assert float(np.mean(ratios)) > 0.0
    # And HDFS is clearly slower than Scarlett.
    hdfs_ratios = speedup_over(fig6_result.scarlett, fig6_result.hdfs)
    assert float(np.mean(hdfs_ratios)) < 0.0


def test_fig6c_movement_durations(fig6_result, benchmark):
    """Panel (c): most block movements finish within ~10 seconds."""

    def panel():
        durations = fig6_result.aurora.movement_durations
        return float(np.percentile(durations, 80)) if durations else 0.0

    p80 = benchmark(panel)
    assert fig6_result.aurora.movement_durations, "no movements recorded"
    assert p80 < 30.0
    median = float(np.median(fig6_result.aurora.movement_durations))
    assert median < 10.0
