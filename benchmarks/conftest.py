"""Shared fixtures for the benchmark suite.

Each figure's simulation runs once per session (module-scoped fixtures);
the per-panel benchmarks then measure the panel extraction and assert the
paper's qualitative shape.  Every figure also writes its rendered
rows/series to ``benchmarks/results/`` so the output can be diffed
against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting rendered figure output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, text: str) -> None:
    """Persist one figure's rendered output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
