"""Benchmark E10: the Theorem 9 optimality-vs-movement trade-off."""

import pytest

from conftest import write_result
from repro.core.admissibility import theorem9_approximation_factor
from repro.experiments.ablation import make_instance, run_epsilon_ablation
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def epsilon_rows():
    instance = make_instance(num_blocks=250, seed=11)
    result = run_epsilon_ablation(
        instance, epsilons=(0.1, 0.3, 0.6, 0.8)
    )
    write_result(
        "epsilon_tradeoff.txt",
        render_table(
            ["epsilon", "semantics", "ops", "blocks moved", "final cost"],
            [
                (r["epsilon"], r["semantics"], r["operations"],
                 r["blocks_moved"], r["final_cost"])
                for r in result.rows
            ],
        ),
    )
    return result.rows


def test_epsilon_gap_semantics_tradeoff(epsilon_rows, benchmark):
    """Larger epsilon => no more block movement, no better cost."""

    def extract():
        return {
            r["epsilon"]: (r["blocks_moved"], r["final_cost"])
            for r in epsilon_rows if r["semantics"] == "gap"
        }

    rows = benchmark(extract)
    # Movement at the loosest threshold dominates the strictest.
    assert rows[0.1][0] >= rows[0.8][0]
    # Cost can only degrade (or stay) as epsilon grows.
    assert rows[0.1][1] <= rows[0.8][1] + 1e-9


def test_epsilon_cost_semantics_stricter(epsilon_rows, benchmark):
    """The literal Theorem 9 semantics moves at most as much as gap."""

    def extract():
        by_key = {}
        for r in epsilon_rows:
            by_key[(r["epsilon"], r["semantics"])] = r["operations"]
        return by_key

    by_key = benchmark(extract)
    for epsilon in (0.1, 0.3, 0.6, 0.8):
        assert by_key[(epsilon, "cost")] <= by_key[(epsilon, "gap")]


def test_theorem9_factors_table(benchmark):
    """Table of the guaranteed factors 2+eps and 4+3eps."""

    def build():
        return [
            (eps,
             theorem9_approximation_factor(False, eps),
             theorem9_approximation_factor(True, eps))
            for eps in (0.0, 0.1, 0.3, 0.6, 0.8)
        ]

    rows = benchmark(build)
    write_result(
        "theorem9_factors.txt",
        render_table(["epsilon", "BP-Node factor", "BP-Rack factor"], rows),
    )
    assert rows[0][1] == 2.0 and rows[0][2] == 4.0
    assert rows[-1][1] == pytest.approx(2.8)
    assert rows[-1][2] == pytest.approx(6.4)
