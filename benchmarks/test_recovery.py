"""Recovery benchmark: time-to-full-replication vs re-replication throttle.

The prioritized re-replication queue trades repair parallelism against
foreground bandwidth: a tighter throttle stretches the window in which
blocks sit under-replicated.  This benchmark runs the same seeded crash
storm at several throttle settings and reports the recovery-time
distribution for each.
"""

import pytest

from conftest import write_result
from repro.experiments.chaos import ChaosConfig, run_chaos

pytestmark = pytest.mark.bench

THROTTLES = (1, 4, None)  # None = unlimited repair parallelism


@pytest.fixture(scope="module")
def recovery_sweep():
    results = {}
    for throttle in THROTTLES:
        config = ChaosConfig(
            horizon=3600.0,
            drain=1800.0,
            profiles=("crash",),
            crash_mtbf=1200.0,
            replication_throttle=throttle,
            seed=11,
        )
        results[throttle] = run_chaos(config)
    lines = ["time to full replication vs re-replication throttle", ""]
    lines.append(
        f"{'throttle':>10} {'episodes':>9} {'mean (s)':>9} "
        f"{'max (s)':>9} {'lost':>5}"
    )
    for throttle, result in results.items():
        label = "unlimited" if throttle is None else str(throttle)
        lines.append(
            f"{label:>10} {len(result.recovery_times):>9} "
            f"{result.mean_recovery_seconds:>9.1f} "
            f"{result.max_recovery_seconds:>9.1f} "
            f"{result.blocks_lost:>5}"
        )
    write_result("recovery_vs_throttle.txt", "\n".join(lines))
    return results


def test_no_blocks_lost_at_any_throttle(recovery_sweep, benchmark):
    def extract():
        return [r.blocks_lost for r in recovery_sweep.values()]

    assert benchmark(extract) == [0] * len(THROTTLES)


def test_every_setting_observed_recovery_episodes(recovery_sweep, benchmark):
    def extract():
        return {
            throttle: result.recovery_times
            for throttle, result in recovery_sweep.items()
        }

    times = benchmark(extract)
    assert all(episodes for episodes in times.values())


def test_recovery_windows_are_bounded(recovery_sweep, benchmark):
    """Repair always finishes well inside the post-storm drain window."""

    def extract():
        return {
            throttle: result.max_recovery_seconds
            for throttle, result in recovery_sweep.items()
        }

    worst = benchmark(extract)
    for throttle, max_seconds in worst.items():
        assert 0.0 < max_seconds < 1800.0, (throttle, max_seconds)
