"""Overload benchmark: graceful degradation vs offered load.

Runs the same seeded overload storm at several load multipliers, with
the protection stack armed and disarmed, and reports what bounded
queues + breakers + hedging + brownout buy at each point:

* with uniform popularity below capacity the two variants look alike
  and almost nothing is shed (protection is free while healthy);
* zipf skew forms replica-level hotspots even *below* aggregate
  capacity — the paper's motivating observation — and past capacity
  the unprotected tail latency grows with the backlog (minutes, then
  tens of minutes) while the protected variant keeps p99 bounded by
  the queue depth and converts the excess into explicit sheds that
  failover and hedging partially absorb.
"""

import pytest

from conftest import write_result
from repro.experiments.overload import OverloadStormConfig, run_overload_pair

pytestmark = pytest.mark.bench

# (load multiplier, zipf exponent): one healthy uniform point (low
# enough that placement imbalance leaves every node below capacity),
# then a skewed sweep across the capacity cliff.
POINTS = ((0.5, 0.0), (0.8, 1.2), (1.5, 1.2), (2.5, 1.2))
_HORIZON = 300.0


@pytest.fixture(scope="module")
def overload_sweep():
    results = {}
    for load, zipf_s in POINTS:
        config = OverloadStormConfig(
            horizon=_HORIZON,
            drain=60.0,
            load_multiplier=load,
            zipf_s=zipf_s,
            seed=7,
        )
        results[(load, zipf_s)] = run_overload_pair(config)
    lines = [
        "graceful degradation vs offered load "
        f"(horizon={_HORIZON:.0f}s, slo=5.0s, seed=7)",
        "",
        f"{'load':>6} {'zipf':>5} {'variant':>12} {'avail':>7} "
        f"{'p50 (s)':>8} {'p99 (s)':>8} {'shed':>6} {'brownout':>9}",
    ]
    for (load, zipf_s), (protected, unprotected) in results.items():
        for result in (protected, unprotected):
            label = "protected" if result.config.protected else "unprotected"
            lines.append(
                f"{load:>6.2f} {zipf_s:>5.1f} {label:>12} "
                f"{result.availability:>7.4f} "
                f"{result.p50_latency:>8.2f} {result.p99_latency:>8.2f} "
                f"{result.reads_shed:>6} {result.brownout_periods:>9}"
            )
    write_result("overload_degradation.txt", "\n".join(lines))
    return results


def test_protection_is_free_when_healthy(overload_sweep, benchmark):
    """Uniform load below capacity: both variants serve nearly all."""

    def extract():
        protected, unprotected = overload_sweep[(0.5, 0.0)]
        return (protected.availability, unprotected.availability,
                protected.reads_shed, protected.reads_attempted)

    prot_avail, unprot_avail, shed, attempted = benchmark(extract)
    assert prot_avail > 0.95
    assert unprot_avail > 0.95
    assert shed < 0.01 * attempted  # a few transient sheds at most


def test_skew_forms_hotspots_below_aggregate_capacity(
    overload_sweep, benchmark
):
    """Zipf skew overloads hot replicas even at 0.8x aggregate load."""

    def extract():
        protected, unprotected = overload_sweep[(0.8, 1.2)]
        return (protected.availability, unprotected.availability,
                unprotected.p99_latency)

    prot_avail, unprot_avail, unprot_p99 = benchmark(extract)
    assert prot_avail > unprot_avail
    assert unprot_p99 > 60.0  # backlog on the hot replicas, not noise


def test_protected_tail_is_bounded_past_capacity(overload_sweep, benchmark):
    """p99 stays at queue-depth scale while the baseline's explodes."""

    def extract():
        return {
            load: (pair[0].p99_latency, pair[1].p99_latency)
            for (load, zipf_s), pair in overload_sweep.items()
            if load > 1.0
        }

    tails = benchmark(extract)
    for load, (protected_p99, unprotected_p99) in tails.items():
        assert protected_p99 <= 10.0, (load, protected_p99)
        assert unprotected_p99 > 60.0, (load, unprotected_p99)


def test_protected_availability_wins_past_capacity(overload_sweep, benchmark):
    def extract():
        return {
            load: (pair[0].availability, pair[1].availability)
            for (load, zipf_s), pair in overload_sweep.items()
            if load > 1.0
        }

    availability = benchmark(extract)
    for load, (protected, unprotected) in availability.items():
        assert protected > unprotected, (load, protected, unprotected)


def test_brownout_engages_only_under_protection(overload_sweep, benchmark):
    def extract():
        protected, unprotected = overload_sweep[(2.5, 1.2)]
        return protected.brownout_periods, unprotected.brownout_periods

    protected_periods, unprotected_periods = benchmark(extract)
    assert protected_periods > 0
    assert unprotected_periods == 0


def test_fsck_healthy_after_every_storm(overload_sweep, benchmark):
    def extract():
        return [
            result.fsck.healthy
            for pair in overload_sweep.values()
            for result in pair
        ]

    assert all(benchmark(extract))
