"""Performance benchmarks: core algorithm throughput and scaling.

Not a paper figure — these track the implementation's own performance so
regressions in the hot paths (local search, Rep-Factor, placement-state
mutation) are visible in benchmark history.
"""

import random

import pytest

from repro.core.instance import PlacementProblem
from repro.core.local_search import balance_rack_aware
from repro.core.placement import PlacementState
from repro.core.initial_placement import place_all_blocks
from repro.core.rep_factor import compute_replication_factors
from repro.cluster.topology import ClusterTopology
from repro.experiments.ablation import make_instance
from repro.workload.popularity import zipf_weights


@pytest.mark.parametrize("num_blocks", [100, 300, 1000])
def test_local_search_scaling(benchmark, num_blocks):
    """Algorithm 2 convergence time vs block count."""
    instance = make_instance(num_blocks=num_blocks, seed=13)

    def converge():
        state = PlacementState(instance.problem())
        place_all_blocks(state)
        return balance_rack_aware(state)

    stats = benchmark.pedantic(converge, rounds=1, iterations=1)
    assert stats.converged


@pytest.mark.parametrize("num_blocks", [1_000, 10_000])
def test_rep_factor_scaling(benchmark, num_blocks):
    """Algorithm 3 on large block populations (heap-based, near-linear)."""
    weights = zipf_weights(num_blocks, 1.1)
    pops = {i: float(w * 1_000_000) for i, w in enumerate(weights)}
    mins = {i: 3 for i in pops}

    def solve():
        return compute_replication_factors(
            pops, mins,
            budget=4 * num_blocks,
            num_machines=845,
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.budget_used <= 4 * num_blocks


def test_placement_mutation_throughput(benchmark):
    """Moves per second on a dense placement state."""
    rng = random.Random(7)
    topo = ClusterTopology.uniform(10, 10, capacity=200)
    problem = PlacementProblem.from_popularities(
        topo, [rng.uniform(1, 100) for _ in range(2_000)],
        replication_factor=3, rack_spread=2,
    )
    state = PlacementState(problem)
    place_all_blocks(state)
    moves = []
    for block in range(0, 2_000, 4):
        holders = sorted(state.machines_of(block))
        src = holders[-1]
        for dst in topo.machines:
            if state.can_move(block, src, dst):
                moves.append((block, src, dst))
                break

    def churn():
        for block, src, dst in moves:
            state.move(block, src, dst)
            state.move(block, dst, src)
        return len(moves) * 2

    count = benchmark(churn)
    assert count > 0
    state.audit()


def test_snapshot_and_audit_cost(benchmark):
    """Namenode-scale audit cost (runs after every fuzz batch)."""
    import random as _random

    from repro.dfs.namenode import Namenode
    from repro.dfs.policies import DefaultHdfsPolicy

    topo = ClusterTopology.uniform(10, 10, capacity=200)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(_random.Random(0)),
        rng=_random.Random(0),
    )
    for i in range(200):
        nn.create_file(f"/f{i}", num_blocks=4)

    benchmark(nn.audit)
