"""Metrics-snapshot regression gate for the instrumented quick storm.

One seeded quick chaos run (the same preset as ``repro chaos --quick``)
is collapsed by :func:`repro.obs.gate.summarize_telemetry` into flat
sim-clock statistics — counter totals, windowed-histogram percentiles,
gauge extremes and SLO burn — and compared against the committed
baseline in ``benchmarks/baselines/metrics_baseline.json`` with
per-prefix tolerance bands.  A violation means instrumented behaviour
drifted: latency inflation, error-rate shifts, lost samples or a series
that silently stopped being recorded.

Only simulated-clock quantities enter the summary, so the same seed
produces the same numbers on any machine; the bands absorb intentional
small behaviour changes, not noise.  After an *intentional* change in
simulated behaviour, regenerate the baseline and commit it:

    PYTHONPATH=src python benchmarks/test_metrics_regression.py

The self-test doubles every latency statistic in a copy of the fresh
summary and asserts the gate flags it — proof the bands are tight
enough to catch a 2x regression, not just decoration.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from conftest import write_result
from repro import obs
from repro.experiments.bitrot import BitRotConfig, run_bit_rot
from repro.experiments.chaos import (
    ChaosConfig,
    LeaderKillConfig,
    run_chaos,
    run_leader_kill,
)
from repro.obs.gate import (
    check_bundle,
    compare,
    load_baseline,
    load_tolerances,
    summarize_telemetry,
    write_baseline,
)
from repro.obs.telemetry import TelemetryBundle, TelemetrySession

pytestmark = pytest.mark.bench

BASELINE = Path(__file__).parent / "baselines" / "metrics_baseline.json"
LEADERKILL_BASELINE = (
    Path(__file__).parent / "baselines" / "metrics_baseline_leaderkill.json"
)
BITROT_BASELINE = (
    Path(__file__).parent / "baselines" / "metrics_baseline_bitrot.json"
)

GATE_SEED = 0

# Prefix bands layered over the 25% default.  Percentiles of sparse
# histograms move in bucket-sized steps, so they get extra slack;
# totals of high-volume counters are tighter than the default because
# they aggregate thousands of events.
TOLERANCES = {
    "repro_dfs_read_latency_seconds/p": 0.5,
    "repro_dfs_recovery_seconds/p": 0.5,
    "repro_dfs_reads_total": 0.15,
    "run/": 0.15,
}

# The leader-kill gate pins the failover telemetry: election counts,
# time-to-leader/time-to-writable percentiles, journal shipping volume
# and the client-op availability series.  Failover timings move in
# poll-interval steps, so their percentiles get histogram-grade slack.
LEADERKILL_TOLERANCES = {
    "repro_ha_time_to_leader_seconds/p": 0.5,
    "repro_ha_time_to_writable_seconds/p": 0.5,
    "repro_dfs_read_latency_seconds/p": 0.5,
    "run/": 0.15,
}

# The bit-rot gate pins the integrity telemetry: scrub throughput,
# corrupt-replica detections per detector, detection/repair latency
# percentiles and the purge counter.  Detection latencies move in
# scrub-pass-sized steps, so their percentiles get histogram slack;
# the scrub scan counters aggregate tens of thousands of replicas and
# are pinned tight.
BITROT_TOLERANCES = {
    "repro_dfs_integrity_detection_seconds/p": 0.5,
    "repro_dfs_integrity_repair_seconds/p": 0.5,
    "repro_dfs_read_latency_seconds/p": 0.5,
    "repro_dfs_integrity_scrubbed_replicas_total": 0.1,
    "repro_dfs_integrity_scrub_bytes_total": 0.1,
    "run/": 0.15,
}


def gate_config() -> ChaosConfig:
    """The ``repro chaos --quick`` storm, pinned for the gate."""
    return ChaosConfig(
        num_racks=3, machines_per_rack=3, capacity_blocks=100,
        num_files=8, horizon=1800.0, read_interval=5.0,
        crash_mtbf=600.0, partition_mtbf=900.0, drain=600.0,
        profiles=("crash", "partition", "flaky"),
        replication_throttle=8, seed=GATE_SEED,
    )


def run_gate_bundle(out_dir: Path) -> TelemetryBundle:
    session = TelemetrySession(
        label="metrics-gate", seed=GATE_SEED,
        trace_sample_rate=0.1, interval=15.0,
    )
    run_chaos(gate_config(), telemetry=session)
    return TelemetryBundle.load(session.write(out_dir))


def leaderkill_config() -> LeaderKillConfig:
    """The ``repro chaos --kill-leader --quick`` run, pinned."""
    return LeaderKillConfig(seed=GATE_SEED)


def run_leaderkill_bundle(out_dir: Path) -> TelemetryBundle:
    session = TelemetrySession(
        label="metrics-gate-leaderkill", seed=GATE_SEED,
        trace_sample_rate=0.1, interval=15.0,
    )
    run_leader_kill(leaderkill_config(), telemetry=session)
    return TelemetryBundle.load(session.write(out_dir))


def bitrot_config() -> BitRotConfig:
    """The ``repro chaos --bit-rot --quick`` run, pinned for the gate."""
    return BitRotConfig(
        num_files=8, horizon=1800.0, bitrot_mtbf=600.0,
        tornwrite_mtbf=1200.0, drain=900.0, seed=GATE_SEED,
    )


def run_bitrot_bundle(out_dir: Path) -> TelemetryBundle:
    session = TelemetrySession(
        label="metrics-gate-bitrot", seed=GATE_SEED,
        trace_sample_rate=0.1, interval=15.0,
    )
    run_bit_rot(bitrot_config(), telemetry=session)
    return TelemetryBundle.load(session.write(out_dir))


@pytest.fixture(scope="module")
def gate_summary(tmp_path_factory):
    bundle = run_gate_bundle(tmp_path_factory.mktemp("gate") / "tel")
    yield summarize_telemetry(bundle)
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()


@pytest.fixture(scope="module")
def leaderkill_summary(tmp_path_factory):
    bundle = run_leaderkill_bundle(tmp_path_factory.mktemp("lk") / "tel")
    yield summarize_telemetry(bundle)
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()


def test_quick_storm_matches_committed_baseline(gate_summary):
    violations = compare(
        gate_summary, load_baseline(BASELINE), load_tolerances(BASELINE)
    )
    lines = [
        f"{key} = {value:.6g}" for key, value in sorted(gate_summary.items())
    ]
    lines.append("")
    lines.append(f"violations: {len(violations)}")
    lines.extend(str(v) for v in violations)
    write_result("metrics_gate.txt", "\n".join(lines))
    assert not violations, "\n".join(str(v) for v in violations)


def test_gate_flags_injected_latency_inflation(gate_summary):
    """Self-test: a synthetic 2x latency regression must trip the gate."""
    inflated = {
        key: value * 2
        if "latency_seconds" in key
        and key.rsplit("/", 1)[-1] in ("mean", "p50", "p99")
        else value
        for key, value in gate_summary.items()
    }
    violations = compare(
        inflated, load_baseline(BASELINE), load_tolerances(BASELINE)
    )
    assert any(
        "repro_dfs_read_latency_seconds" in v.key for v in violations
    ), "gate failed to flag a 2x latency inflation"


def test_gate_flags_missing_series(gate_summary):
    """A series that stopped being recorded violates with actual=0."""
    pruned = {
        key: value for key, value in gate_summary.items()
        if not key.startswith("repro_dfs_replications_total")
    }
    violations = compare(
        pruned, load_baseline(BASELINE), load_tolerances(BASELINE)
    )
    assert any(
        v.key.startswith("repro_dfs_replications_total") and v.actual == 0
        for v in violations
    )


def test_leader_kill_matches_committed_baseline(leaderkill_summary):
    violations = compare(
        leaderkill_summary,
        load_baseline(LEADERKILL_BASELINE),
        load_tolerances(LEADERKILL_BASELINE),
    )
    lines = [
        f"{key} = {value:.6g}"
        for key, value in sorted(leaderkill_summary.items())
    ]
    lines.append("")
    lines.append(f"violations: {len(violations)}")
    lines.extend(str(v) for v in violations)
    write_result("metrics_gate_leaderkill.txt", "\n".join(lines))
    assert not violations, "\n".join(str(v) for v in violations)


def test_leader_kill_gate_flags_missing_failover_series(leaderkill_summary):
    """Losing the journal-shipping telemetry must trip the gate.

    (``repro_ha_failovers_total`` itself totals 1.0 — inside the gate's
    absolute floor — so the high-volume shipping counter is the canary.)
    """
    pruned = {
        key: value for key, value in leaderkill_summary.items()
        if not key.startswith("repro_ha_journal_entries_shipped_total")
    }
    violations = compare(
        pruned,
        load_baseline(LEADERKILL_BASELINE),
        load_tolerances(LEADERKILL_BASELINE),
    )
    assert any(
        v.key.startswith("repro_ha_journal_entries_shipped_total")
        and v.actual == 0
        for v in violations
    )


@pytest.fixture(scope="module")
def bitrot_summary(tmp_path_factory):
    bundle = run_bitrot_bundle(tmp_path_factory.mktemp("rot") / "tel")
    yield summarize_telemetry(bundle)
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()


def test_bit_rot_matches_committed_baseline(bitrot_summary):
    violations = compare(
        bitrot_summary,
        load_baseline(BITROT_BASELINE),
        load_tolerances(BITROT_BASELINE),
    )
    lines = [
        f"{key} = {value:.6g}"
        for key, value in sorted(bitrot_summary.items())
    ]
    lines.append("")
    lines.append(f"violations: {len(violations)}")
    lines.extend(str(v) for v in violations)
    write_result("metrics_gate_bitrot.txt", "\n".join(lines))
    assert not violations, "\n".join(str(v) for v in violations)


def test_bit_rot_gate_flags_missing_scrub_series(bitrot_summary):
    """A scrubber that silently stops scanning must trip the gate.

    (Individual detections total in the low tens; the per-replica scan
    counter aggregates tens of thousands of verifies and is the canary.)
    """
    pruned = {
        key: value for key, value in bitrot_summary.items()
        if not key.startswith("repro_dfs_integrity_scrubbed_replicas_total")
    }
    violations = compare(
        pruned,
        load_baseline(BITROT_BASELINE),
        load_tolerances(BITROT_BASELINE),
    )
    assert any(
        v.key.startswith("repro_dfs_integrity_scrubbed_replicas_total")
        and v.actual == 0
        for v in violations
    )


def test_check_bundle_end_to_end(tmp_path):
    """The one-call wrapper CI uses: fresh run vs committed baseline."""
    bundle = run_gate_bundle(tmp_path / "tel")
    try:
        violations = check_bundle(bundle, BASELINE)
    finally:
        obs.get_registry().reset()
        obs.get_tracer().clear()
        obs.disable()
    assert not violations, "\n".join(str(v) for v in violations)


def main() -> None:
    """Regenerate the committed baselines from fresh gate runs."""
    with tempfile.TemporaryDirectory() as scratch:
        bundle = run_gate_bundle(Path(scratch) / "tel")
    summary = summarize_telemetry(bundle)
    path = write_baseline(
        BASELINE, summary, tolerances=TOLERANCES,
        note=(
            "Instrumented `repro chaos --quick` storm, seed 0. "
            "Regenerate after intentional behaviour changes with: "
            "PYTHONPATH=src python benchmarks/test_metrics_regression.py"
        ),
    )
    print(f"wrote {path} ({len(summary)} keys)")
    obs.get_registry().reset()
    obs.get_tracer().clear()
    with tempfile.TemporaryDirectory() as scratch:
        bundle = run_leaderkill_bundle(Path(scratch) / "tel")
    summary = summarize_telemetry(bundle)
    path = write_baseline(
        LEADERKILL_BASELINE, summary, tolerances=LEADERKILL_TOLERANCES,
        note=(
            "Instrumented `repro chaos --kill-leader --quick` run, "
            "seed 0: leader killed mid-Aurora-period, follower "
            "failover. Regenerate alongside metrics_baseline.json."
        ),
    )
    print(f"wrote {path} ({len(summary)} keys)")
    obs.get_registry().reset()
    obs.get_tracer().clear()
    with tempfile.TemporaryDirectory() as scratch:
        bundle = run_bitrot_bundle(Path(scratch) / "tel")
    summary = summarize_telemetry(bundle)
    path = write_baseline(
        BITROT_BASELINE, summary, tolerances=BITROT_TOLERANCES,
        note=(
            "Instrumented `repro chaos --bit-rot --quick` run, seed 0: "
            "bit-rot and torn-write strikes, scrubber detection, "
            "quarantine and repair. Regenerate alongside "
            "metrics_baseline.json."
        ),
    )
    print(f"wrote {path} ({len(summary)} keys)")


if __name__ == "__main__":
    main()
