"""Harness throughput smoke test: parallel sweep equals sequential.

The committed before/after table lives in
``benchmarks/results/harness_scale.txt`` and is produced by
``benchmarks/harness_scale.py`` (run on this tree and on the baseline
commit).  CI runs only the ``perf``-marked smoke test below: a 2-worker
Figure-3 micro-sweep whose every ``RunResult`` must equal the sequential
run's, plus a loose wall-clock budget so a gross harness regression
fails loudly without flaking on shared CI boxes.
"""

import time

import pytest

from repro.experiments.fig3 import run_fig3
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

pytestmark = pytest.mark.bench


def _micro_trace(seed=0):
    return generate_yahoo_trace(YahooTraceConfig(
        num_files=30,
        jobs_per_hour=150.0,
        duration_hours=1.5,
        mean_task_duration=60.0,
        seed=seed,
    ))


@pytest.mark.perf
def test_parallel_fig3_micro_sweep_matches_sequential():
    """2-worker fig3 micro-sweep: identical results, sane wall-clock."""
    trace = _micro_trace()
    epsilons = (0.1, 0.8)
    started = time.perf_counter()
    sequential = run_fig3(trace=trace, epsilons=epsilons, seed=0, jobs=1)
    parallel = run_fig3(trace=trace, epsilons=epsilons, seed=0, jobs=2)
    elapsed = time.perf_counter() - started
    assert parallel.baseline == sequential.baseline
    assert set(parallel.aurora) == set(epsilons)
    for epsilon in epsilons:
        assert parallel.aurora[epsilon] == sequential.aurora[epsilon]
    # Measured ~2 s for both sweeps together on a 1-CPU container;
    # the budget leaves generous slack for slow CI hardware.
    assert elapsed < 60.0
