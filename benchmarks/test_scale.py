"""Benchmark E14: the paper's cluster-size conjecture.

"We believe this gain will be higher if larger clusters are used, as
data locality tends to decrease as the number of machines increases."
"""

import pytest

from conftest import write_result
from repro.experiments.scale import render_scale_study, run_scale_study


@pytest.fixture(scope="module")
def scale_points():
    points = run_scale_study(
        machines_per_rack_options=(3, 5, 8), duration_hours=2.0,
    )
    write_result("scale_study.txt", render_scale_study(points))
    return points


def test_scale_gain_grows_with_cluster_size(scale_points, benchmark):
    """The Aurora-over-HDFS gain is monotone in machine count."""

    def extract():
        return [(p.num_machines, p.gain) for p in scale_points]

    rows = benchmark(extract)
    gains = [gain for _, gain in rows]
    assert all(b >= a - 0.01 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > gains[0]


def test_scale_locality_decreases_for_hdfs(scale_points, benchmark):
    """Stock HDFS locality degrades (or stagnates) at larger scales."""

    def extract():
        return [p.hdfs_remote_fraction for p in scale_points]

    fractions = benchmark(extract)
    # Random placement never gets *better* with more machines.
    assert fractions[-1] >= fractions[0] - 0.05
