"""Scale smoke: the columnar engine at ~1k machines, CI-sized.

A reduced version of the 10k-machine study in
``benchmarks/results/scale_10k.txt``: a 64-rack / 1024-machine instance
balanced by the dict/heap incremental engine and the columnar engine
under the same operation budget.  The gate is *correctness under a
wall-clock budget* — the engines must apply identical operations and
finish within a generous ceiling — not a speedup ratio, which would be
flaky on shared CI runners.

Run with ``pytest benchmarks/test_scale_smoke.py -m perf``.
"""

import pytest

from repro.experiments.scale import (
    render_columnar_scale_study,
    run_columnar_scale_study,
)

# 64 racks x 16 machines, ~10 blocks per machine, budgeted run.
SMOKE_SIZES = ((64, 16, 10000, 1000),)

#: Per-engine wall-clock ceiling (seconds) — an order of magnitude above
#: the measured time, so only a pathological regression trips it.
WALL_CLOCK_BUDGET = 120.0


@pytest.mark.perf
def test_columnar_matches_incremental_at_1k_machines():
    points = run_columnar_scale_study(
        sizes=SMOKE_SIZES, seed=0, num_partitions=4, jobs=1
    )
    print()
    print(render_columnar_scale_study(points))
    (point,) = points
    assert point.num_machines == 1024
    assert point.operations_identical, (
        "columnar engine diverged from the incremental engine"
    )
    assert point.healthy
    assert point.incremental_seconds < WALL_CLOCK_BUDGET
    assert point.columnar_seconds < WALL_CLOCK_BUDGET
    # The columnar state must not cost more memory than the dict/heap
    # engine's indices at this scale.
    assert point.columnar_state_bytes <= point.incremental_state_bytes
