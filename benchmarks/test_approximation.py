"""Benchmark E9: empirical check of the approximation guarantees.

Solves random small instances exactly (MILP) and measures the local
search's empirical ratio against the true optimum — Theorems 2 and 4
promise ``OPT + p_max`` / ``OPT + 3 p_max`` (2x / 4x).  Also benchmarks
raw local-search throughput at period scale.
"""

import random

import pytest

from conftest import write_result
from repro.cluster.topology import ClusterTopology
from repro.core.exact import solve_exact
from repro.core.initial_placement import place_all_blocks
from repro.core.instance import PlacementProblem
from repro.core.local_search import balance_node_level, balance_rack_aware
from repro.core.placement import PlacementState
from repro.experiments.ablation import make_instance
from repro.experiments.report import render_table


def _random_instance(seed, rack_aware):
    rng = random.Random(seed)
    if rack_aware:
        topology = ClusterTopology.uniform(2, 3, capacity=8)
        k, rho = 2, 2
    else:
        topology = ClusterTopology.uniform(1, rng.randint(3, 5), capacity=8)
        k, rho = 1, 1
    pops = [rng.uniform(0.5, 20.0) for _ in range(rng.randint(4, 8))]
    return PlacementProblem.from_popularities(
        topology, pops, replication_factor=k, rack_spread=rho
    )


def _empirical_ratios(rack_aware, seeds):
    rows = []
    for seed in seeds:
        problem = _random_instance(seed, rack_aware)
        state = PlacementState(problem)
        place_all_blocks(state)
        if rack_aware:
            balance_rack_aware(state)
        else:
            balance_node_level(state)
        optimum = solve_exact(problem).objective
        ratio = state.cost() / optimum if optimum > 0 else 1.0
        rows.append((seed, state.cost(), optimum, ratio))
    return rows


def test_approx_algorithm1_vs_exact(benchmark):
    """Table: Algorithm 1's empirical ratio stays within 2x of OPT."""
    rows = benchmark.pedantic(
        _empirical_ratios, args=(False, range(12)), rounds=1, iterations=1
    )
    worst = max(row[3] for row in rows)
    assert worst <= 2.0 + 1e-6
    write_result(
        "approx_algorithm1.txt",
        render_table(["seed", "SOL", "OPT", "ratio"], rows)
        + f"\nworst ratio: {worst:.3f} (Theorem 2 bound: 2.0)",
    )


def test_approx_algorithm2_vs_exact(benchmark):
    """Table: Algorithm 2's empirical ratio stays within 4x of OPT."""
    rows = benchmark.pedantic(
        _empirical_ratios, args=(True, range(10)), rounds=1, iterations=1
    )
    worst = max(row[3] for row in rows)
    assert worst <= 4.0 + 1e-6
    write_result(
        "approx_algorithm2.txt",
        render_table(["seed", "SOL", "OPT", "ratio"], rows)
        + f"\nworst ratio: {worst:.3f} (Theorem 4 bound: 4.0)",
    )


def test_local_search_throughput(benchmark):
    """Raw Algorithm 2 speed on a period-sized instance (300 blocks)."""
    instance = make_instance(num_blocks=300, seed=7)

    def converge():
        problem = instance.problem()
        state = PlacementState(problem)
        place_all_blocks(state)
        return balance_rack_aware(state)

    stats = benchmark(converge)
    assert stats.converged
