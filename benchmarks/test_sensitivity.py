"""Benchmark E16: sensitivity to the operator knobs W and K."""

import pytest

from conftest import write_result
from repro.experiments.fig3 import default_trace
from repro.experiments.sensitivity import (
    render_sensitivity,
    run_cap_sensitivity,
    run_window_sensitivity,
)


@pytest.fixture(scope="module")
def sensitivity_trace():
    return default_trace(seed=0, duration_hours=2.0)


def test_window_sensitivity(sensitivity_trace, benchmark):
    """W sweep: every setting works; the paper's 2 h default is sane."""
    rows = benchmark.pedantic(
        run_window_sensitivity, args=(sensitivity_trace,),
        kwargs={"windows_hours": (0.5, 2.0, 4.0)},
        rounds=1, iterations=1,
    )
    write_result(
        "sensitivity_window.txt",
        render_sensitivity(rows, "E16: usage window W (hours)"),
    )
    for row in rows:
        assert row.result.jobs_completed == row.result.jobs_submitted
    by_value = {row.value: row for row in rows}
    # The default (2 h) must not be dominated by the shortest window on
    # both axes simultaneously.
    default = by_value[2.0]
    short = by_value[0.5]
    assert (
        default.remote_fraction <= short.remote_fraction + 0.05
        or default.movement <= short.movement + 0.5
    )


def test_cap_sensitivity(sensitivity_trace, benchmark):
    """K sweep: tighter caps bound replication work per period."""
    rows = benchmark.pedantic(
        run_cap_sensitivity, args=(sensitivity_trace,),
        kwargs={"caps": (10, 200, 20_000)},
        rounds=1, iterations=1,
    )
    write_result(
        "sensitivity_cap.txt",
        render_sensitivity(rows, "E16: replication cap K"),
    )
    by_value = {int(row.value): row for row in rows}
    # A tight cap cannot replicate more than an unbounded one.
    assert (
        by_value[10].result.replications_completed
        <= by_value[20_000].result.replications_completed
    )
    for row in rows:
        assert row.result.jobs_completed == row.result.jobs_submitted
