"""End-to-end experiment-harness benchmark driver.

Measures the three layers this repository's throughput work targets:

1. **sweep** — wall-clock of a multi-seed Figure-3 micro-sweep, the
   end-to-end number an operator actually waits on.  With ``--jobs N``
   the sweep uses the parallel trial runner when the tree has one.
2. **monitor** — per-period cost of the usage monitor: a synthetic
   record/snapshot loop shaped like the harness's access stream.
3. **snapshot** — per-period cost of ``snapshot_placement`` when only a
   few blocks changed since the previous period (the steady-state case
   the incremental cache targets).

The script **feature-detects** the parallel runner and the snapshot
cache, so the *same file* runs against an older tree: copy it into a
worktree of the baseline commit to produce the "before" column of
``benchmarks/results/harness_scale.txt``.

Usage::

    PYTHONPATH=src python benchmarks/harness_scale.py --label after
    PYTHONPATH=src python benchmarks/harness_scale.py --sweep-only --jobs 4
"""

from __future__ import annotations

import argparse
import inspect
import json
import random
import sys
import time


def bench_sweep(seeds, hours, epsilons, jobs):
    from repro.experiments.fig3 import default_trace, run_fig3

    supports_jobs = "jobs" in inspect.signature(run_fig3).parameters
    kwargs = {"jobs": jobs} if (supports_jobs and jobs > 1) else {}
    if jobs > 1 and not supports_jobs:
        print("# no parallel runner in this tree; sweep runs sequentially")
    started = time.perf_counter()
    reductions = []
    for seed in seeds:
        trace = default_trace(seed=seed, duration_hours=hours)
        result = run_fig3(
            trace=trace, epsilons=epsilons, seed=seed, **kwargs
        )
        reductions.append(round(result.best_reduction(), 6))
    elapsed = time.perf_counter() - started
    return {
        "seconds": round(elapsed, 3),
        "seeds": len(seeds),
        "cases": len(seeds) * (1 + len(epsilons)),
        "jobs": jobs if supports_jobs else 1,
        "best_reductions": reductions,
    }


def bench_monitor(blocks=2000, periods=8, accesses_per_period=40_000,
                  window=7200.0, period=3600.0):
    from repro.monitor.usage import UsageMonitor

    monitor = UsageMonitor(window=window)
    rng = random.Random(0)
    # Zipf-ish skew: low block ids absorb most accesses, like a real
    # trace's hot files.
    ids = [min(int(rng.paretovariate(1.2)), blocks - 1)
           for _ in range(accesses_per_period)]
    started = time.perf_counter()
    checksum = 0
    for p in range(1, periods + 1):
        base = p * period
        step = period / accesses_per_period
        for index, block in enumerate(ids):
            monitor.record_access(block, base + index * step)
        checksum += len(monitor.snapshot(now=base + period))
    elapsed = time.perf_counter() - started
    # Retained monitor state after the last snapshot: timestamps for the
    # exact/deque implementation, bucket counters for the bucketed one.
    state_entries = sum(len(state) for state in monitor._accesses.values())
    return {
        "seconds": round(elapsed, 3),
        "per_period_ms": round(1000.0 * elapsed / periods, 2),
        "periods": periods,
        "accesses_per_period": accesses_per_period,
        "state_entries": state_entries,
        "tracked_blocks_checksum": checksum,
    }


def bench_snapshot(files=400, rounds=30, dirty_per_round=10):
    from repro.aurora.bridge import snapshot_placement
    from repro.cluster.topology import ClusterTopology
    from repro.dfs.namenode import Namenode
    from repro.dfs.policies import DefaultHdfsPolicy

    try:
        from repro.aurora.bridge import PlacementSnapshotCache
        cache = PlacementSnapshotCache()
        cached_kwargs = {"cache": cache}
    except ImportError:
        cached_kwargs = {}

    rng = random.Random(0)
    topo = ClusterTopology.uniform(8, 8, capacity=200)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(1)),
        rng=random.Random(2),
    )
    for i in range(files):
        nn.create_file(f"/f{i}", num_blocks=rng.randint(2, 4))
    block_ids = list(nn.blockmap.block_ids())
    pops = {b: rng.uniform(0.0, 50.0) for b in block_ids}

    snapshot_placement(nn, pops, **cached_kwargs)  # warm / prime
    started = time.perf_counter()
    cost = 0.0
    for _ in range(rounds):
        # Steady state: a handful of blocks moved since last period.
        for block in rng.sample(block_ids, dirty_per_round):
            locations = sorted(nn.blockmap.locations(block))
            src = locations[0]
            free = [m for m in topo.machines
                    if m not in locations
                    and nn.datanodes[m].free_blocks > 0]
            if free:
                nn.move_block(block, src, rng.choice(free))
        state = snapshot_placement(nn, pops, **cached_kwargs)
        cost += state.cost()
    elapsed = time.perf_counter() - started
    return {
        "seconds": round(elapsed, 3),
        "per_snapshot_ms": round(1000.0 * elapsed / rounds, 2),
        "rounds": rounds,
        "blocks": len(block_ids),
        "dirty_per_round": dirty_per_round,
        "cached": bool(cached_kwargs),
        "cost_checksum": round(cost, 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="run")
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--epsilons", nargs="+", type=float, default=[0.1, 0.8]
    )
    parser.add_argument("--sweep-only", action="store_true")
    args = parser.parse_args(argv)

    report = {"label": args.label}
    report["sweep"] = bench_sweep(
        seeds=range(args.seeds), hours=args.hours,
        epsilons=tuple(args.epsilons), jobs=args.jobs,
    )
    if not args.sweep_only:
        report["monitor"] = bench_monitor()
        report["snapshot"] = bench_snapshot()
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
