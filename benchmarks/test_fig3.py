"""Benchmark E1-E3: regenerate Figure 3 (Case 1, node-level only).

The module fixture replays the Yahoo!-like trace once per system and
epsilon; the three panel benchmarks extract each panel's series and check
the paper's qualitative claims:

* (a) Aurora produces fewer remote tasks than stock HDFS;
* (b) Aurora's machine-load distribution is tighter;
* (c) block movement falls as epsilon grows.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.experiments.fig3 import default_trace, render_fig3, run_fig3
from repro.experiments.report import cdf_series

EPSILONS = (0.1, 0.3, 0.6, 0.8)


@pytest.fixture(scope="module")
def fig3_result():
    result = run_fig3(
        trace=default_trace(seed=0), epsilons=EPSILONS, seed=0
    )
    write_result("fig3.txt", render_fig3(result))
    return result


def test_fig3a_remote_tasks(fig3_result, benchmark):
    """Panel (a): average remote tasks per hour, HDFS vs Aurora."""

    def panel():
        rows = [("HDFS", fig3_result.baseline.remote_tasks_per_hour)]
        rows += [
            (f"eps={eps}", run.remote_tasks_per_hour)
            for eps, run in sorted(fig3_result.aurora.items())
        ]
        return rows

    rows = benchmark(panel)
    baseline = rows[0][1]
    assert baseline > 0
    # The paper: Aurora reduces remote tasks (12.5% at eps=0.1).
    for _, value in rows[1:]:
        assert value < baseline
    assert fig3_result.best_reduction() > 0.05


def test_fig3b_machine_load_cdf(fig3_result, benchmark):
    """Panel (b): machine-load CDF is tighter under Aurora."""

    def panel():
        return {
            "HDFS": cdf_series(fig3_result.baseline.machine_task_loads, 20),
            **{
                f"eps={eps}": cdf_series(run.machine_task_loads, 20)
                for eps, run in fig3_result.aurora.items()
            },
        }

    series = benchmark(panel)
    assert len(series) == 1 + len(EPSILONS)
    hdfs_std = float(np.std(fig3_result.baseline.machine_task_loads))
    aurora_std = float(np.std(fig3_result.aurora[0.1].machine_task_loads))
    assert aurora_std < hdfs_std


def test_fig3c_block_movements(fig3_result, benchmark):
    """Panel (c): movement overhead shrinks with epsilon."""

    def panel():
        return [
            (eps, run.moves_per_machine_per_hour)
            for eps, run in sorted(fig3_result.aurora.items())
        ]

    rows = benchmark(panel)
    moves = dict(rows)
    # HDFS never moves blocks; Aurora does, less so at high epsilon.
    assert fig3_result.baseline.moves_per_machine_per_hour == 0.0
    assert moves[0.1] > 0
    assert moves[0.8] <= moves[0.1]
