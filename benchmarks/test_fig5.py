"""Benchmark E5: regenerate Figure 5 (Case 3, Aurora vs Scarlett).

Both systems receive the same extra-replica budget.  Checks the paper's
ordering: dynamic replication (Scarlett) already improves heavily over
static placement, and Aurora improves further (paper: 26.9% fewer remote
tasks than Scarlett) with near-perfect load balancing.
"""

import numpy as np
import pytest

from conftest import write_result
from repro.experiments.fig3 import default_trace
from repro.experiments.fig5 import render_fig5, run_fig5

EPSILONS = (0.1, 0.6, 0.8)


@pytest.fixture(scope="module")
def fig5_result():
    result = run_fig5(
        trace=default_trace(seed=0), epsilons=EPSILONS, seed=0
    )
    write_result("fig5.txt", render_fig5(result))
    return result


def test_fig5a_remote_tasks(fig5_result, benchmark):
    """Panel (a): Aurora reduces remote tasks versus Scarlett."""

    def panel():
        return {
            eps: run.remote_tasks_per_hour
            for eps, run in fig5_result.aurora.items()
        }

    values = benchmark(panel)
    scarlett = fig5_result.scarlett.remote_tasks_per_hour
    assert scarlett > 0
    assert min(values.values()) < scarlett
    assert fig5_result.best_reduction() > 0.0


def test_fig5b_machine_load_cdf(fig5_result, benchmark):
    """Panel (b): Aurora's load balance at least matches Scarlett's."""

    def panel():
        return {
            "scarlett": float(np.std(fig5_result.scarlett.machine_task_loads)),
            "aurora": float(
                np.std(fig5_result.aurora[0.1].machine_task_loads)
            ),
        }

    stds = benchmark(panel)
    assert stds["aurora"] <= stds["scarlett"] * 1.25


def test_fig5c_block_movements(fig5_result, benchmark):
    """Panel (c): total data movement per machine-hour by epsilon."""

    def panel():
        return {
            eps: run.data_movement_per_machine_per_hour
            for eps, run in fig5_result.aurora.items()
        }

    movement = benchmark(panel)
    # Movement exists (replication is active) and stays bounded.
    assert all(value >= 0 for value in movement.values())
    assert movement[0.8] <= movement[0.1] * 1.25
