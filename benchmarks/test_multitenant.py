"""Benchmark E17: multi-tenant isolation via directory quotas.

Two tenants share one cluster and one Aurora instance.  A space quota
on the noisy tenant's directory caps how many extra replicas Aurora may
create for it — the mechanism works end to end (rejections are absorbed,
the cap holds exactly), and the measurement also surfaces its honest
limitation: the budget denied to the capped tenant is *discarded*, not
redistributed, because Algorithm 3 is quota-unaware (a real integration
would cap factors inside Rep-Factor — noted as future work).
"""

import pytest

from conftest import write_result
from repro.experiments.multitenant import (
    render_multitenant,
    run_multitenant_study,
)


@pytest.fixture(scope="module")
def multitenant_result():
    result = run_multitenant_study(duration_hours=1.5)
    write_result("multitenant.txt", render_multitenant(result))
    return result


def test_quota_caps_noisy_tenant_replication(multitenant_result, benchmark):
    def extract():
        return {
            "unbounded": multitenant_result.without_quota["noisy"]
            .replicated_blocks,
            "bounded": multitenant_result.with_quota["noisy"]
            .replicated_blocks,
        }

    extras = benchmark(extract)
    assert extras["bounded"] <= 40  # the configured headroom
    assert extras["unbounded"] > 5 * extras["bounded"]
    assert multitenant_result.quota_rejections > 0


def test_quiet_tenant_unharmed_by_quota(multitenant_result, benchmark):
    def extract():
        return {
            regime: outcomes["quiet"].remote_fraction
            for regime, outcomes in (
                ("unbounded", multitenant_result.without_quota),
                ("bounded", multitenant_result.with_quota),
            )
        }

    fractions = benchmark(extract)
    # The quota must not significantly degrade the quiet tenant.
    assert fractions["bounded"] <= fractions["unbounded"] + 0.10


def test_noisy_tenant_pays_for_its_cap(multitenant_result, benchmark):
    def extract():
        return (
            multitenant_result.without_quota["noisy"].remote_fraction,
            multitenant_result.with_quota["noisy"].remote_fraction,
        )

    unbounded, bounded = benchmark(extract)
    # Fewer replicas => worse locality for the capped tenant: the quota
    # makes the trade explicit instead of silently taxing the cluster.
    assert bounded >= unbounded
