"""Benchmarks E11-E12: ablations of Aurora's design choices."""

import pytest

from conftest import write_result
from repro.experiments.ablation import (
    make_instance,
    render_ablations,
    run_epsilon_ablation,
    run_factor_ablation,
    run_initial_placement_ablation,
)


@pytest.fixture(scope="module")
def ablation_instance():
    return make_instance(num_blocks=300, seed=5)


def test_initial_placement_ablation(ablation_instance, benchmark):
    """E11: Algorithm 4 starts closer to optimal than random placement."""
    result = benchmark.pedantic(
        run_initial_placement_ablation, args=(ablation_instance,),
        rounds=1, iterations=1,
    )
    assert result.greedy_initial_cost <= result.random_initial_cost
    # Greedy's head start: the random start needs at least comparable
    # balancing work to reach the same quality.
    assert result.converged_cost_greedy <= result.converged_cost_random + 1e-6


def test_factor_ablation(ablation_instance, benchmark):
    """E12: Algorithm 3 never loses to Scarlett's heuristics."""
    result = benchmark.pedantic(
        run_factor_ablation, args=(ablation_instance,),
        rounds=1, iterations=1,
    )
    assert result.aurora_wins()
    # Round-robin wastes budget on cold blocks; the gap should be large.
    assert result.round_robin_max_share >= result.aurora_max_share


def test_render_full_ablation_report(ablation_instance, benchmark):
    """Bundle all three ablations into one report artifact."""

    def build():
        return render_ablations(
            run_initial_placement_ablation(ablation_instance),
            run_factor_ablation(ablation_instance),
            run_epsilon_ablation(ablation_instance, epsilons=(0.1, 0.8)),
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result("ablations.txt", text)
    assert "E11" in text and "E12" in text and "E10" in text
