"""Benchmark E15: Aurora's convergence over reconfiguration periods.

Section V closes with: "if the block usage pattern become stable, over
time Aurora will eventually converge to a near optimal solution, as
indicated by Theorem 9."  This bench drives a stable read mix through
the full system for many periods and tracks the popularity-weighted max
machine load against the certified lower bound, then repeats under
popularity drift to show Aurora keeps chasing the optimum.
"""

import random

import pytest

from conftest import write_result
from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.experiments.report import render_table
from repro.simulation.engine import Simulation
from repro.workload.popularity import zipf_weights


def _drive_system(drift: bool, periods: int = 10, seed: int = 0):
    """Run Aurora for ``periods`` hours under a synthetic read mix."""
    sim = Simulation()
    topo = ClusterTopology.uniform(4, 4, capacity=120)
    nn = Namenode(
        topo, placement_policy=DefaultHdfsPolicy(random.Random(seed)),
        sim=sim, rng=random.Random(seed + 1),
    )
    aurora = AuroraSystem(nn, AuroraConfig(
        epsilon=0.1, period=3600.0, replication_budget=400,
    ))
    aurora.run_periodic(sim)
    num_files = 20
    metas = [nn.create_file(f"/f{i}", num_blocks=2) for i in range(num_files)]
    weights = list(zipf_weights(num_files, 1.1))
    rng = random.Random(seed + 2)

    def read_wave():
        nonlocal weights
        if drift and rng.random() < 0.5:
            # Rotate hotness: promote a random cold file to the head.
            index = rng.randrange(num_files // 2, num_files)
            weights.insert(0, weights.pop(index))
        for meta, weight in zip(metas, weights):
            for _ in range(max(1, int(60 * weight))):
                block = rng.choice(meta.block_ids)
                nn.record_access(block, rng.randrange(topo.num_machines))

    sim.schedule_periodic(600.0, read_wave)
    sim.run(until=periods * 3600.0 + 1.0)
    return aurora


def test_stable_workload_cost_ratio_converges(benchmark):
    """Stable popularity: later periods find (almost) nothing to do."""
    aurora = benchmark.pedantic(
        _drive_system, args=(False,), rounds=1, iterations=1
    )
    reports = aurora.reports
    assert len(reports) >= 9
    rows = [
        (index, report.cost_before, report.cost_after,
         report.search.total_operations if report.search else 0)
        for index, report in enumerate(reports)
    ]
    write_result(
        "convergence_stable.txt",
        render_table(["period", "cost before", "cost after", "ops"], rows),
    )
    early_ops = sum(row[3] for row in rows[:3])
    late_ops = sum(row[3] for row in rows[-3:])
    assert late_ops <= max(2, early_ops)
    # The final placement is near the optimum for its own popularity
    # snapshot: the last period could not improve it.
    final = reports[-1]
    assert final.cost_after <= final.cost_before + 1e-9


def test_drifting_workload_keeps_adapting(benchmark):
    """Under drift, Aurora keeps issuing (bounded) reconfiguration."""
    aurora = benchmark.pedantic(
        _drive_system, args=(True,), rounds=1, iterations=1
    )
    reports = aurora.reports
    moved = sum(
        report.replay.blocks_transferred for report in reports
    )
    replicated = sum(report.replication_increases for report in reports)
    write_result(
        "convergence_drift.txt",
        render_table(
            ["period", "cost before", "cost after", "blocks moved"],
            [
                (i, r.cost_before, r.cost_after,
                 r.replay.blocks_transferred)
                for i, r in enumerate(reports)
            ],
        ),
    )
    # Drift forces ongoing work...
    assert moved + replicated > 0
    # ...but every period still ends no worse than it began.
    for report in reports:
        assert report.cost_after <= report.cost_before + 1e-9
