"""Overhead of the observability layer on the local-search hot path.

The ``repro.obs`` registry is disabled by default and every
instrumentation site in ``balance_rack_aware`` batches counts in
``SearchStats``, flushing once per run behind a single ``enabled``
check — so a disabled registry adds one attribute read per run to the
algorithm.  There is no uninstrumented build to diff against, so the
measurable contract is relative: a disabled run must not be slower
than an enabled run (which pays the full flush), and even the enabled
flush must stay far below the 5% acceptance budget.  Both modes are
benchmarked so history shows the absolute gap.
"""

import statistics
import time

import pytest

from conftest import write_result
from repro import obs
from repro.core.initial_placement import place_all_blocks
from repro.core.local_search import balance_rack_aware
from repro.core.placement import PlacementState
from repro.experiments.ablation import make_instance

pytestmark = pytest.mark.bench


def _converge(instance):
    state = PlacementState(instance.problem())
    place_all_blocks(state)
    return balance_rack_aware(state)


@pytest.fixture
def instance():
    return make_instance(num_blocks=300, seed=13)


@pytest.fixture
def obs_clean():
    """Leave the process-global registry/tracer as the suite found it."""
    yield
    obs.get_registry().reset()
    obs.get_tracer().clear()
    obs.disable()


def test_local_search_registry_disabled(benchmark, instance, obs_clean):
    obs.disable()
    stats = benchmark.pedantic(_converge, args=(instance,),
                               rounds=3, iterations=1)
    assert stats.converged


def test_local_search_registry_enabled(benchmark, instance, obs_clean):
    obs.enable()
    obs.get_registry().reset()
    stats = benchmark.pedantic(_converge, args=(instance,),
                               rounds=3, iterations=1)
    assert stats.converged


def test_disabled_mode_overhead_within_budget(instance, obs_clean):
    """Interleaved medians: disabled must not exceed enabled + noise."""
    rounds = 5
    disabled, enabled = [], []
    _converge(instance)  # warm-up outside the measured rounds
    for _ in range(rounds):
        obs.disable()
        start = time.perf_counter()
        _converge(instance)
        disabled.append(time.perf_counter() - start)

        obs.enable()
        start = time.perf_counter()
        _converge(instance)
        enabled.append(time.perf_counter() - start)

    med_off = statistics.median(disabled)
    med_on = statistics.median(enabled)
    write_result(
        "obs_overhead.txt",
        f"balance_rack_aware median seconds over {rounds} rounds\n"
        f"registry disabled: {med_off:.6f}\n"
        f"registry enabled:  {med_on:.6f}\n"
        f"enabled/disabled:  {med_on / med_off:.3f}",
    )
    # The disabled path does strictly less work than the enabled one;
    # allow generous slack for scheduler noise on shared CI boxes.
    assert med_off <= med_on * 1.25
    # The once-per-run flush keeps even the enabled mode cheap.
    assert med_on <= med_off * 1.5
