"""Benchmark E13: the paper's future-work extensions in action.

Section VIII: "we are interested in implementing techniques such as
replication on read [9] and compression [10] for dynamic block
replication".  Both are implemented; this bench quantifies them on the
Figure 3 workload:

* replicate-on-read piggybacks extra replicas on remote reads, lifting
  locality beyond the periodic optimizer alone;
* movement compression shrinks migration durations without changing
  placement decisions.
"""

import random

import numpy as np
import pytest

from conftest import write_result
from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem
from repro.cluster.topology import ClusterTopology
from repro.dfs.namenode import Namenode
from repro.dfs.policies import DefaultHdfsPolicy
from repro.experiments.fig3 import default_trace
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    SystemKind,
    run_experiment,
)
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def base_runs():
    """Aurora with and without replicate-on-read on the same trace."""
    trace = default_trace(seed=0, duration_hours=2.0)
    plain = run_experiment(trace, ExperimentConfig(
        system=SystemKind.AURORA, epsilon=0.8, seed=0,
    ))
    # Replicate-on-read needs the full system wiring; reuse the harness
    # by monkeypatching is brittle, so drive a simulator directly.
    return trace, plain


def test_replicate_on_read_improves_locality(benchmark):
    """Remote reads seed replicas where demand actually lands."""

    def run():
        topo = ClusterTopology.uniform(3, 4, capacity=200)
        results = {}
        for label, probability in (("off", 0.0), ("on", 1.0)):
            nn = Namenode(
                topo,
                placement_policy=DefaultHdfsPolicy(random.Random(0)),
                rng=random.Random(0),
            )
            AuroraSystem(nn, AuroraConfig(
                replicate_on_read_probability=probability,
                replicate_on_read_budget=400,
            ))
            metas = [nn.create_file(f"/f{i}", num_blocks=2)
                     for i in range(20)]
            rng = random.Random(1)
            remote = 0
            reads = 600
            for _ in range(reads):
                meta = rng.choice(metas)
                block = rng.choice(meta.block_ids)
                reader = rng.randrange(topo.num_machines)
                source = nn.record_access(block, reader)
                if source != reader:
                    remote += 1
            results[label] = remote / reads
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["on"] < results["off"]
    write_result(
        "extension_replicate_on_read.txt",
        render_table(
            ["replicate-on-read", "remote read fraction"],
            [(k, v) for k, v in results.items()],
        ),
    )


def test_movement_compression_shrinks_durations(base_runs, benchmark):
    """27x compression cuts migration durations by ~27x."""
    trace, _plain = base_runs

    def run():
        durations = {}
        for label, ratio in (("uncompressed", 1.0), ("27x", 27.0)):
            result = run_experiment(trace, ExperimentConfig(
                system=SystemKind.AURORA, epsilon=0.1, seed=0,
                compression_ratio=ratio,
            ))
            samples = result.movement_durations
            durations[label] = float(np.median(samples)) if samples else 0.0
        return durations

    durations = benchmark.pedantic(run, rounds=1, iterations=1)
    assert durations["27x"] < durations["uncompressed"] / 5
    write_result(
        "extension_compression.txt",
        render_table(
            ["movement traffic", "median duration (s)"],
            [(k, v) for k, v in durations.items()],
        ),
    )


def test_replicate_on_read_respects_budget(benchmark):
    """The LRU budget bounds the extra storage footprint."""

    def run():
        topo = ClusterTopology.uniform(2, 4, capacity=100)
        nn = Namenode(
            topo, placement_policy=DefaultHdfsPolicy(random.Random(2)),
            rng=random.Random(2),
        )
        aurora = AuroraSystem(nn, AuroraConfig(
            replicate_on_read_probability=1.0,
            replicate_on_read_budget=10,
        ))
        metas = [nn.create_file(f"/f{i}", num_blocks=1) for i in range(30)]
        rng = random.Random(3)
        for meta in metas:
            block = meta.block_ids[0]
            for _ in range(3):
                nn.record_access(block, rng.randrange(topo.num_machines))
        return aurora.replicate_on_read.extra_replicas

    extras = benchmark.pedantic(run, rounds=1, iterations=1)
    assert extras <= 10
