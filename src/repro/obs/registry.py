"""Labeled metrics registry: counters, gauges and histograms.

The production-facing counterpart of :mod:`repro.simulation.metrics`.
Where the simulation collectors hold unlabeled in-sim samples for one
experiment, this registry follows the Prometheus data model so every
layer of the stack can emit named, labeled series through one process
global:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — last-write-wins instantaneous values;
* :class:`Histogram` — bucketed samples with sum/count/min/max and a
  bucket-interpolated percentile estimator;
* :class:`MetricsRegistry` — owns the metrics, hands out handles
  idempotently, and snapshots/resets them atomically.

Overhead contract: the default registry starts **disabled**, and every
observation method begins with one attribute check
(``if not self._registry._enabled: return``), so instrumentation left in
hot paths costs a no-op method call until an operator opts in via
:func:`enable_metrics`.  Hot loops additionally batch their counts and
flush once per run (see ``repro.core.local_search``).
"""

from __future__ import annotations

import ast
import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MetricsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
]

# Wall-clock latencies in this codebase span ~1us (one no-op guard) to
# minutes (a full figure run), hence the wide geometric spacing.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 60.0, 300.0, 3600.0,
)

_LabelKey = Tuple[str, ...]


def _format_labels(labelnames: Sequence[str], values: _LabelKey) -> str:
    pairs = ", ".join(f"{k}={v!r}" for k, v in zip(labelnames, values))
    return "{" + pairs + "}"


# One name=<repr'd string> pair inside a rendered label string.
_LABEL_PAIR = re.compile(
    r"(\w+)=('(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\")"
)


class _MetricBase:
    """Shared plumbing: label validation and child caching."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[_LabelKey, "_MetricBase"] = {}
        self._label_values: _LabelKey = ()

    def labels(self, **labels: str) -> "_MetricBase":
        """The child series for one concrete label set (cached)."""
        if not self.labelnames:
            raise MetricsError(f"metric {self.name!r} has no labels")
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self._registry, self.name, self.help, ())
            child._label_values = key
            self._children[key] = child
        return child

    def _require_leaf(self) -> None:
        if self.labelnames:
            raise MetricsError(
                f"metric {self.name!r} is labeled; call "
                f".labels({', '.join(self.labelnames)}) first"
            )

    def _series(self) -> List[Tuple[_LabelKey, "_MetricBase"]]:
        """(label values, leaf) pairs, parents first for stable output."""
        if self.labelnames:
            return [
                (key, child) for key, child in sorted(self._children.items())
            ]
        return [((), self)]

    def _reset_values(self) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Zero this metric (and every labeled child)."""
        for _, leaf in self._series():
            leaf._reset_values()


class Counter(_MetricBase):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, registry, name, help, labelnames) -> None:
        super().__init__(registry, name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if not self._registry._enabled:
            return
        self._require_leaf()
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        self._require_leaf()
        return self._value

    def _reset_values(self) -> None:
        self._value = 0.0


class Gauge(_MetricBase):
    """An instantaneous value that can go up and down."""

    kind = "gauge"

    def __init__(self, registry, name, help, labelnames) -> None:
        super().__init__(registry, name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        if not self._registry._enabled:
            return
        self._require_leaf()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        if not self._registry._enabled:
            return
        self._require_leaf()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        self._require_leaf()
        return self._value

    def _reset_values(self) -> None:
        self._value = 0.0


class Histogram(_MetricBase):
    """Bucketed sample distribution (Prometheus cumulative-bucket style).

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists.
    ``percentile`` estimates quantiles by linear interpolation inside the
    winning bucket, clamped to the observed min/max so it stays
    comparable to :meth:`repro.simulation.metrics.Distribution.percentile`
    up to one bucket width.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError(f"histogram {self.name!r} needs >= 1 bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {self.name!r} buckets must strictly increase"
            )
        self.buckets: Tuple[float, ...] = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def labels(self, **labels: str) -> "Histogram":
        if not self.labelnames:
            raise MetricsError(f"metric {self.name!r} has no labels")
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self._registry, self.name, self.help, (),
                              buckets=self.buckets)
            child._label_values = key
            self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        """Record one sample."""
        if not self._registry._enabled:
            return
        self._require_leaf()
        value = float(value)
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Total samples observed."""
        self._require_leaf()
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        self._require_leaf()
        return self._sum

    def mean(self) -> float:
        """Arithmetic mean (nan when empty)."""
        self._require_leaf()
        if self._count == 0:
            return math.nan
        return self._sum / self._count

    def cumulative_counts(self) -> List[int]:
        """Cumulative count per bucket, ``+Inf`` last."""
        self._require_leaf()
        out, running = [], 0
        for count in self._counts:
            running += count
            out.append(running)
        return out

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile, ``q`` in [0, 100] (nan if empty)."""
        self._require_leaf()
        if not 0 <= q <= 100:
            raise MetricsError("percentile q must be in [0, 100]")
        if self._count == 0:
            return math.nan
        rank = q / 100.0 * self._count
        cumulative = self.cumulative_counts()
        for index, seen in enumerate(cumulative):
            if seen >= rank:
                upper = (
                    self._max if index == len(self.buckets)
                    else min(self.buckets[index], self._max)
                )
                lower = self._min if index == 0 else self.buckets[index - 1]
                lower = max(lower, self._min)
                if upper <= lower:
                    return upper
                prior = cumulative[index - 1] if index else 0
                in_bucket = seen - prior
                fraction = (rank - prior) / in_bucket if in_bucket else 1.0
                return lower + fraction * (upper - lower)
        return self._max

    def _reset_values(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf


class MetricsRegistry:
    """Owns a namespace of metrics; hands out handles idempotently.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (so module-level handles and test
    lookups alias the same object) and raise on kind or label-name
    conflicts.  ``snapshot`` produces a pure-python structure the
    exporters and the harness serialize; ``reset`` zeroes every series
    while keeping registrations (module-level handles stay valid).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._metrics: Dict[str, _MetricBase] = {}
        self._lock = threading.Lock()

    # -- enablement ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether observations are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording observations."""
        self._enabled = True

    def disable(self) -> None:
        """Drop observations on the floor (near-zero overhead)."""
        self._enabled = False

    # -- registration --------------------------------------------------------

    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> _MetricBase:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise MetricsError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise MetricsError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            metric = cls(self, name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Register (or look up) a counter."""
        return self._register(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Register (or look up) a gauge."""
        return self._register(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Register (or look up) a histogram."""
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_MetricBase]:
        """The metric called ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def metrics(self) -> List[_MetricBase]:
        """All registered metrics, sorted by name."""
        return [self._metrics[name] for name in self.names()]

    # -- snapshot / reset ----------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """All current values as a plain, JSON-friendly structure.

        Shape per metric: ``{"kind", "help", "labelnames", "series"}``
        where ``series`` maps a rendered label string (``""`` for
        unlabeled metrics) to the leaf's value — a number for
        counters/gauges, a ``{"count", "sum", "buckets"}`` dict for
        histograms.
        """
        out: Dict[str, dict] = {}
        for metric in self.metrics():
            series: Dict[str, object] = {}
            for key, leaf in metric._series():
                label = (
                    _format_labels(metric.labelnames, key) if key else ""
                )
                if isinstance(leaf, Histogram):
                    series[label] = {
                        "count": leaf.count,
                        "sum": leaf.sum,
                        "min": leaf._min if leaf.count else None,
                        "max": leaf._max if leaf.count else None,
                        "buckets": {
                            ("+Inf" if i == len(leaf.buckets)
                             else repr(leaf.buckets[i])): cum
                            for i, cum in enumerate(leaf.cumulative_counts())
                        },
                    }
                else:
                    series[label] = leaf.value  # type: ignore[union-attr]
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": series,
            }
        return out

    def reset(self) -> None:
        """Zero every series; registrations (and handles) survive."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    # -- merging -------------------------------------------------------------

    def merge(self, snapshot: Mapping[str, dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add; gauges take the incoming value (last write wins,
        in merge-call order); histograms add per-bucket counts, sum and
        count and widen min/max.  Metrics or label series absent locally
        are created on the fly, so a parent process can absorb worker
        snapshots without pre-registering every metric.  Merging happens
        regardless of the enabled flag — the snapshot was already paid
        for elsewhere.
        """
        for name, data in snapshot.items():
            kind = data["kind"]
            help_text = data.get("help", "")
            labelnames = tuple(data["labelnames"])
            series: Mapping[str, object] = data["series"]
            if kind == "counter":
                metric = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labelnames)
            elif kind == "histogram":
                bounds = None
                for value in series.values():
                    bounds = tuple(
                        float(key)
                        for key in value["buckets"]  # type: ignore[index]
                        if key != "+Inf"
                    )
                    break
                metric = self.histogram(
                    name, help_text, labelnames,
                    buckets=bounds if bounds else DEFAULT_BUCKETS,
                )
            else:
                raise MetricsError(
                    f"cannot merge metric {name!r} of kind {kind!r}"
                )
            for rendered, value in series.items():
                if labelnames:
                    labels = _labels_from_string(labelnames, rendered)
                    leaf = metric.labels(**labels)
                else:
                    leaf = metric
                if kind == "counter":
                    leaf._value += float(value)  # type: ignore[attr-defined, arg-type]
                elif kind == "gauge":
                    leaf._value = float(value)  # type: ignore[attr-defined, arg-type]
                else:
                    self._merge_histogram(leaf, value)  # type: ignore[arg-type]

    @staticmethod
    def _merge_histogram(leaf: "Histogram", value: Mapping[str, object]) -> None:
        buckets: Mapping[str, int] = value["buckets"]  # type: ignore[assignment]
        if len(buckets) != len(leaf.buckets) + 1:
            raise MetricsError(
                f"histogram {leaf.name!r} bucket layout mismatch in merge"
            )
        previous = 0
        for index, cumulative in enumerate(buckets.values()):
            leaf._counts[index] += cumulative - previous
            previous = cumulative
        leaf._sum += float(value["sum"])  # type: ignore[arg-type]
        leaf._count += int(value["count"])  # type: ignore[arg-type]
        incoming_min = value.get("min")
        incoming_max = value.get("max")
        if incoming_min is not None and float(incoming_min) < leaf._min:  # type: ignore[arg-type]
            leaf._min = float(incoming_min)  # type: ignore[arg-type]
        if incoming_max is not None and float(incoming_max) > leaf._max:  # type: ignore[arg-type]
            leaf._max = float(incoming_max)  # type: ignore[arg-type]


# -- the process-global default registry ------------------------------------

# Disabled by default: the acceptance contract is <5% overhead on the
# seed's hot paths when nobody asked for metrics.
_DEFAULT = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global default registry every layer emits into."""
    return _DEFAULT


def enable_metrics() -> None:
    """Turn on recording in the default registry."""
    _DEFAULT.enable()


def disable_metrics() -> None:
    """Turn off recording in the default registry."""
    _DEFAULT.disable()


def metrics_enabled() -> bool:
    """Whether the default registry is recording."""
    return _DEFAULT.enabled


def _labels_from_string(labelnames: Sequence[str], rendered: str) -> Mapping[str, str]:
    """Inverse of the snapshot label rendering.

    Values are rendered with ``repr`` (label values are always strings),
    so each is a quoted Python literal; matching the literal and
    ``literal_eval``-ing it survives embedded quotes, backslashes,
    newlines and commas.
    """
    if not rendered:
        return {}
    out = {}
    for name, literal in _LABEL_PAIR.findall(rendered):
        out[name] = ast.literal_eval(literal)
    return out
