"""Render a telemetry directory as a dashboard (HTML + markdown).

``repro report`` feeds a :class:`~repro.obs.telemetry.TelemetryBundle`
through :func:`render_html` / :func:`render_markdown`:

* **time-series panels** — inline-SVG sparklines, one per selected
  series; counters are plotted as per-second rates, gauges as values,
  histograms as per-interval p99.  Panel selection prefers the
  request-path series every run cares about, then falls back to the
  most active remaining series;
* **SLO burn table** — objective, overall SLI vs target, error-budget
  consumed, burn rate, violated windows and violation minutes;
* **slowest traces** — top-N assembled causal traces with their
  critical path spelled out span by span.

The HTML is fully self-contained — inline CSS, inline SVG, no script,
no external fetches — so it can be committed, attached to CI artifacts
and opened from anywhere.
"""

from __future__ import annotations

import html as _html
from typing import List, Sequence, Tuple

from repro.obs.slo import SloStatus
from repro.obs.telemetry import TelemetryBundle
from repro.obs.timeseries import TimeSeries, bucket_percentile
from repro.obs.tracing import format_trace

__all__ = ["render_markdown", "render_html", "sparkline_svg",
           "select_panels"]

# Request-path series shown first whenever they carry data; everything
# else competes on activity.
_PREFERRED = (
    "repro_dfs_reads_total",
    "repro_dfs_read_latency_seconds",
    "repro_dfs_read_errors_total",
    "repro_dfs_read_failovers_total",
    "repro_dfs_under_replicated_blocks",
    "repro_dfs_replication_queue_depth",
    "repro_dfs_transfer_bytes_total",
    "repro_aurora_cost",
    "repro_overload_queue_shed_total",
)


def _panel_points(series: TimeSeries) -> List[Tuple[float, float]]:
    """The plottable (t, y) points for one series, per its kind."""
    if series.kind == "counter":
        return series.rates()
    if series.kind == "histogram":
        out: List[Tuple[float, float]] = []
        times = series.times()
        for t0, t1 in zip(times, times[1:]):
            window = series.window_histogram(t0, t1)
            if window is None or window.count == 0:
                out.append((t1, 0.0))
            else:
                out.append((t1, bucket_percentile(
                    series.bucket_bounds, window, 99.0
                )))
        return out
    return [(t, float(v)) for t, v in series.points()]  # type: ignore[arg-type]


def _panel_label(series: TimeSeries) -> str:
    suffix = {"counter": "rate/s", "histogram": "p99"}.get(series.kind, "")
    labels = f"{{{series.labels}}}" if series.labels else ""
    return f"{series.name}{labels}" + (f" ({suffix})" if suffix else "")


def select_panels(
    bundle: TelemetryBundle, limit: int = 12
) -> List[Tuple[str, List[Tuple[float, float]]]]:
    """Pick and prepare up to ``limit`` sparkline panels."""
    chosen: List[Tuple[str, List[Tuple[float, float]]]] = []
    seen = set()

    def consider(series: TimeSeries) -> None:
        key = (series.name, series.labels)
        if key in seen or len(chosen) >= limit:
            return
        points = _panel_points(series)
        if len(points) < 2 or all(y == 0.0 for _, y in points):
            return
        seen.add(key)
        chosen.append((_panel_label(series), points))

    for name in _PREFERRED:
        for series in bundle.recorder.matching(name):
            consider(series)
    # Fall back to the most active remaining series (by nonzero points).
    remaining = sorted(
        bundle.recorder.series.values(),
        key=lambda s: -sum(1 for _, y in _panel_points(s) if y != 0.0),
    )
    for series in remaining:
        consider(series)
    return chosen


def sparkline_svg(points: Sequence[Tuple[float, float]],
                  width: int = 260, height: int = 48) -> str:
    """A minimal inline-SVG sparkline for one series."""
    if not points:
        return f'<svg width="{width}" height="{height}"></svg>'
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    pad = 3

    def sx(x: float) -> float:
        return pad + (x - x0) / xspan * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y0) / yspan * (height - 2 * pad)

    rendered = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    last_x, last_y = points[-1]
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline points="{rendered}" fill="none" '
        f'stroke="#2a6fb0" stroke-width="1.5"/>'
        f'<circle cx="{sx(last_x):.1f}" cy="{sy(last_y):.1f}" r="2.2" '
        f'fill="#c0392b"/>'
        "</svg>"
    )


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def _slo_rows(statuses: Sequence[SloStatus]) -> List[Tuple[str, ...]]:
    rows = []
    for status in statuses:
        obj = status.objective
        rows.append((
            obj.name,
            "PASS" if status.compliant else "VIOLATED",
            f"{status.overall_sli:.4f}",
            f"{obj.target:.4f}",
            f"{status.budget_consumed * 100:.1f}%",
            f"{status.burn_rate:.2f}x",
            f"{status.windows_violated}/{len(status.windows)}",
            f"{status.violation_minutes:.1f}",
        ))
    return rows


_SLO_HEADER = ("objective", "state", "SLI", "target", "budget used",
               "burn rate", "windows violated", "violation min")


def render_markdown(bundle: TelemetryBundle, top_traces: int = 5) -> str:
    """The dashboard as GitHub-flavored markdown."""
    meta = bundle.meta
    lines = [
        f"# Telemetry report: {meta.get('label', 'run')}",
        "",
        f"- seed: {meta.get('seed', '?')}",
        f"- simulated span: {_fmt(float(meta.get('sim_start', 0.0)))}s "
        f"– {_fmt(float(meta.get('sim_end', 0.0)))}s",
        f"- samples: {meta.get('samples_taken', 0)}, "
        f"spans recorded: {meta.get('spans_recorded', 0)}, "
        f"trace sample rate: {meta.get('trace_sample_rate', 0)}",
        "",
        "## SLO burn",
        "",
    ]
    rows = _slo_rows(bundle.statuses)
    if rows:
        lines.append("| " + " | ".join(_SLO_HEADER) + " |")
        lines.append("|" + "---|" * len(_SLO_HEADER))
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
    else:
        lines.append("_no objectives evaluated_")
    lines += ["", "## Time series", ""]
    panels = select_panels(bundle)
    if panels:
        for label, points in panels:
            ys = [y for _, y in points]
            lines.append(
                f"- `{label}`: {len(points)} points, "
                f"min {_fmt(min(ys))}, max {_fmt(max(ys))}, "
                f"last {_fmt(ys[-1])}"
            )
    else:
        lines.append("_no series recorded_")
    lines += ["", f"## Slowest traces (top {top_traces})", ""]
    traces = bundle.traces()[:top_traces]
    if traces:
        for trace in traces:
            lines.append("```")
            lines.append(format_trace(trace))
            lines.append("critical path: " + " -> ".join(
                f"{node.name} ({_fmt(node.busy_seconds)}s)"
                for node in trace.critical_path()
            ))
            lines.append("```")
            lines.append("")
    else:
        lines.append("_no traces captured_")
    return "\n".join(lines).rstrip() + "\n"


_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #222; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.5rem 0 1.5rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem;
         font-size: 0.85rem; text-align: left; }
th { background: #f2f4f7; }
.pass { color: #1e7b34; font-weight: 600; }
.violated { color: #c0392b; font-weight: 600; }
.panels { display: flex; flex-wrap: wrap; gap: 1rem; }
.panel { border: 1px solid #ddd; border-radius: 6px; padding: 0.6rem;
         width: 280px; }
.panel .name { font-size: 0.72rem; font-family: monospace;
               color: #444; word-break: break-all; }
.panel .stats { font-size: 0.7rem; color: #777; }
pre.trace { background: #f7f8fa; border: 1px solid #ddd;
            border-radius: 6px; padding: 0.8rem; font-size: 0.78rem;
            overflow-x: auto; }
.meta { color: #666; font-size: 0.85rem; }
.critical { color: #c0392b; }
"""


def render_html(bundle: TelemetryBundle, top_traces: int = 5) -> str:
    """The dashboard as one self-contained HTML document."""
    meta = bundle.meta
    esc = _html.escape
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>Telemetry: {esc(str(meta.get('label', 'run')))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Telemetry report: {esc(str(meta.get('label', 'run')))}</h1>",
        "<p class=\"meta\">"
        f"seed {esc(str(meta.get('seed', '?')))} · "
        f"simulated span {_fmt(float(meta.get('sim_start', 0.0)))}s – "
        f"{_fmt(float(meta.get('sim_end', 0.0)))}s · "
        f"{meta.get('samples_taken', 0)} samples · "
        f"{meta.get('spans_recorded', 0)} spans · "
        f"trace rate {meta.get('trace_sample_rate', 0)}"
        "</p>",
        "<h2>SLO burn</h2>",
    ]
    rows = _slo_rows(bundle.statuses)
    if rows:
        parts.append("<table id=\"slo\"><thead><tr>")
        parts.extend(f"<th>{esc(h)}</th>" for h in _SLO_HEADER)
        parts.append("</tr></thead><tbody>")
        for row in rows:
            state_class = "pass" if row[1] == "PASS" else "violated"
            cells = [f"<td>{esc(row[0])}</td>",
                     f"<td class=\"{state_class}\">{esc(row[1])}</td>"]
            cells.extend(f"<td>{esc(cell)}</td>" for cell in row[2:])
            parts.append("<tr>" + "".join(cells) + "</tr>")
        parts.append("</tbody></table>")
    else:
        parts.append("<p><em>no objectives evaluated</em></p>")
    parts.append("<h2>Time series</h2><div class=\"panels\">")
    panels = select_panels(bundle)
    for label, points in panels:
        ys = [y for _, y in points]
        parts.append(
            "<div class=\"panel\">"
            f"<div class=\"name\">{esc(label)}</div>"
            f"{sparkline_svg(points)}"
            f"<div class=\"stats\">min {_fmt(min(ys))} · "
            f"max {_fmt(max(ys))} · last {_fmt(ys[-1])}</div>"
            "</div>"
        )
    if not panels:
        parts.append("<p><em>no series recorded</em></p>")
    parts.append("</div>")
    parts.append(f"<h2>Slowest traces (top {top_traces})</h2>")
    traces = bundle.traces()[:top_traces]
    for trace in traces:
        path = " &rarr; ".join(
            f"{esc(node.name)} ({_fmt(node.busy_seconds)}s)"
            for node in trace.critical_path()
        )
        parts.append(
            f"<pre class=\"trace\">{esc(format_trace(trace))}\n"
            f"<span class=\"critical\">critical path: </span>{path}</pre>"
        )
    if not traces:
        parts.append("<p><em>no traces captured</em></p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
