"""Declarative SLOs evaluated over sliding sim-time windows.

An :class:`SloObjective` states a promise about behavior — "99.9% of
reads succeed", "p99 read latency stays under 5s", "under-replication
episodes repair within 10 minutes" — and the :class:`SloEngine` checks
it against the :class:`~repro.obs.timeseries.TimeSeriesRecorder`'s
series, window by window.  Three SLI shapes cover the stack:

* ``ratio`` — good events / (good + bad) from two counter series'
  per-window deltas (the classic request-success SLI);
* ``latency`` — the fraction of a histogram series' windowed
  observations at or below a threshold (and the windowed percentile,
  reported alongside);
* ``threshold`` — a gauge series whose per-window maximum must stay at
  or below a bound (queue depth, under-replicated blocks).

Each objective yields an :class:`SloStatus` with per-window compliance,
**violation minutes** (simulated), the fraction of the error budget
consumed, and the **burn rate** — budget consumed relative to what a
run of this length is allowed to burn; a burn rate above 1.0 means the
objective fails if the run's behavior continues.  Chaos and overload
storms attach these to their reports so a protection mechanism's value
shows up as avoided violation minutes, not just end-of-run aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import MetricsError
from repro.obs.timeseries import (
    TimeSeriesRecorder,
    bucket_fraction_below,
    bucket_percentile,
)

__all__ = [
    "SloObjective",
    "SloWindow",
    "SloStatus",
    "SloEngine",
    "availability_slo",
    "latency_slo",
    "threshold_slo",
]

_KINDS = ("ratio", "latency", "threshold")


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over recorded time series.

    ``target`` is the compliance goal in [0, 1]: for ``ratio`` the
    minimum good fraction per window, for ``latency`` the minimum
    fraction of observations under ``threshold``, for ``threshold``
    the minimum fraction of windows whose max stays under the bound
    (each window is then simply compliant/violating).  ``window`` is
    the evaluation window in simulated seconds.
    """

    name: str
    kind: str
    target: float
    window: float
    description: str = ""
    # ratio: the two counter series (deltas summed across labels).
    good_series: str = ""
    bad_series: str = ""
    # latency: the histogram series, threshold and reported percentile.
    series: str = ""
    threshold: float = 0.0
    percentile: float = 99.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise MetricsError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target <= 1.0:
            raise MetricsError("SLO target must be in (0, 1]")
        if self.window <= 0:
            raise MetricsError("SLO window must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "window": self.window,
            "description": self.description,
            "good_series": self.good_series,
            "bad_series": self.bad_series,
            "series": self.series,
            "threshold": self.threshold,
            "percentile": self.percentile,
        }

    @staticmethod
    def from_dict(raw: Mapping[str, object]) -> "SloObjective":
        return SloObjective(
            name=str(raw["name"]),
            kind=str(raw["kind"]),
            target=float(raw["target"]),  # type: ignore[arg-type]
            window=float(raw["window"]),  # type: ignore[arg-type]
            description=str(raw.get("description", "")),
            good_series=str(raw.get("good_series", "")),
            bad_series=str(raw.get("bad_series", "")),
            series=str(raw.get("series", "")),
            threshold=float(raw.get("threshold", 0.0)),  # type: ignore[arg-type]
            percentile=float(raw.get("percentile", 99.0)),  # type: ignore[arg-type]
        )


def availability_slo(name: str, good_series: str, bad_series: str,
                     target: float = 0.999, window: float = 60.0,
                     description: str = "") -> SloObjective:
    """A ratio SLI: good / (good + bad) per window must reach ``target``."""
    return SloObjective(
        name=name, kind="ratio", target=target, window=window,
        good_series=good_series, bad_series=bad_series,
        description=description,
    )


def latency_slo(name: str, series: str, threshold: float,
                target: float = 0.99, window: float = 60.0,
                percentile: float = 99.0,
                description: str = "") -> SloObjective:
    """A latency SLI over a histogram series: P(x <= threshold) >= target."""
    return SloObjective(
        name=name, kind="latency", target=target, window=window,
        series=series, threshold=threshold, percentile=percentile,
        description=description,
    )


def threshold_slo(name: str, series: str, threshold: float,
                  target: float = 0.95, window: float = 60.0,
                  description: str = "") -> SloObjective:
    """A gauge bound: the window max must stay at or below ``threshold``."""
    return SloObjective(
        name=name, kind="threshold", target=target, window=window,
        series=series, threshold=threshold, description=description,
    )


@dataclass
class SloWindow:
    """One evaluated window of one objective."""

    start: float
    end: float
    sli: float            # the measured good fraction / compliance value
    compliant: bool
    good: float = 0.0     # events meeting the objective (ratio/latency)
    total: float = 0.0    # events observed in the window
    detail: float = 0.0   # latency: windowed percentile; threshold: max

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": self.start, "end": self.end, "sli": self.sli,
            "compliant": self.compliant, "good": self.good,
            "total": self.total, "detail": self.detail,
        }


@dataclass
class SloStatus:
    """The verdict on one objective over a full run."""

    objective: SloObjective
    windows: List[SloWindow] = field(default_factory=list)
    overall_sli: float = 1.0
    budget_consumed: float = 0.0   # fraction of the error budget burned
    burn_rate: float = 0.0         # >1.0 = violating at steady state

    @property
    def windows_violated(self) -> int:
        """Windows that missed the objective."""
        return sum(1 for w in self.windows if not w.compliant)

    @property
    def violation_minutes(self) -> float:
        """Simulated minutes spent out of compliance."""
        return sum(
            (w.end - w.start) for w in self.windows if not w.compliant
        ) / 60.0

    @property
    def compliant(self) -> bool:
        """Whether the run as a whole met the objective."""
        return self.overall_sli >= self.objective.target

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective.to_dict(),
            "windows": [w.to_dict() for w in self.windows],
            "overall_sli": self.overall_sli,
            "budget_consumed": self.budget_consumed,
            "burn_rate": self.burn_rate,
            "windows_violated": self.windows_violated,
            "violation_minutes": self.violation_minutes,
            "compliant": self.compliant,
        }

    @staticmethod
    def from_dict(raw: Mapping[str, object]) -> "SloStatus":
        status = SloStatus(
            objective=SloObjective.from_dict(raw["objective"]),  # type: ignore[arg-type]
            overall_sli=float(raw.get("overall_sli", 1.0)),  # type: ignore[arg-type]
            budget_consumed=float(raw.get("budget_consumed", 0.0)),  # type: ignore[arg-type]
            burn_rate=float(raw.get("burn_rate", 0.0)),  # type: ignore[arg-type]
        )
        for w in raw.get("windows", []):  # type: ignore[union-attr]
            status.windows.append(SloWindow(
                start=float(w["start"]), end=float(w["end"]),
                sli=float(w["sli"]), compliant=bool(w["compliant"]),
                good=float(w.get("good", 0.0)),
                total=float(w.get("total", 0.0)),
                detail=float(w.get("detail", 0.0)),
            ))
        return status


class SloEngine:
    """Evaluates registered objectives against a recorder's series."""

    def __init__(self, recorder: TimeSeriesRecorder) -> None:
        self.recorder = recorder
        self.objectives: List[SloObjective] = []

    def add(self, objective: SloObjective) -> SloObjective:
        """Register one objective (returned for chaining)."""
        self.objectives.append(objective)
        return objective

    def evaluate(self, start: Optional[float] = None,
                 end: Optional[float] = None) -> List[SloStatus]:
        """Evaluate every objective over ``[start, end]`` sim time.

        Defaults to the recorder's full sampled span.  Windows are
        aligned to ``start``; a trailing partial window is evaluated
        over its actual duration.
        """
        span_start, span_end = self.recorder.span()
        start = span_start if start is None else start
        end = span_end if end is None else end
        return [
            self._evaluate_one(obj, start, end) for obj in self.objectives
        ]

    def _evaluate_one(self, objective: SloObjective, start: float,
                      end: float) -> SloStatus:
        status = SloStatus(objective=objective)
        if end <= start:
            return status
        t0 = start
        while t0 < end:
            t1 = min(t0 + objective.window, end)
            status.windows.append(self._window(objective, t0, t1))
            t0 = t1
        self._totals(objective, status, start, end)
        return status

    def _window(self, objective: SloObjective, t0: float,
                t1: float) -> SloWindow:
        if objective.kind == "ratio":
            good = self.recorder.summed_delta(objective.good_series, t0, t1)
            bad = self.recorder.summed_delta(objective.bad_series, t0, t1)
            total = good + bad
            sli = good / total if total > 0 else 1.0
            return SloWindow(
                start=t0, end=t1, sli=sli,
                compliant=sli >= objective.target,
                good=good, total=total,
            )
        if objective.kind == "latency":
            series = self.recorder.get(objective.series)
            window = (
                series.window_histogram(t0, t1)
                if series is not None else None
            )
            if window is None or window.count == 0:
                return SloWindow(start=t0, end=t1, sli=1.0, compliant=True)
            bounds = series.bucket_bounds  # type: ignore[union-attr]
            sli = bucket_fraction_below(bounds, window, objective.threshold)
            detail = bucket_percentile(bounds, window, objective.percentile)
            return SloWindow(
                start=t0, end=t1, sli=sli,
                compliant=sli >= objective.target,
                good=sli * window.count, total=float(window.count),
                detail=detail,
            )
        # threshold: the window max of a gauge must stay under the bound.
        peak = 0.0
        for series in self.recorder.matching(objective.series):
            for t, v in series.points():
                if t0 < t <= t1:
                    peak = max(peak, float(v))  # type: ignore[arg-type]
        compliant = peak <= objective.threshold
        return SloWindow(
            start=t0, end=t1, sli=1.0 if compliant else 0.0,
            compliant=compliant, detail=peak,
        )

    @staticmethod
    def _totals(objective: SloObjective, status: SloStatus,
                start: float, end: float) -> None:
        """Overall SLI, budget burn and burn rate from the windows."""
        good = sum(w.good for w in status.windows)
        total = sum(w.total for w in status.windows)
        if objective.kind == "threshold" or total <= 0:
            # Event-free SLIs fall back to time-based compliance.
            compliant_time = sum(
                w.end - w.start for w in status.windows if w.compliant
            )
            span = end - start
            status.overall_sli = compliant_time / span if span > 0 else 1.0
        else:
            status.overall_sli = good / total
        allowed = 1.0 - objective.target
        bad_fraction = 1.0 - status.overall_sli
        if allowed <= 0:
            status.budget_consumed = 0.0 if bad_fraction <= 0 else 1.0
        else:
            status.budget_consumed = min(10.0, bad_fraction / allowed)
        # Burn rate: over a fixed-length run the full budget maps to the
        # whole span, so consumed/1.0 is also the steady-state burn.
        status.burn_rate = status.budget_consumed
