"""Simulation-clock time series sampled from the metrics registry.

The registry (:mod:`repro.obs.registry`) answers "what are the totals
now"; this module answers "*when* during the run did they move".  A
:class:`TimeSeriesRecorder` samples every registered metric on a
simulated-clock cadence — installed as a periodic event on the DES
engine via :meth:`TimeSeriesRecorder.install`, or driven explicitly
from period boundaries (``AuroraSystem.telemetry``) — and keeps one
ring-buffered :class:`TimeSeries` of ``(sim_time, value)`` points per
metric leaf:

* **counters** store the raw cumulative total; :meth:`TimeSeries.rates`
  derives the per-second rate between consecutive samples and
  :meth:`TimeSeries.delta` the increase over a window;
* **gauges** store the instantaneous value;
* **histograms** store ``(count, sum, cumulative bucket counts)`` per
  sample, which is enough to reconstruct *windowed* distributions —
  per-window percentiles and threshold-compliance fractions — by
  differencing two samples (see :func:`bucket_percentile` and the SLO
  engine built on it).

Everything is pure python and JSON round-trippable so a run's telemetry
can be written to disk and rendered later by ``repro report``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MetricsError
from repro.obs.registry import Histogram, MetricsRegistry, get_registry

__all__ = [
    "TimeSeries",
    "HistogramSample",
    "TimeSeriesRecorder",
    "bucket_percentile",
    "bucket_fraction_below",
]


class HistogramSample:
    """One histogram observation point: totals plus cumulative buckets."""

    __slots__ = ("count", "sum", "buckets")

    def __init__(self, count: int, total: float,
                 buckets: Tuple[int, ...]) -> None:
        self.count = count
        self.sum = total
        self.buckets = buckets

    def as_list(self) -> list:
        return [self.count, self.sum, list(self.buckets)]

    @staticmethod
    def from_list(raw: Sequence) -> "HistogramSample":
        return HistogramSample(int(raw[0]), float(raw[1]),
                               tuple(int(c) for c in raw[2]))


class TimeSeries:
    """Ring-buffered ``(sim_time, value)`` samples for one metric leaf.

    ``kind`` follows the registry ("counter" / "gauge" / "histogram");
    histogram points hold :class:`HistogramSample` values, everything
    else plain floats.  ``capacity`` bounds retention: the buffer keeps
    the most recent samples, like the span tracer.
    """

    def __init__(self, name: str, kind: str, labels: str = "",
                 capacity: int = 4096,
                 bucket_bounds: Tuple[float, ...] = ()) -> None:
        if capacity < 2:
            raise MetricsError("time series capacity must be >= 2")
        self.name = name
        self.kind = kind
        self.labels = labels
        self.capacity = capacity
        self.bucket_bounds = bucket_bounds
        self._times: List[float] = []
        self._values: List[object] = []

    def __len__(self) -> int:
        return len(self._times)

    def append(self, sim_time: float, value: object) -> None:
        """Record one sample, evicting the oldest past capacity."""
        self._times.append(sim_time)
        self._values.append(value)
        if len(self._times) > self.capacity:
            del self._times[0]
            del self._values[0]

    def points(self) -> List[Tuple[float, object]]:
        """All retained ``(sim_time, value)`` points, oldest first."""
        return list(zip(self._times, self._values))

    def times(self) -> List[float]:
        """Sample times, oldest first."""
        return list(self._times)

    def values(self) -> List[object]:
        """Sample values, oldest first."""
        return list(self._values)

    def latest(self) -> Optional[Tuple[float, object]]:
        """The most recent sample, or None when empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def at_or_before(self, sim_time: float) -> Optional[Tuple[float, object]]:
        """The latest sample taken at or before ``sim_time``."""
        best = None
        for t, v in zip(self._times, self._values):
            if t <= sim_time:
                best = (t, v)
            else:
                break
        return best

    # -- derivations ---------------------------------------------------------

    def rates(self) -> List[Tuple[float, float]]:
        """Per-second rate between consecutive samples (counters).

        A negative delta (registry reset between samples) yields 0.0
        rather than a nonsense negative rate.
        """
        if self.kind == "histogram":
            pairs = [
                (t, float(v.count))  # type: ignore[union-attr]
                for t, v in zip(self._times, self._values)
            ]
        else:
            pairs = [
                (t, float(v))  # type: ignore[arg-type]
                for t, v in zip(self._times, self._values)
            ]
        out: List[Tuple[float, float]] = []
        for (t0, v0), (t1, v1) in zip(pairs, pairs[1:]):
            dt = t1 - t0
            if dt <= 0:
                continue
            out.append((t1, max(0.0, v1 - v0) / dt))
        return out

    def delta(self, t0: float, t1: float) -> float:
        """Counter increase over the window ``(t0, t1]`` (0 if unknown)."""
        a = self.at_or_before(t0)
        b = self.at_or_before(t1)
        if b is None:
            return 0.0
        if self.kind == "histogram":
            end = float(b[1].count)  # type: ignore[union-attr]
            start = float(a[1].count) if a is not None else 0.0  # type: ignore[union-attr]
        else:
            end = float(b[1])  # type: ignore[arg-type]
            start = float(a[1]) if a is not None else 0.0  # type: ignore[arg-type]
        return max(0.0, end - start)

    def window_histogram(
        self, t0: float, t1: float
    ) -> Optional[HistogramSample]:
        """The histogram of observations landing in ``(t0, t1]``.

        Differences the cumulative sample at/before ``t1`` against the
        one at/before ``t0``; None when no sample covers the window or
        the series is not a histogram.
        """
        if self.kind != "histogram":
            return None
        b = self.at_or_before(t1)
        if b is None:
            return None
        end: HistogramSample = b[1]  # type: ignore[assignment]
        a = self.at_or_before(t0)
        if a is None:
            return HistogramSample(end.count, end.sum, end.buckets)
        start: HistogramSample = a[1]  # type: ignore[assignment]
        if len(start.buckets) != len(end.buckets):
            return None
        buckets = tuple(
            max(0, e - s) for s, e in zip(start.buckets, end.buckets)
        )
        return HistogramSample(
            max(0, end.count - start.count),
            max(0.0, end.sum - start.sum),
            buckets,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (round-trips via :meth:`from_dict`)."""
        if self.kind == "histogram":
            values: List[object] = [
                v.as_list() for v in self._values  # type: ignore[union-attr]
            ]
        else:
            values = list(self._values)
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "capacity": self.capacity,
            "bucket_bounds": list(self.bucket_bounds),
            "times": list(self._times),
            "values": values,
        }

    @staticmethod
    def from_dict(raw: Mapping[str, object]) -> "TimeSeries":
        """Rebuild a series written by :meth:`to_dict`."""
        series = TimeSeries(
            str(raw["name"]), str(raw["kind"]),
            labels=str(raw.get("labels", "")),
            capacity=int(raw.get("capacity", 4096)),  # type: ignore[arg-type]
            bucket_bounds=tuple(
                float(b) for b in raw.get("bucket_bounds", ())  # type: ignore[union-attr]
            ),
        )
        times = raw.get("times", [])
        values = raw.get("values", [])
        for t, v in zip(times, values):  # type: ignore[arg-type]
            if series.kind == "histogram":
                series.append(float(t), HistogramSample.from_list(v))
            else:
                series.append(float(t), float(v))
        return series


def bucket_percentile(
    bounds: Sequence[float], sample: HistogramSample, q: float
) -> float:
    """Estimated ``q``-th percentile (0..100) of one windowed histogram.

    Linear interpolation inside the winning bucket, mirroring
    :meth:`repro.obs.registry.Histogram.percentile` but over a window
    delta rather than the life-of-process totals.  The unbounded last
    bucket falls back to its lower bound (no max is retained per
    window).
    """
    if not 0 <= q <= 100:
        raise MetricsError("percentile q must be in [0, 100]")
    if sample.count == 0:
        return 0.0
    rank = q / 100.0 * sample.count
    for index, seen in enumerate(sample.buckets):
        if seen >= rank:
            prior = sample.buckets[index - 1] if index else 0
            in_bucket = seen - prior
            lower = 0.0 if index == 0 else bounds[index - 1]
            if index >= len(bounds):
                return float(lower)
            upper = bounds[index]
            fraction = (rank - prior) / in_bucket if in_bucket else 1.0
            return lower + fraction * (upper - lower)
    return float(bounds[-1]) if bounds else 0.0


def bucket_fraction_below(
    bounds: Sequence[float], sample: HistogramSample, threshold: float
) -> float:
    """Fraction of windowed observations at or below ``threshold``.

    Interpolates within the bucket containing the threshold; 1.0 for an
    empty window (no observations cannot violate a latency bound).
    """
    if sample.count == 0:
        return 1.0
    below = 0.0
    prior = 0
    lower = 0.0
    for index, bound in enumerate(bounds):
        seen = sample.buckets[index]
        in_bucket = seen - prior
        if threshold >= bound:
            below = float(seen)
        elif threshold > lower:
            width = bound - lower
            fraction = (threshold - lower) / width if width > 0 else 1.0
            below += in_bucket * fraction
            break
        else:
            break
        prior = seen
        lower = bound
    return min(1.0, below / sample.count)


class TimeSeriesRecorder:
    """Samples a :class:`MetricsRegistry` into per-leaf time series.

    ``interval`` is the sampling cadence in *simulated* seconds when
    installed on a :class:`~repro.simulation.engine.Simulation`;
    :meth:`sample` can also be called directly (period boundaries, end
    of run).  ``retention`` bounds points kept per series.  Custom
    probes (:meth:`add_probe`) sample values the registry does not
    carry — engine event counts, cluster saturation — as gauge series.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval: float = 10.0,
        retention: int = 4096,
    ) -> None:
        if interval <= 0:
            raise MetricsError("sampling interval must be positive")
        self.registry = registry or get_registry()
        self.interval = interval
        self.retention = retention
        self.series: Dict[Tuple[str, str], TimeSeries] = {}
        self.samples_taken = 0
        self._probes: Dict[str, Callable[[], float]] = {}
        self._last_time: Optional[float] = None

    # -- probes --------------------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` as a gauge series named ``name``."""
        self._probes[name] = fn

    # -- sampling ------------------------------------------------------------

    def _series_for(self, name: str, kind: str, labels: str,
                    bounds: Tuple[float, ...] = ()) -> TimeSeries:
        key = (name, labels)
        series = self.series.get(key)
        if series is None:
            series = TimeSeries(
                name, kind, labels=labels, capacity=self.retention,
                bucket_bounds=bounds,
            )
            self.series[key] = series
        return series

    def sample(self, sim_time: float) -> None:
        """Record one sample of every metric leaf (and probe) at ``sim_time``.

        Re-sampling the same instant is a no-op so period-boundary hooks
        and the periodic event cannot double-count a coinciding tick.
        """
        if self._last_time is not None and sim_time <= self._last_time:
            return
        self._last_time = sim_time
        self.samples_taken += 1
        for metric in self.registry.metrics():
            for key, leaf in metric._series():
                labels = ",".join(key)
                if isinstance(leaf, Histogram):
                    series = self._series_for(
                        metric.name, "histogram", labels, leaf.buckets
                    )
                    series.append(sim_time, HistogramSample(
                        leaf.count, leaf.sum,
                        tuple(leaf.cumulative_counts()),
                    ))
                else:
                    series = self._series_for(metric.name, metric.kind, labels)
                    series.append(sim_time, float(leaf.value))  # type: ignore[union-attr]
        for name, fn in self._probes.items():
            self._series_for(name, "gauge", "").append(
                sim_time, float(fn())
            )

    def install(self, sim, first_at: Optional[float] = None):
        """Schedule periodic sampling on a simulation; returns the token.

        The action reads ``sim.now`` at each firing, so the recorder
        always stamps the event's own simulated time.
        """
        return sim.schedule_periodic(
            self.interval, lambda: self.sample(sim.now), first_at=first_at
        )

    # -- lookup --------------------------------------------------------------

    def get(self, name: str, labels: str = "") -> Optional[TimeSeries]:
        """The series for one metric leaf, or None."""
        return self.series.get((name, labels))

    def matching(self, name: str) -> List[TimeSeries]:
        """All label children of ``name`` (one entry when unlabeled)."""
        return [s for (n, _), s in sorted(self.series.items()) if n == name]

    def summed_delta(self, name: str, t0: float, t1: float) -> float:
        """Counter increase over a window, summed across label children."""
        return sum(s.delta(t0, t1) for s in self.matching(name))

    def span(self) -> Tuple[float, float]:
        """(earliest, latest) sample time across all series; (0, 0) empty."""
        start = None
        end = None
        for series in self.series.values():
            times = series.times()
            if not times:
                continue
            start = times[0] if start is None else min(start, times[0])
            end = times[-1] if end is None else max(end, times[-1])
        if start is None or end is None:
            return 0.0, 0.0
        return start, end

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering of every retained series."""
        return {
            "interval": self.interval,
            "samples_taken": self.samples_taken,
            "series": [
                series.to_dict()
                for _, series in sorted(self.series.items())
            ],
        }

    @staticmethod
    def from_dict(raw: Mapping[str, object]) -> "TimeSeriesRecorder":
        """Rebuild a recorder's series from :meth:`to_dict` output."""
        recorder = TimeSeriesRecorder(
            registry=MetricsRegistry(enabled=False),
            interval=float(raw.get("interval", 10.0)),  # type: ignore[arg-type]
        )
        recorder.samples_taken = int(raw.get("samples_taken", 0))  # type: ignore[arg-type]
        for entry in raw.get("series", []):  # type: ignore[union-attr]
            series = TimeSeries.from_dict(entry)
            recorder.series[(series.name, series.labels)] = series
        return recorder
