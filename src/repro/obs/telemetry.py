"""One run's telemetry: recorder + tracer + SLOs, saved as a directory.

:class:`TelemetrySession` is the wiring harness experiments use to turn
on the full pipeline for one run: it enables the registry and tracer,
installs a :class:`~repro.obs.timeseries.TimeSeriesRecorder` on the
simulation clock, hands out a seeded
:class:`~repro.obs.tracing.TraceSampler` for the client, accumulates
:class:`~repro.obs.slo.SloObjective` declarations, and finally writes
everything to a **telemetry directory**::

    telemetry/
      meta.json         run label, seed, sim span, config echo
      timeseries.json   every sampled series (TimeSeriesRecorder.to_dict)
      slo.json          evaluated SloStatus list
      spans.json        the tracer's retained spans (causal, trace_id'd)
      snapshot.json     final metrics snapshot (registry + spans)

``repro report`` and ``repro traces`` consume this layout via
:class:`TelemetryBundle`, which also rehydrates series and traces for
the regression gate in ``repro.obs.gate``.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import MetricsError
from repro.obs import exporters
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.slo import SloEngine, SloObjective, SloStatus
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.tracer import Tracer, get_tracer
from repro.obs.tracing import Trace, TraceSampler, assemble_traces

__all__ = ["TelemetrySession", "TelemetryBundle"]

_FILES = ("meta.json", "timeseries.json", "slo.json", "spans.json",
          "snapshot.json")


class TelemetrySession:
    """Telemetry wiring for one instrumented run.

    ``interval`` is the sim-clock sampling cadence; ``trace_sample_rate``
    the fraction of client requests that get a causal trace;
    ``tracer_capacity`` resizes the span ring buffer for the run (request
    traces are chattier than the default 1024 spans expect).
    """

    def __init__(
        self,
        label: str = "run",
        interval: float = 10.0,
        retention: int = 4096,
        trace_sample_rate: float = 0.05,
        tracer_capacity: int = 8192,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.label = label
        self.seed = seed
        self.trace_sample_rate = trace_sample_rate
        self.registry = registry or get_registry()
        self.tracer = tracer or get_tracer()
        self.registry.enable()
        self.tracer.enable()
        if self.tracer.capacity < tracer_capacity:
            self.tracer.resize(tracer_capacity)
        self.recorder = TimeSeriesRecorder(
            self.registry, interval=interval, retention=retention
        )
        self.slo = SloEngine(self.recorder)
        self.meta: Dict[str, Any] = {}
        self._statuses: Optional[List[SloStatus]] = None

    # -- wiring --------------------------------------------------------------

    def install(self, sim) -> None:
        """Start periodic sampling on the simulation clock.

        Zeros the registry and drops retained spans first: the session
        measures *this* run, and counters carried over from an earlier
        run in the same process would pollute the first window's deltas.
        """
        self.registry.reset()
        self.tracer.clear()
        self.recorder.install(sim)

    def sampler(self, salt: int = 0) -> TraceSampler:
        """A seeded trace sampler for one client."""
        return TraceSampler(
            self.trace_sample_rate, random.Random(self.seed * 7919 + salt)
        )

    def add_objective(self, objective: SloObjective) -> SloObjective:
        """Register an SLO to evaluate at the end of the run."""
        return self.slo.add(objective)

    # -- results -------------------------------------------------------------

    def finish(self, sim_time: float) -> List[SloStatus]:
        """Take the final sample and evaluate every objective."""
        self.recorder.sample(sim_time)
        self._statuses = self.slo.evaluate()
        return self._statuses

    @property
    def statuses(self) -> List[SloStatus]:
        """Evaluated SLO statuses (empty before :meth:`finish`)."""
        return self._statuses or []

    def traces(self) -> List[Trace]:
        """Assembled causal traces from the tracer buffer, slowest first."""
        return assemble_traces(tracer=self.tracer)

    # -- persistence ---------------------------------------------------------

    def write(self, directory: Path) -> Path:
        """Dump the run's telemetry into ``directory``; returns it."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if self._statuses is None:
            self._statuses = self.slo.evaluate()
        start, end = self.recorder.span()
        meta = {
            "label": self.label,
            "seed": self.seed,
            "sim_start": start,
            "sim_end": end,
            "trace_sample_rate": self.trace_sample_rate,
            "samples_taken": self.recorder.samples_taken,
            "spans_recorded": self.tracer.recorded,
        }
        meta.update(self.meta)
        payloads = {
            "meta.json": meta,
            "timeseries.json": self.recorder.to_dict(),
            "slo.json": [status.to_dict() for status in self._statuses],
            "spans.json": self.tracer.as_dicts(),
            "snapshot.json": exporters.snapshot_dict(
                self.registry, self.tracer
            ),
        }
        for name, payload in payloads.items():
            (directory / name).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return directory


class TelemetryBundle:
    """A telemetry directory loaded back for reporting and gating."""

    def __init__(
        self,
        meta: Dict[str, Any],
        recorder: TimeSeriesRecorder,
        statuses: List[SloStatus],
        spans: List[Dict[str, Any]],
        snapshot: Dict[str, Any],
    ) -> None:
        self.meta = meta
        self.recorder = recorder
        self.statuses = statuses
        self.spans = spans
        self.snapshot = snapshot

    @staticmethod
    def load(directory: Path) -> "TelemetryBundle":
        """Read a directory written by :meth:`TelemetrySession.write`."""
        directory = Path(directory)
        missing = [
            name for name in _FILES if not (directory / name).exists()
        ]
        if missing:
            raise MetricsError(
                f"{directory} is not a telemetry directory "
                f"(missing {', '.join(missing)})"
            )

        def read(name: str) -> Any:
            return json.loads(
                (directory / name).read_text(encoding="utf-8")
            )

        return TelemetryBundle(
            meta=read("meta.json"),
            recorder=TimeSeriesRecorder.from_dict(read("timeseries.json")),
            statuses=[SloStatus.from_dict(s) for s in read("slo.json")],
            spans=read("spans.json"),
            snapshot=read("snapshot.json"),
        )

    def traces(self) -> List[Trace]:
        """Assembled causal traces, slowest first."""
        return assemble_traces(self.spans)
