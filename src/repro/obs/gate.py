"""Metrics-snapshot regression gate with tolerance bands.

:func:`summarize_telemetry` collapses a telemetry directory into a flat
``{key: value}`` summary built only from *deterministic* quantities —
simulated-clock totals, final gauge values and windowed-histogram
percentiles.  Wall-clock durations never enter the summary, so the same
seed always produces the same numbers on any machine.

:func:`compare` checks a fresh summary against a committed baseline
(``benchmarks/baselines/``), allowing each key a relative tolerance
band; :func:`check_bundle` is the one-call wrapper the benchmark test
uses.  A violation means an instrumented quick run now behaves
measurably differently from the run that produced the baseline —
latency inflation, error-rate shifts or lost samples show up here
before anyone stares at a dashboard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.obs.telemetry import TelemetryBundle
from repro.obs.timeseries import TimeSeries, bucket_percentile

__all__ = [
    "GateViolation",
    "summarize_telemetry",
    "compare",
    "check_bundle",
    "load_baseline",
    "load_tolerances",
    "write_baseline",
]

# Default relative tolerance when no band matches a key.  Generous on
# purpose: the gate exists to catch 2x-style regressions, not noise.
DEFAULT_TOLERANCE = 0.25

# Absolute slack for near-zero baselines, where relative bands are
# meaningless (a 0 -> 0.4 error count should not trip a 25% band).
ABSOLUTE_FLOOR = 1.0


@dataclass
class GateViolation:
    """One summary key that left its tolerance band."""

    key: str
    baseline: float
    actual: float
    allowed: float     # the relative tolerance applied

    @property
    def relative_delta(self) -> float:
        """|actual - baseline| / |baseline| (inf for a zero baseline)."""
        if self.baseline == 0:
            return float("inf") if self.actual else 0.0
        return abs(self.actual - self.baseline) / abs(self.baseline)

    def __str__(self) -> str:
        return (
            f"{self.key}: baseline {self.baseline:.6g}, "
            f"got {self.actual:.6g} "
            f"(delta {self.relative_delta * 100:.1f}%, "
            f"allowed {self.allowed * 100:.0f}%)"
        )


def _series_stats(series: TimeSeries) -> Dict[str, float]:
    """Deterministic scalars for one series."""
    stats: Dict[str, float] = {}
    points = series.points()
    if not points:
        return stats
    if series.kind == "counter":
        stats["total"] = float(points[-1][1])  # type: ignore[arg-type]
        return stats
    if series.kind == "histogram":
        last = points[-1][1]
        stats["count"] = float(last.count)  # type: ignore[union-attr]
        if last.count:  # type: ignore[union-attr]
            stats["mean"] = last.sum / last.count  # type: ignore[union-attr]
            stats["p50"] = bucket_percentile(
                series.bucket_bounds, last, 50.0  # type: ignore[arg-type]
            )
            stats["p99"] = bucket_percentile(
                series.bucket_bounds, last, 99.0  # type: ignore[arg-type]
            )
        return stats
    values = [float(v) for _, v in points]  # type: ignore[arg-type]
    stats["max"] = max(values)
    stats["last"] = values[-1]
    return stats


def summarize_telemetry(bundle: TelemetryBundle) -> Dict[str, float]:
    """Flatten a bundle into deterministic ``{key: value}`` stats."""
    summary: Dict[str, float] = {}
    start, end = bundle.recorder.span()
    summary["run/sim_span"] = end - start
    summary["run/samples_taken"] = float(
        bundle.meta.get("samples_taken", 0)
    )
    for (name, labels), series in sorted(bundle.recorder.series.items()):
        leaf = f"{name}{{{labels}}}" if labels else name
        for stat, value in _series_stats(series).items():
            summary[f"{leaf}/{stat}"] = value
    for status in bundle.statuses:
        prefix = f"slo/{status.objective.name}"
        summary[f"{prefix}/overall_sli"] = status.overall_sli
        summary[f"{prefix}/violation_minutes"] = status.violation_minutes
    return summary


def compare(
    summary: Mapping[str, float],
    baseline: Mapping[str, float],
    tolerances: Optional[Mapping[str, float]] = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
    absolute_floor: float = ABSOLUTE_FLOOR,
) -> List[GateViolation]:
    """Every baseline key whose fresh value left its tolerance band.

    ``tolerances`` maps key *prefixes* to relative bands; the longest
    matching prefix wins.  Keys present only in the fresh summary are
    ignored (new metrics are not regressions); keys missing from the
    fresh summary violate with ``actual=0`` (a series that stopped
    being recorded is exactly what the gate is for).  Deviations within
    ``absolute_floor`` of the baseline never violate, so near-zero
    counts don't trip relative bands.
    """
    tolerances = tolerances or {}
    violations: List[GateViolation] = []
    for key in sorted(baseline):
        expected = float(baseline[key])
        actual = float(summary.get(key, 0.0))
        allowed = default_tolerance
        best_len = -1
        for prefix, band in tolerances.items():
            if key.startswith(prefix) and len(prefix) > best_len:
                allowed = float(band)
                best_len = len(prefix)
        if abs(actual - expected) <= absolute_floor:
            continue
        if expected == 0:
            violations.append(GateViolation(key, expected, actual, allowed))
            continue
        if abs(actual - expected) / abs(expected) > allowed:
            violations.append(GateViolation(key, expected, actual, allowed))
    return violations


def load_baseline(path: Path) -> Dict[str, float]:
    """Read a committed baseline file (summary + optional tolerances)."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    return {k: float(v) for k, v in raw.get("summary", raw).items()}


def load_tolerances(path: Path) -> Dict[str, float]:
    """The tolerance bands stored alongside a baseline (may be empty)."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(raw, dict) and "tolerances" in raw:
        return {k: float(v) for k, v in raw["tolerances"].items()}
    return {}


def write_baseline(
    path: Path,
    summary: Mapping[str, float],
    tolerances: Optional[Mapping[str, float]] = None,
    note: str = "",
) -> Path:
    """Write a baseline file the gate can compare against later."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "note": note,
        "summary": {k: summary[k] for k in sorted(summary)},
        "tolerances": dict(tolerances or {}),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def check_bundle(
    bundle: TelemetryBundle,
    baseline_path: Path,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> List[GateViolation]:
    """Summarize ``bundle`` and compare against a committed baseline."""
    baseline = load_baseline(baseline_path)
    tolerances = load_tolerances(baseline_path)
    return compare(
        summarize_telemetry(bundle), baseline, tolerances,
        default_tolerance=default_tolerance,
    )
