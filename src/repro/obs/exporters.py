"""Exporters: render a registry snapshot as Prometheus text or JSON.

The Prometheus renderer follows the text exposition format version
0.0.4 (``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` cumulative
histogram series ending in ``le="+Inf"``, ``_sum`` and ``_count``), so
the output can be scraped by a real Prometheus or diffed in golden
tests.  The JSON renderer serializes :meth:`MetricsRegistry.snapshot`
plus, optionally, the tracer's retained spans.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import Histogram, MetricsRegistry, get_registry
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "to_prometheus_text",
    "to_json",
    "snapshot_dict",
    "write_snapshot",
]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if float(bound).is_integer() and abs(bound) < 1e15:
        return f"{bound:.1f}"
    return repr(float(bound))


def to_prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: List[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, leaf in metric._series():
            pairs = list(zip(metric.labelnames, key))
            if isinstance(leaf, Histogram):
                for index, cumulative in enumerate(leaf.cumulative_counts()):
                    bound = (
                        "+Inf" if index == len(leaf.buckets)
                        else _format_bound(leaf.buckets[index])
                    )
                    bucket_labels = _render_labels(pairs + [("le", bound)])
                    lines.append(
                        f"{metric.name}_bucket{bucket_labels} {cumulative}"
                    )
                sum_labels = _render_labels(pairs)
                lines.append(
                    f"{metric.name}_sum{sum_labels} {_format_value(leaf.sum)}"
                )
                lines.append(f"{metric.name}_count{sum_labels} {leaf.count}")
            else:
                labels = _render_labels(pairs)
                lines.append(
                    f"{metric.name}{labels} {_format_value(leaf.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_dict(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    include_spans: bool = True,
) -> Dict[str, object]:
    """Registry snapshot (and optionally spans) as one plain dict."""
    registry = registry or get_registry()
    out: Dict[str, object] = {"metrics": registry.snapshot()}
    if include_spans:
        tracer = tracer or get_tracer()
        out["spans"] = tracer.as_dicts()
    return out


def to_json(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    include_spans: bool = True,
    indent: int = 2,
) -> str:
    """The snapshot serialized as a JSON document."""
    return json.dumps(
        snapshot_dict(registry, tracer, include_spans=include_spans),
        indent=indent,
        sort_keys=True,
    )


def write_snapshot(
    path: Path,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Path:
    """Dump the JSON snapshot to ``path`` (parents created); returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_json(registry, tracer) + "\n", encoding="utf-8")
    return path
