"""Observability layer: metrics, tracing, exporters, logging.

The numbers behind every claim this reproduction makes — load-imbalance
reduction, reconfiguration traffic vs. epsilon, Algorithm 5's bounded
per-period operation count ``K`` — flow through this package:

* :mod:`repro.obs.registry` — labeled ``Counter``/``Gauge``/``Histogram``
  metrics behind a process-global :func:`get_registry`;
* :mod:`repro.obs.tracer` — ring-buffered spans via
  ``with trace("aurora.period", ...) as span``;
* :mod:`repro.obs.exporters` — Prometheus text and JSON snapshots;
* :mod:`repro.obs.timeseries` — sim-clock sampled ``(t, value)`` series;
* :mod:`repro.obs.tracing` — causal trace assembly and critical paths;
* :mod:`repro.obs.slo` — declarative SLOs with error-budget burn;
* :mod:`repro.obs.telemetry` — one run's pipeline, saved as a directory;
* :mod:`repro.obs.report` — the HTML/markdown dashboard renderers;
* :mod:`repro.obs.gate` — metrics-snapshot regression gating;
* :mod:`repro.obs.logging_setup` — structured ``key=value`` logging.

Both the registry and the tracer start **disabled** so the instrumented
hot paths cost one attribute check until an operator enables them
(:func:`enable`, the CLI's ``metrics`` subcommand, or the harness's
``metrics_out`` hook).  Metric names follow
``repro_<layer>_<what>[_total|_seconds|_bytes]``; the full catalog
lives in ``docs/observability.md``.
"""

from repro.obs.exporters import (
    snapshot_dict,
    to_json,
    to_prometheus_text,
    write_snapshot,
)
from repro.obs.logging_setup import configure, verbosity_to_level
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from repro.obs.slo import (
    SloEngine,
    SloObjective,
    SloStatus,
    availability_slo,
    latency_slo,
    threshold_slo,
)
from repro.obs.telemetry import TelemetryBundle, TelemetrySession
from repro.obs.timeseries import TimeSeries, TimeSeriesRecorder
from repro.obs.tracer import Span, Tracer, get_tracer, trace
from repro.obs.tracing import Trace, TraceSampler, assemble_traces, format_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "Span",
    "Tracer",
    "get_tracer",
    "trace",
    "Trace",
    "TraceSampler",
    "assemble_traces",
    "format_trace",
    "TimeSeries",
    "TimeSeriesRecorder",
    "SloEngine",
    "SloObjective",
    "SloStatus",
    "availability_slo",
    "latency_slo",
    "threshold_slo",
    "TelemetrySession",
    "TelemetryBundle",
    "to_prometheus_text",
    "to_json",
    "snapshot_dict",
    "write_snapshot",
    "configure",
    "verbosity_to_level",
    "enable",
    "disable",
]


def enable() -> None:
    """Turn on both the default registry and the default tracer."""
    enable_metrics()
    get_tracer().enable()


def disable() -> None:
    """Turn off both the default registry and the default tracer."""
    disable_metrics()
    get_tracer().disable()
