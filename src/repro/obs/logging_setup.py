"""Structured logging configuration for the ``repro`` package.

Every module logs through ``logging.getLogger(__name__)``; nothing is
emitted until an entry point opts in by calling :func:`configure`
(libraries must not configure logging on import).  The formatter renders
``key=value`` pairs so log lines are grep- and parse-friendly:

.. code-block:: text

    t=2026-08-05T12:00:00 level=INFO logger=repro.aurora.system \
        msg="period done" cost_before=12.5 cost_after=8.1

Extra fields are passed through the stdlib ``extra=`` mechanism or by
formatting them into the message; :func:`kv` helps render a dict as the
canonical suffix.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Mapping, Optional

__all__ = ["configure", "verbosity_to_level", "KeyValueFormatter", "kv"]

PACKAGE_LOGGER = "repro"

_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None
).__dict__) | {"message", "asctime", "taskName"}


def kv(fields: Mapping[str, Any]) -> str:
    """Render a mapping as a ``key=value`` suffix for a log message."""
    return " ".join(f"{key}={_scalar(value)}" for key, value in fields.items())


def _scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text:
        return '"' + text.replace('"', '\\"') + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """``t=... level=... logger=... msg="..." k=v`` structured lines."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        parts = [
            f"t={self.formatTime(record, datefmt='%Y-%m-%dT%H:%M:%S')}",
            f"level={record.levelname}",
            f"logger={record.name}",
            f'msg="{message}"',
        ]
        extras = {
            key: value for key, value in record.__dict__.items()
            if key not in _RESERVED
        }
        if extras:
            parts.append(kv(extras))
        if record.exc_info:
            parts.append(f'exc="{self.formatException(record.exc_info)}"')
        return " ".join(parts)


def verbosity_to_level(verbose: int = 0, quiet: int = 0) -> int:
    """Map CLI ``-v``/``-q`` counts to a stdlib logging level.

    Default WARNING; each ``-v`` steps towards DEBUG, each ``-q``
    towards CRITICAL.
    """
    steps = verbose - quiet
    if steps >= 2:
        return logging.DEBUG
    if steps == 1:
        return logging.INFO
    if steps == 0:
        return logging.WARNING
    if steps == -1:
        return logging.ERROR
    return logging.CRITICAL


def configure(
    level: int = logging.INFO,
    stream: Any = None,
    fmt: Optional[logging.Formatter] = None,
    force: bool = False,
) -> logging.Logger:
    """Attach a structured handler to the ``repro`` package logger.

    Idempotent: calling twice adjusts the level but installs a second
    handler only with ``force=True`` (which first removes the handlers
    this function previously added).  Returns the package logger.
    """
    logger = logging.getLogger(PACKAGE_LOGGER)
    logger.setLevel(level)
    configured = [
        handler for handler in logger.handlers
        if getattr(handler, "_repro_obs_handler", False)
    ]
    if configured and not force:
        for handler in configured:
            handler.setLevel(level)
        return logger
    for handler in configured:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(fmt or KeyValueFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    # Don't double-log through the root logger's handlers (pytest adds
    # its own); the package handler is authoritative once configured.
    logger.propagate = False
    return logger
