"""Causal trace assembly: span trees and critical paths.

The tracer (:mod:`repro.obs.tracer`) records a flat ring buffer of
spans, each carrying a ``trace_id`` and a ``parent_id``.  This module
reassembles that buffer into per-request trees and extracts the
**critical path** — the chain of spans that actually determined the
request's duration — so a dashboard can say *which* replica failovers,
backoffs and transfers a slow read paid for.

Spans carry two clocks.  ``duration_seconds`` is wall time (how long
the simulator spent computing); ``sim_duration`` is simulated time
(how long the modelled operation took — a transfer's modelled duration,
a retry's backoff).  :attr:`TraceNode.busy_seconds` prefers the
simulated duration when present, because that is the quantity the
latency SLOs are written against.

Also here: :class:`TraceSampler`, the head-based sampling decision the
DFS client consults before paying for a root span.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import MetricsError
from repro.obs.tracer import Span, Tracer

__all__ = [
    "TraceNode",
    "Trace",
    "TraceSampler",
    "assemble_traces",
    "format_trace",
]

_SpanLike = Union[Span, Mapping[str, Any]]


def _get(span: _SpanLike, key: str, default: Any = None) -> Any:
    if isinstance(span, Mapping):
        return span.get(key, default)
    return getattr(span, key, default)


@dataclass
class TraceNode:
    """One span inside an assembled trace tree."""

    name: str
    span_id: int
    parent_id: Optional[int]
    duration_seconds: float
    sim_time: Optional[float] = None
    sim_duration: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    children: List["TraceNode"] = field(default_factory=list)

    @property
    def busy_seconds(self) -> float:
        """The duration the critical path optimizes over.

        Simulated duration when the span recorded one (transfers,
        backoffs); wall-clock otherwise (in-process phases).
        """
        if self.sim_duration is not None:
            return self.sim_duration
        return self.duration_seconds

    @property
    def self_seconds(self) -> float:
        """Busy time not attributed to any child span."""
        return max(
            0.0, self.busy_seconds - sum(c.busy_seconds for c in self.children)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": self.duration_seconds,
            "sim_time": self.sim_time,
            "sim_duration": self.sim_duration,
            "fields": dict(self.fields),
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class Trace:
    """One assembled request: a root span and its causal subtree."""

    trace_id: int
    root: TraceNode

    @property
    def name(self) -> str:
        """The root operation's name."""
        return self.root.name

    @property
    def duration_seconds(self) -> float:
        """The request's end-to-end busy duration."""
        return self.root.busy_seconds

    @property
    def span_count(self) -> int:
        """Spans in the tree."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def critical_path(self) -> List[TraceNode]:
        """Root-to-leaf chain following the busiest child at each step."""
        path = [self.root]
        node = self.root
        while node.children:
            node = max(node.children, key=lambda c: c.busy_seconds)
            path.append(node)
        return path

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "duration_seconds": self.duration_seconds,
            "span_count": self.span_count,
            "root": self.root.to_dict(),
        }


def _node_from(span: _SpanLike) -> TraceNode:
    sim_time = _get(span, "sim_time")
    end_sim = _get(span, "end_sim")
    sim_duration = _get(span, "sim_duration")
    if sim_duration is None and sim_time is not None and end_sim is not None:
        sim_duration = end_sim - sim_time
    fields = _get(span, "fields", {}) or {}
    return TraceNode(
        name=_get(span, "name", ""),
        span_id=int(_get(span, "span_id", 0)),
        parent_id=_get(span, "parent_id"),
        duration_seconds=float(_get(span, "duration_seconds", 0.0)),
        sim_time=sim_time,
        sim_duration=sim_duration,
        fields=dict(fields),
    )


def assemble_traces(
    spans: Optional[Sequence[_SpanLike]] = None,
    tracer: Optional[Tracer] = None,
) -> List[Trace]:
    """Group spans by trace and rebuild each causal tree.

    Accepts live :class:`Span` objects or their ``as_dict()`` renderings
    (the JSON telemetry path).  Spans without a ``trace_id`` are
    skipped — they predate causal tracing or were recorded standalone.
    A span whose parent was evicted from the ring buffer becomes a root
    of its own partial trace, so old traces degrade instead of vanish.
    Traces are returned slowest-first.
    """
    if spans is None:
        if tracer is None:
            raise MetricsError("assemble_traces needs spans or a tracer")
        spans = tracer.spans()
    by_trace: Dict[int, List[TraceNode]] = {}
    for span in spans:
        trace_id = _get(span, "trace_id")
        if trace_id is None:
            continue
        by_trace.setdefault(int(trace_id), []).append(_node_from(span))
    traces: List[Trace] = []
    for trace_id, nodes in by_trace.items():
        by_id = {node.span_id: node for node in nodes}
        roots: List[TraceNode] = []
        for node in nodes:
            parent = (
                by_id.get(node.parent_id)
                if node.parent_id is not None else None
            )
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent.children.append(node)
        for root in roots:
            _sort_children(root)
            traces.append(Trace(trace_id=trace_id, root=root))
    traces.sort(key=lambda t: t.duration_seconds, reverse=True)
    return traces


def _sort_children(root: TraceNode) -> None:
    """Order children chronologically (span ids are allocation-ordered)."""
    stack = [root]
    while stack:
        node = stack.pop()
        node.children.sort(key=lambda c: c.span_id)
        stack.extend(node.children)


def format_trace(trace: Trace, indent: str = "  ") -> str:
    """A trace tree as indented text, critical path marked with ``*``."""
    critical = {id(node) for node in trace.critical_path()}
    lines = [
        f"trace {trace.trace_id}: {trace.name} "
        f"({trace.duration_seconds:.6g}s busy, {trace.span_count} spans)"
    ]

    def walk(node: TraceNode, depth: int) -> None:
        mark = "*" if id(node) in critical else " "
        at = (
            f" @t={node.sim_time:.1f}" if node.sim_time is not None else ""
        )
        extras = ""
        if node.fields:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(node.fields.items())
            )
            extras = f" [{rendered}]"
        lines.append(
            f"{mark}{indent * (depth + 1)}{node.name} "
            f"{node.busy_seconds:.6g}s{at}{extras}"
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(trace.root, 0)
    return "\n".join(lines)


class TraceSampler:
    """Deterministic head-based sampling for request tracing.

    ``rate`` in [0, 1] is the fraction of requests that get a root
    span; the decision is one RNG draw, so a seeded sampler makes runs
    reproducible.  ``rate=1.0`` short-circuits to always-sample without
    consuming randomness.
    """

    def __init__(self, rate: float,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise MetricsError("sample rate must be in [0, 1]")
        self.rate = rate
        self._rng = rng or random.Random(0)
        self.decisions = 0
        self.sampled = 0

    def sample(self) -> bool:
        """Whether to trace the next request."""
        self.decisions += 1
        if self.rate >= 1.0:
            self.sampled += 1
            return True
        if self.rate <= 0.0:
            return False
        hit = self._rng.random() < self.rate
        if hit:
            self.sampled += 1
        return hit
