"""Lightweight structured event tracing with a bounded span buffer.

A :class:`Span` is one named, timed unit of work — "one Algorithm 5
period", "the local-search phase" — with free-form key/value fields.
Spans record wall-clock durations via :func:`time.perf_counter` and,
when the caller passes it, the simulated time the work happened at
(the two clocks are deliberately distinct: the DES kernel never reads
real time, see ``docs/architecture.md``).

Spans are *causally linked*: every span carries a ``trace_id`` shared
by all work done on behalf of the same logical request, plus a
``parent_id`` pointing at the span that caused it.  Synchronous nesting
(``with trace(...)``) inherits both automatically through the tracer's
span stack; work that crosses simulation events — a block transfer whose
completion is a scheduled callback — carries an explicit
:class:`TraceContext` and uses :meth:`Tracer.begin` /
:meth:`Tracer.finish` instead.  :mod:`repro.obs.tracing` assembles the
flat buffer back into per-trace span trees.

The :class:`Tracer` keeps the most recent ``capacity`` spans in a ring
buffer, so long periodic runs cannot grow memory without bound.  Like
the metrics registry it is disabled by default and costs one attribute
check per ``trace()`` entry when off.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import MetricsError

__all__ = ["Span", "TraceContext", "Tracer", "get_tracer", "trace"]


@dataclass(frozen=True)
class TraceContext:
    """A position in a trace: which request, and which span caused us.

    Threaded explicitly through code paths that cross simulation events
    (the span stack cannot follow a scheduled callback).
    """

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    trace_id: Optional[int] = None
    start_wall: float = 0.0
    end_wall: Optional[float] = None
    sim_time: Optional[float] = None
    end_sim: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock duration (elapsed-so-far while still open)."""
        if self.end_wall is None:
            return time.perf_counter() - self.start_wall
        return self.end_wall - self.start_wall

    @property
    def sim_duration(self) -> Optional[float]:
        """Simulated duration, when both endpoints were recorded."""
        if self.sim_time is None or self.end_sim is None:
            return None
        return self.end_sim - self.sim_time

    @property
    def in_flight(self) -> bool:
        """Whether the span is still open."""
        return self.end_wall is None

    @property
    def context(self) -> TraceContext:
        """This span's position, for propagation across events."""
        trace_id = self.trace_id if self.trace_id is not None else self.span_id
        return TraceContext(trace_id=trace_id, span_id=self.span_id)

    def set(self, **fields: Any) -> None:
        """Attach result fields to the span (e.g. counts, outcomes)."""
        self.fields.update(fields)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "duration_seconds": self.duration_seconds,
            "sim_time": self.sim_time,
            "end_sim": self.end_sim,
            "in_flight": self.in_flight,
            "fields": dict(self.fields),
        }


class _NullSpan:
    """Shared sink for traces taken while the tracer is disabled."""

    __slots__ = ()
    name = ""
    fields: Dict[str, Any] = {}
    duration_seconds = 0.0
    context = None

    def set(self, **fields: Any) -> None:
        """Discard fields."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Ring-buffered span recorder.

    ``capacity`` bounds retained spans: the buffer wraps, keeping the
    most recent ones.  Nested ``trace()`` calls record parent/child
    links through a simple stack (single-threaded, like the rest of the
    simulator).
    """

    def __init__(self, capacity: int = 1024, enabled: bool = True) -> None:
        if capacity < 1:
            raise MetricsError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._enabled = bool(enabled)
        self._buffer: List[Optional[Span]] = [None] * capacity
        self._next_slot = 0
        self._recorded = 0
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- enablement ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording spans."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; ``trace()`` becomes a no-op context."""
        self._enabled = False

    def resize(self, capacity: int) -> None:
        """Grow/shrink the ring buffer, dropping retained spans."""
        if capacity < 1:
            raise MetricsError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.clear()

    # -- recording -----------------------------------------------------------

    def _open_span(
        self,
        name: str,
        sim_time: Optional[float],
        parent: Optional[TraceContext],
        fields: Dict[str, Any],
    ) -> Span:
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            trace_id = parent.trace_id
        elif self._stack:
            top = self._stack[-1]
            parent_id = top.span_id
            trace_id = (
                top.trace_id if top.trace_id is not None else top.span_id
            )
        else:
            parent_id = None
            trace_id = next(self._trace_ids)
        return Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            trace_id=trace_id,
            sim_time=sim_time,
            fields=fields,
            start_wall=time.perf_counter(),
        )

    @contextmanager
    def trace(self, name: str, sim_time: Optional[float] = None,
              parent: Optional[TraceContext] = None,
              **fields: Any) -> Iterator[Any]:
        """Context manager timing one operation.

        Yields the open :class:`Span` so the body can ``span.set(...)``
        result fields.  The span is committed to the ring buffer on
        exit, even when the body raises (the exception propagates and
        the span records ``error=<type name>``).  ``parent`` overrides
        the implicit stack link for work resumed from a scheduled event.
        """
        if not self._enabled:
            yield _NULL_SPAN
            return
        span = self._open_span(name, sim_time, parent, dict(fields))
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.fields.setdefault("error", type(exc).__name__)
            raise
        finally:
            span.end_wall = time.perf_counter()
            self._stack.pop()
            self._commit(span)

    def begin(self, name: str, sim_time: Optional[float] = None,
              parent: Optional[TraceContext] = None, **fields: Any) -> Any:
        """Open a span that outlives the current call stack.

        For work that spans simulation events (transfers, re-replication
        chains): the span is *not* pushed on the nesting stack, and must
        be closed with :meth:`finish` from whichever callback ends it.
        Returns a no-op span while the tracer is disabled.
        """
        if not self._enabled:
            return _NULL_SPAN
        return self._open_span(name, sim_time, parent, dict(fields))

    def finish(self, span: Any, end_sim: Optional[float] = None) -> None:
        """Close and commit a span opened with :meth:`begin`."""
        if span is _NULL_SPAN or not isinstance(span, Span):
            return
        if span.end_wall is not None:
            return  # already finished (duplicate callback)
        span.end_wall = time.perf_counter()
        if end_sim is not None:
            span.end_sim = end_sim
        self._commit(span)

    def current_context(self) -> Optional[TraceContext]:
        """The innermost open span's context (None outside any span)."""
        if not self._enabled or not self._stack:
            return None
        return self._stack[-1].context

    def _commit(self, span: Span) -> None:
        self._buffer[self._next_slot] = span
        self._next_slot = (self._next_slot + 1) % self.capacity
        self._recorded += 1

    # -- inspection ----------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Spans committed since the last :meth:`clear` (incl. evicted)."""
        return self._recorded

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Retained spans, oldest first; optionally filtered by name."""
        if self._recorded < self.capacity:
            ordered = [s for s in self._buffer[: self._next_slot]]
        else:
            ordered = (
                self._buffer[self._next_slot:] + self._buffer[: self._next_slot]
            )
        out = [s for s in ordered if s is not None]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def clear(self) -> None:
        """Drop all retained spans."""
        self._buffer = [None] * self.capacity
        self._next_slot = 0
        self._recorded = 0
        self._stack = []

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All retained spans as JSON-friendly dicts, oldest first."""
        return [span.as_dict() for span in self.spans()]


# Disabled by default, mirroring the metrics registry's contract.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _DEFAULT


def trace(name: str, sim_time: Optional[float] = None,
          parent: Optional[TraceContext] = None, **fields: Any):
    """``get_tracer().trace(...)`` — the one-line instrumentation entry."""
    return _DEFAULT.trace(name, sim_time=sim_time, parent=parent, **fields)
