"""Lightweight structured event tracing with a bounded span buffer.

A :class:`Span` is one named, timed unit of work — "one Algorithm 5
period", "the local-search phase" — with free-form key/value fields.
Spans record wall-clock durations via :func:`time.perf_counter` and,
when the caller passes it, the simulated time the work happened at
(the two clocks are deliberately distinct: the DES kernel never reads
real time, see ``docs/architecture.md``).

The :class:`Tracer` keeps the most recent ``capacity`` spans in a ring
buffer, so long periodic runs cannot grow memory without bound.  Like
the metrics registry it is disabled by default and costs one attribute
check per ``trace()`` entry when off.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import MetricsError

__all__ = ["Span", "Tracer", "get_tracer", "trace"]


@dataclass
class Span:
    """One completed (or in-flight) traced operation."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    start_wall: float = 0.0
    end_wall: Optional[float] = None
    sim_time: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    def set(self, **fields: Any) -> None:
        """Attach result fields to the span (e.g. counts, outcomes)."""
        self.fields.update(fields)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": self.duration_seconds,
            "sim_time": self.sim_time,
            "fields": dict(self.fields),
        }


class _NullSpan:
    """Shared sink for traces taken while the tracer is disabled."""

    __slots__ = ()
    name = ""
    fields: Dict[str, Any] = {}
    duration_seconds = 0.0

    def set(self, **fields: Any) -> None:
        """Discard fields."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Ring-buffered span recorder.

    ``capacity`` bounds retained spans: the buffer wraps, keeping the
    most recent ones.  Nested ``trace()`` calls record parent/child
    links through a simple stack (single-threaded, like the rest of the
    simulator).
    """

    def __init__(self, capacity: int = 1024, enabled: bool = True) -> None:
        if capacity < 1:
            raise MetricsError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._enabled = bool(enabled)
        self._buffer: List[Optional[Span]] = [None] * capacity
        self._next_slot = 0
        self._recorded = 0
        self._ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- enablement ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording spans."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; ``trace()`` becomes a no-op context."""
        self._enabled = False

    # -- recording -----------------------------------------------------------

    @contextmanager
    def trace(self, name: str, sim_time: Optional[float] = None,
              **fields: Any) -> Iterator[Any]:
        """Context manager timing one operation.

        Yields the open :class:`Span` so the body can ``span.set(...)``
        result fields.  The span is committed to the ring buffer on
        exit, even when the body raises (the exception propagates and
        the span records ``error=<type name>``).
        """
        if not self._enabled:
            yield _NULL_SPAN
            return
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else None,
            sim_time=sim_time,
            fields=dict(fields),
            start_wall=time.perf_counter(),
        )
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.fields.setdefault("error", type(exc).__name__)
            raise
        finally:
            span.end_wall = time.perf_counter()
            self._stack.pop()
            self._commit(span)

    def _commit(self, span: Span) -> None:
        self._buffer[self._next_slot] = span
        self._next_slot = (self._next_slot + 1) % self.capacity
        self._recorded += 1

    # -- inspection ----------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Spans committed since the last :meth:`clear` (incl. evicted)."""
        return self._recorded

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Retained spans, oldest first; optionally filtered by name."""
        if self._recorded < self.capacity:
            ordered = [s for s in self._buffer[: self._next_slot]]
        else:
            ordered = (
                self._buffer[self._next_slot:] + self._buffer[: self._next_slot]
            )
        out = [s for s in ordered if s is not None]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def clear(self) -> None:
        """Drop all retained spans."""
        self._buffer = [None] * self.capacity
        self._next_slot = 0
        self._recorded = 0
        self._stack = []

    def as_dicts(self) -> List[Dict[str, Any]]:
        """All retained spans as JSON-friendly dicts, oldest first."""
        return [span.as_dict() for span in self.spans()]


# Disabled by default, mirroring the metrics registry's contract.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _DEFAULT


def trace(name: str, sim_time: Optional[float] = None, **fields: Any):
    """``get_tracer().trace(...)`` — the one-line instrumentation entry."""
    return _DEFAULT.trace(name, sim_time=sim_time, **fields)
