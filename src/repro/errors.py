"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidProblemError",
    "InvalidTopologyError",
    "InfeasibleOperationError",
    "CapacityExceededError",
    "ReplicaConstraintError",
    "UnknownBlockError",
    "UnknownMachineError",
    "SimulationError",
    "DfsError",
    "BlockNotFoundError",
    "FileNotFoundInDfsError",
    "FileExistsInDfsError",
    "DatanodeUnavailableError",
    "ChecksumError",
    "SafeModeError",
    "FencedError",
    "EditLogCorruptError",
    "NoLeaderError",
    "QuotaExceededError",
    "SchedulerError",
    "TraceFormatError",
    "MetricsError",
    "FaultConfigError",
    "RetryExhaustedError",
    "TransferFailedError",
    "OverloadConfigError",
    "OverloadSheddedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidProblemError(ReproError):
    """A placement problem instance violates its own preconditions."""


class InvalidTopologyError(ReproError):
    """A cluster topology description is malformed."""


class InfeasibleOperationError(ReproError):
    """A local-search operation was applied in a state where it is illegal."""


class CapacityExceededError(InfeasibleOperationError):
    """Placing a replica would exceed the machine's block capacity."""


class ReplicaConstraintError(InfeasibleOperationError):
    """An operation would violate a replica-count or rack-spread constraint."""


class UnknownBlockError(ReproError):
    """A block id is not part of the problem instance or file system."""


class UnknownMachineError(ReproError):
    """A machine id is not part of the cluster topology."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DfsError(ReproError):
    """Base class for errors raised by the HDFS-like simulator."""


class BlockNotFoundError(DfsError):
    """The requested block does not exist in the namespace."""


class FileNotFoundInDfsError(DfsError):
    """The requested file path does not exist in the namespace."""


class FileExistsInDfsError(DfsError):
    """A file is being created over an existing path."""


class DatanodeUnavailableError(DfsError):
    """No live datanode can serve the request."""


class ChecksumError(DatanodeUnavailableError):
    """No replica could serve *verified* data (checksum mismatches).

    Raised by the client when every replica candidate either failed or
    held corrupt bytes — corrupt data is never silently returned.
    Subclasses :class:`DatanodeUnavailableError` so availability
    accounting treats an all-corrupt block as an unavailable one.
    """


class SafeModeError(DfsError):
    """The namenode is in safe mode; mutations are rejected."""


class FencedError(SafeModeError):
    """A deposed leader rejected a write (its term was superseded).

    Subclasses :class:`SafeModeError` so callers that already treat
    safe-mode rejections as "metadata plane temporarily unwritable"
    handle fencing the same way.
    """


class EditLogCorruptError(DfsError):
    """A persisted edit log is corrupt beyond its trailing line."""


class NoLeaderError(DfsError):
    """No namenode replica currently holds a valid leadership lease."""


class QuotaExceededError(DfsError):
    """The operation would exceed a directory quota."""


class SchedulerError(ReproError):
    """The task scheduler reached an inconsistent state."""


class TraceFormatError(ReproError):
    """A workload trace file or record is malformed."""


class MetricsError(ReproError):
    """Misuse of the observability layer (labels, names, buckets)."""


class FaultConfigError(ReproError):
    """A fault profile or retry policy is misconfigured."""


class RetryExhaustedError(ReproError):
    """An operation failed on every attempt a retry policy allowed."""


class TransferFailedError(DfsError):
    """A block transfer aborted mid-flight (injected or modelled fault)."""


class OverloadConfigError(ReproError):
    """An overload-protection component is misconfigured or misused."""


class OverloadSheddedError(DatanodeUnavailableError):
    """Every replica candidate shed the read (cluster-wide overload).

    Subclasses :class:`DatanodeUnavailableError` so existing failover
    and availability accounting treat a shed read as an unavailable one.
    """
