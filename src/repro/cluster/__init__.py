"""Cluster substrate: topology, machine state and failure modelling."""

from repro.cluster.topology import ClusterTopology

__all__ = ["ClusterTopology"]
