"""Per-machine runtime state: liveness and task slots.

The paper's simulations give each machine a fixed number of task slots
("each machine has sufficient resources for scheduling 14 tasks
simultaneously").  :class:`MachineState` tracks slot occupancy for the
scheduler and a liveness flag for failure experiments; static properties
(rack, capacity) live in :class:`~repro.cluster.topology.ClusterTopology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError

__all__ = ["MachineState"]


@dataclass
class MachineState:
    """Dynamic state of one machine."""

    machine_id: int
    task_slots: int
    alive: bool = True
    used_slots: int = 0
    tasks_executed: int = 0
    failures: int = 0

    @property
    def free_slots(self) -> int:
        """Slots currently available for new tasks (0 when dead)."""
        if not self.alive:
            return 0
        return self.task_slots - self.used_slots

    def reserve_slot(self) -> None:
        """Occupy one task slot."""
        if not self.alive:
            raise SchedulerError(
                f"machine {self.machine_id} is down; cannot reserve a slot"
            )
        if self.used_slots >= self.task_slots:
            raise SchedulerError(f"machine {self.machine_id} has no free slots")
        self.used_slots += 1
        self.tasks_executed += 1

    def release_slot(self) -> None:
        """Free one task slot."""
        if self.used_slots <= 0:
            raise SchedulerError(
                f"machine {self.machine_id} has no slot to release"
            )
        self.used_slots -= 1

    def fail(self) -> None:
        """Mark the machine dead; running tasks are the caller's problem."""
        self.alive = False
        self.failures += 1
        self.used_slots = 0

    def recover(self) -> None:
        """Bring the machine back with all slots free.

        A no-op on a machine that is already alive — overlapping repair
        events must not wipe the slot ledger of running tasks.
        """
        if self.alive:
            return
        self.alive = True
        self.used_slots = 0
