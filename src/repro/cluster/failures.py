"""Failure modelling: machine and rack (ToR switch) outages.

The placement problems exist because "the failure of a single node or a
Top-of-Rack switch should not render a file inaccessible".  This module
generates deterministic failure/recovery schedules that the DFS simulator
replays to validate exactly that property: with ``k_i`` replicas over
``rho_i >= 2`` racks, any single machine or rack outage leaves every block
readable.

Failure times are exponential (memoryless MTBF model) and repair times
constant, all driven by an injected :class:`random.Random` so experiments
are reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.topology import ClusterTopology
from repro.errors import InvalidProblemError

__all__ = ["FailureKind", "FailureEvent", "FailurePlan", "generate_failure_plan"]


class FailureKind(enum.Enum):
    """What failed (or recovered)."""

    MACHINE = "machine"
    RACK = "rack"


@dataclass(frozen=True)
class FailureEvent:
    """One outage or recovery at a simulated time.

    ``target`` is a machine id for ``MACHINE`` events and a rack id for
    ``RACK`` events.
    """

    time: float
    kind: FailureKind
    target: int
    is_recovery: bool

    def describe(self) -> str:
        """Human-readable one-liner for logs."""
        action = "recovers" if self.is_recovery else "fails"
        return f"t={self.time:.0f}s: {self.kind.value} {self.target} {action}"


@dataclass(frozen=True)
class FailurePlan:
    """A chronologically sorted schedule of failure and recovery events."""

    events: tuple

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def machine_outages(self) -> int:
        """Number of machine failure events (not recoveries)."""
        return sum(
            1 for e in self.events
            if e.kind is FailureKind.MACHINE and not e.is_recovery
        )

    def rack_outages(self) -> int:
        """Number of rack failure events (not recoveries)."""
        return sum(
            1 for e in self.events
            if e.kind is FailureKind.RACK and not e.is_recovery
        )


def generate_failure_plan(
    topology: ClusterTopology,
    horizon: float,
    rng: random.Random,
    machine_mtbf: Optional[float] = None,
    rack_mtbf: Optional[float] = None,
    repair_time: float = 600.0,
) -> FailurePlan:
    """Sample a failure/recovery schedule over ``[0, horizon)`` seconds.

    ``machine_mtbf`` / ``rack_mtbf`` are mean times between failures per
    machine / per rack; ``None`` disables that failure class.  Each outage
    is followed by a recovery ``repair_time`` seconds later (clamped to
    the horizon).  Overlapping outages of the same target are merged by
    skipping failures that land while the target is already down.
    """
    if horizon <= 0:
        raise InvalidProblemError("failure horizon must be positive")
    if repair_time <= 0:
        raise InvalidProblemError("repair_time must be positive")
    events: List[FailureEvent] = []

    def sample_outages(count: int, mtbf: float, kind: FailureKind) -> None:
        for target in range(count):
            down_until = 0.0
            t = rng.expovariate(1.0 / mtbf)
            while t < horizon:
                if t >= down_until:
                    events.append(FailureEvent(t, kind, target, is_recovery=False))
                    recovery = t + repair_time
                    down_until = recovery
                    if recovery < horizon:
                        events.append(
                            FailureEvent(recovery, kind, target, is_recovery=True)
                        )
                t += rng.expovariate(1.0 / mtbf)

    if machine_mtbf is not None:
        if machine_mtbf <= 0:
            raise InvalidProblemError("machine_mtbf must be positive")
        sample_outages(topology.num_machines, machine_mtbf, FailureKind.MACHINE)
    if rack_mtbf is not None:
        if rack_mtbf <= 0:
            raise InvalidProblemError("rack_mtbf must be positive")
        sample_outages(topology.num_racks, rack_mtbf, FailureKind.RACK)
    events.sort(key=lambda e: (e.time, e.is_recovery))
    return FailurePlan(events=tuple(events))
