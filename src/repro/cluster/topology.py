"""Static cluster topology: machines grouped into racks.

The topology is the substrate shared by the placement algorithms
(:mod:`repro.core`), the HDFS simulator (:mod:`repro.dfs`) and the task
scheduler (:mod:`repro.scheduler`).  Machines and racks are identified by
dense integer ids (``0 .. M-1`` and ``0 .. R-1``) so that per-machine state
can live in flat arrays.

The paper (Section III) models ``M`` identical machines grouped in ``R``
racks, each machine with a capacity ``C_m`` expressed as a maximum number
of blocks.  :class:`ClusterTopology` supports both the identical-machine
case (:meth:`ClusterTopology.uniform`) and heterogeneous capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import InvalidTopologyError, UnknownMachineError

__all__ = ["ClusterTopology"]


@dataclass(frozen=True)
class ClusterTopology:
    """Immutable description of machines, racks and capacities.

    Parameters
    ----------
    rack_of:
        ``rack_of[m]`` is the rack id of machine ``m``.  Rack ids must be
        dense: every rack id in ``0 .. max(rack_of)`` must appear.
    capacities:
        ``capacities[m]`` is the maximum number of block replicas machine
        ``m`` may hold.
    """

    rack_of: tuple
    capacities: tuple
    _machines_in_rack: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.rack_of) == 0:
            raise InvalidTopologyError("topology must contain at least one machine")
        if len(self.rack_of) != len(self.capacities):
            raise InvalidTopologyError(
                "rack_of and capacities must have the same length "
                f"({len(self.rack_of)} != {len(self.capacities)})"
            )
        object.__setattr__(self, "rack_of", tuple(int(r) for r in self.rack_of))
        object.__setattr__(self, "capacities", tuple(int(c) for c in self.capacities))
        for capacity in self.capacities:
            if capacity < 0:
                raise InvalidTopologyError("machine capacity must be non-negative")
        num_racks = max(self.rack_of) + 1
        members = [[] for _ in range(num_racks)]
        for machine, rack in enumerate(self.rack_of):
            if rack < 0:
                raise InvalidTopologyError("rack ids must be non-negative")
            members[rack].append(machine)
        for rack, machines in enumerate(members):
            if not machines:
                raise InvalidTopologyError(f"rack id {rack} has no machines")
        object.__setattr__(
            self, "_machines_in_rack", tuple(tuple(ms) for ms in members)
        )

    # -- constructors -----------------------------------------------------

    @classmethod
    def uniform(
        cls, num_racks: int, machines_per_rack: int, capacity: int
    ) -> "ClusterTopology":
        """Build the paper's identical-machine topology.

        ``num_racks`` racks, each containing ``machines_per_rack`` machines
        of block capacity ``capacity``.
        """
        if num_racks <= 0 or machines_per_rack <= 0:
            raise InvalidTopologyError("num_racks and machines_per_rack must be > 0")
        rack_of = [r for r in range(num_racks) for _ in range(machines_per_rack)]
        return cls(tuple(rack_of), tuple([capacity] * len(rack_of)))

    @classmethod
    def from_rack_sizes(
        cls, rack_sizes: Sequence[int], capacity: int
    ) -> "ClusterTopology":
        """Build a topology with per-rack machine counts and uniform capacity."""
        rack_of = [r for r, size in enumerate(rack_sizes) for _ in range(size)]
        return cls(tuple(rack_of), tuple([capacity] * len(rack_of)))

    # -- accessors ---------------------------------------------------------

    @property
    def num_machines(self) -> int:
        """Total machine count ``M``."""
        return len(self.rack_of)

    @property
    def num_racks(self) -> int:
        """Total rack count ``R``."""
        return len(self._machines_in_rack)

    @property
    def machines(self) -> range:
        """All machine ids, densely numbered from zero."""
        return range(self.num_machines)

    @property
    def racks(self) -> range:
        """All rack ids, densely numbered from zero."""
        return range(self.num_racks)

    def machines_in_rack(self, rack: int) -> tuple:
        """Machine ids located in ``rack``."""
        try:
            return self._machines_in_rack[rack]
        except IndexError:
            raise UnknownMachineError(f"unknown rack id {rack}") from None

    def rack_of_machine(self, machine: int) -> int:
        """Rack id hosting ``machine``."""
        self.check_machine(machine)
        return self.rack_of[machine]

    def capacity_of(self, machine: int) -> int:
        """Block capacity ``C_m`` of ``machine``."""
        self.check_machine(machine)
        return self.capacities[machine]

    def total_capacity(self) -> int:
        """Sum of block capacities over all machines."""
        return sum(self.capacities)

    def check_machine(self, machine: int) -> None:
        """Raise :class:`UnknownMachineError` unless ``machine`` exists."""
        if not 0 <= machine < self.num_machines:
            raise UnknownMachineError(f"unknown machine id {machine}")

    def same_rack(self, machine_a: int, machine_b: int) -> bool:
        """Whether two machines share a rack (and hence a ToR switch)."""
        self.check_machine(machine_a)
        self.check_machine(machine_b)
        return self.rack_of[machine_a] == self.rack_of[machine_b]

    def other_racks(self, rack: int) -> Iterable[int]:
        """All rack ids except ``rack``."""
        return (r for r in self.racks if r != rack)

    def describe(self) -> str:
        """One-line human-readable summary of the topology."""
        return (
            f"{self.num_machines} machines / {self.num_racks} racks, "
            f"total capacity {self.total_capacity()} blocks"
        )
