"""Per-datanode circuit breakers for the DFS client.

The client's read failover (PR 2) retries *through* a struggling node
every time: each read walks the same preference order, pays the same
failed attempt and backoff, and adds its request to the queue of a node
that is already shedding.  A circuit breaker remembers recent outcomes
per node and short-circuits the walk:

* **closed** — requests flow; outcomes are recorded in a sliding window;
* **open** — once the in-window failure rate crosses the threshold (with
  a minimum request volume, so one unlucky read cannot trip it), the
  node is skipped outright for ``cooldown`` seconds;
* **half-open** — after the cool-down, a limited number of probe
  requests are let through; one success closes the breaker, one failure
  re-opens it for another cool-down.

The breaker layers *under* the existing failover: a skipped node costs
the client nothing (no attempt, no backoff), which both shortens the
client's tail latency and sheds retry pressure from the sick node.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Tuple

from repro.errors import OverloadConfigError
from repro.obs.registry import get_registry

__all__ = ["BreakerState", "CircuitBreaker"]

_REG = get_registry()
_TRANSITIONS = _REG.counter(
    "repro_overload_breaker_transitions_total",
    "Circuit breaker state transitions, by new state",
    ["state"],
)


class BreakerState(enum.Enum):
    """The classic three-state breaker machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate breaker over a sliding time window, for one node."""

    def __init__(
        self,
        failure_threshold: float = 0.5,
        min_volume: int = 5,
        window: float = 60.0,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise OverloadConfigError("failure_threshold must be in (0, 1]")
        if min_volume < 1:
            raise OverloadConfigError("min_volume must be >= 1")
        if window <= 0 or cooldown <= 0:
            raise OverloadConfigError("window and cooldown must be positive")
        if half_open_probes < 1:
            raise OverloadConfigError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.window = window
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._state = BreakerState.CLOSED
        self._events: Deque[Tuple[float, bool]] = deque()  # (time, ok)
        self._opened_at = 0.0
        self._probes_left = 0
        self.trips = 0
        self.transitions: List[Tuple[float, BreakerState]] = []

    def state(self, now: float) -> BreakerState:
        """Current state, promoting OPEN to HALF_OPEN after cool-down."""
        if (self._state is BreakerState.OPEN
                and now - self._opened_at >= self.cooldown):
            self._move(BreakerState.HALF_OPEN, now)
            self._probes_left = self.half_open_probes
        return self._state

    def allow(self, now: float) -> bool:
        """Whether a request may be sent to this node now.

        In HALF_OPEN, each ``allow`` consumes one probe slot; once the
        slots are gone further requests are refused until an outcome is
        recorded.
        """
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self, now: float) -> None:
        """A request to this node succeeded."""
        if self.state(now) is BreakerState.HALF_OPEN:
            self._events.clear()
            self._move(BreakerState.CLOSED, now)
            return
        self._events.append((now, True))
        self._expire(now)

    def record_failure(self, now: float) -> None:
        """A request to this node failed (dead, stale, or shed)."""
        if self.state(now) is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        self._events.append((now, False))
        self._expire(now)
        if self._state is BreakerState.CLOSED and self._should_trip():
            self._trip(now)

    def failure_rate(self, now: float) -> float:
        """In-window failure fraction (0 with no recorded events)."""
        self._expire(now)
        if not self._events:
            return 0.0
        failures = sum(1 for _, ok in self._events if not ok)
        return failures / len(self._events)

    def _should_trip(self) -> bool:
        if len(self._events) < self.min_volume:
            return False
        failures = sum(1 for _, ok in self._events if not ok)
        return failures / len(self._events) >= self.failure_threshold

    def _trip(self, now: float) -> None:
        self._opened_at = now
        self._events.clear()
        self.trips += 1
        self._move(BreakerState.OPEN, now)

    def _move(self, state: BreakerState, now: float) -> None:
        if state is self._state:
            return
        self._state = state
        self.transitions.append((now, state))
        if _REG.enabled:
            _TRANSITIONS.labels(state=state.value).inc()

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()
