"""Assembling the overload-protection stack onto a live cluster.

:class:`OverloadConfig` gathers every knob of the subsystem in one
place; :func:`install_overload_protection` wires it onto a namenode:

* each datanode gets a :class:`~repro.overload.queueing.BoundedServiceQueue`
  sized from the config (the datanode's service capacity and waiting
  room);
* the namenode gets an
  :class:`~repro.overload.admission.AdmissionController` whose pressure
  signal is the live mean queue saturation, so re-replication and
  Aurora migrations yield bandwidth exactly when clients are squeezed;
* the returned :class:`OverloadProtection` handle builds per-node
  circuit breakers for clients and exposes the cluster saturation
  signal Aurora's brownout controller consumes.

Everything is opt-in: a namenode without this wiring behaves exactly as
before (no queues, no admission gate, no breakers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import OverloadConfigError
from repro.obs.registry import get_registry
from repro.overload.breaker import CircuitBreaker
from repro.overload.admission import AdmissionController
from repro.overload.queueing import BoundedServiceQueue, ShedPolicy

if TYPE_CHECKING:  # pragma: no cover - the namenode imports this package
    from repro.dfs.namenode import Namenode

__all__ = ["OverloadConfig", "OverloadProtection",
           "install_overload_protection"]

_REG = get_registry()
_CLUSTER_SATURATION = _REG.gauge(
    "repro_overload_cluster_saturation",
    "Mean bounded-queue occupancy across live datanodes",
)


@dataclass(frozen=True)
class OverloadConfig:
    """All overload-protection knobs.

    Parameters
    ----------
    queue_capacity:
        Bound on requests in one datanode's system (waiting + served).
    service_rate:
        Requests one datanode sustains per simulated second.
    shed_policy:
        What a full queue does with the next arrival (see
        :class:`~repro.overload.queueing.ShedPolicy`).
    hedge_latency_budget:
        Client-side hedging: when the chosen replica's projected latency
        exceeds this budget, a second request is fired at the next-best
        replica and the faster response wins.  ``None`` disables.
    breaker_failure_threshold / breaker_min_volume / breaker_window /
    breaker_cooldown / breaker_half_open_probes:
        Per-node circuit breaker tuning (see
        :class:`~repro.overload.breaker.CircuitBreaker`).
    replication_rate / migration_rate / admission_burst:
        Token-bucket rates (transfers per second) for the two background
        traffic classes, and their shared burst size.
    """

    queue_capacity: int = 32
    service_rate: float = 100.0
    shed_policy: ShedPolicy = ShedPolicy.PRIORITY
    hedge_latency_budget: Optional[float] = None
    breaker_failure_threshold: float = 0.5
    breaker_min_volume: int = 5
    breaker_window: float = 60.0
    breaker_cooldown: float = 30.0
    breaker_half_open_probes: int = 1
    replication_rate: float = 4.0
    migration_rate: float = 2.0
    admission_burst: float = 8.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise OverloadConfigError("queue_capacity must be >= 1")
        if self.service_rate <= 0:
            raise OverloadConfigError("service_rate must be positive")
        if (self.hedge_latency_budget is not None
                and self.hedge_latency_budget <= 0):
            raise OverloadConfigError(
                "hedge_latency_budget must be positive"
            )

    def new_breaker(self) -> CircuitBreaker:
        """A per-node circuit breaker tuned by this config."""
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            min_volume=self.breaker_min_volume,
            window=self.breaker_window,
            cooldown=self.breaker_cooldown,
            half_open_probes=self.breaker_half_open_probes,
        )


class OverloadProtection:
    """Handle over one cluster's installed overload machinery."""

    def __init__(self, namenode: "Namenode", config: OverloadConfig) -> None:
        self.namenode = namenode
        self.config = config
        self.queues: Dict[int, BoundedServiceQueue] = {}
        for dn in namenode.datanodes:
            queue = BoundedServiceQueue(
                capacity=config.queue_capacity,
                service_rate=config.service_rate,
                policy=config.shed_policy,
            )
            dn.service_queue = queue
            self.queues[dn.node_id] = queue
        self.admission = AdmissionController(
            replication_rate=config.replication_rate,
            migration_rate=config.migration_rate,
            burst=config.admission_burst,
            pressure=lambda: self.cluster_saturation(namenode.now),
        )
        namenode.admission = self.admission

    def cluster_saturation(self, now: float) -> float:
        """Mean queue occupancy across live datanodes (0 when empty)."""
        live = [
            self.queues[dn.node_id]
            for dn in self.namenode.datanodes if dn.alive
        ]
        if not live:
            return 1.0  # nothing can serve: maximally overloaded
        value = sum(q.saturation(now) for q in live) / len(live)
        if _REG.enabled:
            _CLUSTER_SATURATION.set(value)
        return value

    def max_saturation(self, now: float) -> float:
        """Worst single-node queue occupancy (the hotspot signal)."""
        return max(
            (self.queues[dn.node_id].saturation(now)
             for dn in self.namenode.datanodes if dn.alive),
            default=1.0,
        )

    def breakers(self) -> Dict[int, CircuitBreaker]:
        """Fresh per-node breakers for one client."""
        return {
            node: self.config.new_breaker() for node in self.queues
        }

    def total_shed(self) -> int:
        """Requests shed across all queues so far."""
        return sum(q.shed for q in self.queues.values())

    def total_served(self) -> int:
        """Requests completed across all queues so far."""
        return sum(q.served for q in self.queues.values())

    def uninstall(self) -> None:
        """Detach queues and the admission gate (for A/B comparisons)."""
        for dn in self.namenode.datanodes:
            dn.service_queue = None
        self.namenode.admission = None


def install_overload_protection(
    namenode: "Namenode", config: Optional[OverloadConfig] = None
) -> OverloadProtection:
    """Install bounded queues plus admission control on ``namenode``."""
    return OverloadProtection(namenode, config or OverloadConfig())
