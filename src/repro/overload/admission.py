"""Namenode-side admission control for background traffic.

Re-replication repairs and Aurora's reconfiguration migrations compete
with client reads for the same NICs, and they surge at exactly the wrong
moment: a node failure (or a reconfiguration period) during a load spike
adds background transfers on top of saturated datanodes.

:class:`TokenBucket` is a deterministic rate limiter on the simulation
clock; :class:`AdmissionController` puts one bucket in front of each
background traffic class and *scales the token cost with client
pressure*: at zero pressure a transfer costs one token, and as the
cluster's service queues saturate the cost grows, so background traffic
yields bandwidth to clients exactly when they need it.  Denied work is
not lost — the namenode keeps it queued and retries at the next
replication check, when pressure may have eased.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import OverloadConfigError
from repro.obs.registry import get_registry

__all__ = ["TokenBucket", "AdmissionController"]

_REG = get_registry()
_DECISIONS = _REG.counter(
    "repro_overload_admission_total",
    "Background-transfer admission decisions, by traffic kind and outcome",
    ["kind", "outcome"],
)


class TokenBucket:
    """A token bucket on a caller-supplied clock.

    ``rate`` tokens accrue per second up to ``burst``; ``try_acquire``
    never blocks — it either debits and admits or denies.  All state is
    derived from the timestamps the caller passes in, so refills are
    deterministic in simulated time.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise OverloadConfigError("token rate must be positive")
        if burst <= 0:
            raise OverloadConfigError("burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last_refill = 0.0

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (after refill)."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Debit ``tokens`` if the bucket holds them; False otherwise."""
        if tokens <= 0:
            raise OverloadConfigError("tokens must be positive")
        self._refill(now)
        if self._tokens < tokens:
            return False
        self._tokens -= tokens
        return True

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise OverloadConfigError(
                f"bucket clock moved backwards ({now} < {self._last_refill})"
            )
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now


class AdmissionController:
    """Gates background transfers behind pressure-scaled token buckets.

    ``pressure`` is a callable returning the cluster's client-load
    signal in [0, 1] (mean service-queue saturation); the effective
    token cost of one background transfer is ``1 / (1 - pressure)``
    (clamped), so a half-saturated cluster doubles the cost and a
    saturated one makes background work wait for the storm to pass.
    """

    def __init__(
        self,
        replication_rate: float = 4.0,
        migration_rate: float = 2.0,
        burst: float = 8.0,
        pressure: Optional[Callable[[], float]] = None,
        max_cost_scale: float = 20.0,
        scrub_rate: Optional[float] = None,
    ) -> None:
        if max_cost_scale < 1.0:
            raise OverloadConfigError("max_cost_scale must be >= 1")
        # The background scrubber is priced like re-replication traffic
        # unless given its own rate: both are repair-plane disk/NIC
        # load that must yield to clients.
        self._buckets: Dict[str, TokenBucket] = {
            "replication": TokenBucket(replication_rate, burst),
            "migration": TokenBucket(migration_rate, burst),
            "scrub": TokenBucket(
                replication_rate if scrub_rate is None else scrub_rate,
                burst,
            ),
        }
        self.pressure = pressure or (lambda: 0.0)
        self.max_cost_scale = max_cost_scale
        self.admitted: Dict[str, int] = {kind: 0 for kind in self._buckets}
        self.deferred: Dict[str, int] = {kind: 0 for kind in self._buckets}

    def kinds(self) -> Dict[str, TokenBucket]:
        """The gated traffic classes and their buckets."""
        return dict(self._buckets)

    def cost(self) -> float:
        """Current token cost of one background transfer."""
        pressure = max(0.0, min(1.0, self.pressure()))
        if pressure >= 1.0:
            return self.max_cost_scale
        return min(self.max_cost_scale, 1.0 / (1.0 - pressure))

    def admit(self, kind: str, now: float) -> bool:
        """Whether one background transfer of ``kind`` may start now."""
        try:
            bucket = self._buckets[kind]
        except KeyError:
            raise OverloadConfigError(
                f"unknown background traffic kind {kind!r}"
            ) from None
        admitted = bucket.try_acquire(now, self.cost())
        if admitted:
            self.admitted[kind] += 1
        else:
            self.deferred[kind] += 1
        if _REG.enabled:
            _DECISIONS.labels(
                kind=kind,
                outcome="admitted" if admitted else "deferred",
            ).inc()
        return admitted
