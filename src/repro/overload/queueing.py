"""Per-datanode bounded service queues with load-shedding policies.

The paper's premise is that popularity skew concentrates read load on a
few machines; when the offered load on one of those machines exceeds its
service rate, an unbounded queue turns the overload into unbounded tail
latency.  :class:`BoundedServiceQueue` models each datanode as a
work-conserving single server with a *bounded* waiting room: requests
are admitted with an analytically computed completion time (virtual-time
queueing — no simulation events needed), and arrivals beyond the bound
are shed according to a :class:`ShedPolicy`:

* ``reject`` — the arrival itself is turned away (classic admission
  control: newest work is cheapest to refuse);
* ``drop-oldest`` — the oldest waiting request is dropped to make room
  (its client has waited longest and is the most likely to have timed
  out already);
* ``priority`` — the lowest-priority waiting request is evicted if the
  arrival outranks it, else the arrival is shed.  Client reads outrank
  re-replication, which outranks Aurora migration traffic
  (:class:`Priority`).

Shed requests fail *fast* — the caller (the DFS client) immediately
fails over to another replica instead of waiting in a hopeless queue,
which is what keeps p99 latency bounded at overload.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional

from repro.errors import OverloadConfigError
from repro.obs.registry import get_registry

__all__ = ["Priority", "ShedPolicy", "BoundedServiceQueue"]

_REG = get_registry()
_OFFERS = _REG.counter(
    "repro_overload_queue_offers_total",
    "Requests offered to bounded datanode service queues, by priority",
    ["priority"],
)
_SHEDS = _REG.counter(
    "repro_overload_queue_sheds_total",
    "Requests shed by bounded datanode service queues, by policy",
    ["policy"],
)


class Priority(enum.IntEnum):
    """Request classes, most important first (lower value wins)."""

    CLIENT_READ = 0
    RE_REPLICATION = 1
    MIGRATION = 2


class ShedPolicy(enum.Enum):
    """What a full queue does with one request too many."""

    REJECT = "reject"
    DROP_OLDEST = "drop-oldest"
    PRIORITY = "priority"


class _Entry:
    """One admitted request: its service demand and completion time."""

    __slots__ = ("completion", "service_time", "priority", "seq")

    def __init__(self, completion: float, service_time: float,
                 priority: Priority, seq: int) -> None:
        self.completion = completion
        self.service_time = service_time
        self.priority = priority
        self.seq = seq


class BoundedServiceQueue:
    """A bounded FIFO service queue over virtual (simulated) time.

    ``service_rate`` is the node's sustainable request rate (requests
    per simulated second); ``capacity`` bounds the number of requests
    in the system (waiting plus in service).  ``offer`` returns the
    request's latency (wait plus service) or ``None`` when it was shed.

    The queue is work-conserving and deterministic: all state is derived
    from the caller-supplied clock, so it composes with the DES kernel
    without scheduling any events.
    """

    def __init__(
        self,
        capacity: int,
        service_rate: float,
        policy: ShedPolicy = ShedPolicy.REJECT,
    ) -> None:
        if capacity < 1:
            raise OverloadConfigError("queue capacity must be >= 1")
        if service_rate <= 0:
            raise OverloadConfigError("service_rate must be positive")
        self.capacity = capacity
        self.service_rate = service_rate
        self.policy = policy
        self._pending: Deque[_Entry] = deque()
        self._seq = 0
        self._last_now = 0.0
        # Work-conserving idle accounting for utilization().
        self._started_at: Optional[float] = None
        self._idle_accum = 0.0
        self._last_completion = 0.0
        # offered == served + shed + depth(now) at all times.
        self.offered = 0
        self.served = 0
        self.shed = 0
        self.shed_arrivals = 0
        self.shed_evictions = 0
        self.busy_seconds = 0.0

    # -- time bookkeeping ---------------------------------------------------

    def _advance(self, now: float) -> None:
        if now < self._last_now:
            raise OverloadConfigError(
                f"queue clock moved backwards ({now} < {self._last_now})"
            )
        self._last_now = now
        while self._pending and self._pending[0].completion <= now:
            self._pending.popleft()
            self.served += 1

    # -- queries ------------------------------------------------------------

    def depth(self, now: float) -> int:
        """Requests in the system (waiting plus in service)."""
        self._advance(now)
        return len(self._pending)

    def saturation(self, now: float) -> float:
        """Queue occupancy in [0, 1] — the overload signal."""
        return self.depth(now) / self.capacity

    def wait(self, now: float) -> float:
        """Time a new arrival would wait before entering service."""
        self._advance(now)
        if not self._pending:
            return 0.0
        return max(0.0, self._pending[-1].completion - now)

    def estimate(self, now: float, work: float = 1.0) -> float:
        """Projected latency of an arrival at ``now``, ignoring bounds.

        Used by hedged reads to compare replicas *before* committing the
        request to a queue.
        """
        return self.wait(now) + self._service_time(work)

    def utilization(self, now: float) -> float:
        """Busy fraction of the server since its first offer."""
        self._advance(now)
        if self._started_at is None or now <= self._started_at:
            return 0.0
        idle = self._idle_accum
        if not self._pending and now > self._last_completion:
            idle += now - self._last_completion
        elapsed = now - self._started_at
        return max(0.0, min(1.0, 1.0 - idle / elapsed))

    # -- the one mutation ---------------------------------------------------

    def offer(
        self,
        now: float,
        priority: Priority = Priority.CLIENT_READ,
        work: float = 1.0,
    ) -> Optional[float]:
        """Submit one request; returns its latency, or ``None`` if shed."""
        self._advance(now)
        self.offered += 1
        if _REG.enabled:
            _OFFERS.labels(priority=priority.name.lower()).inc()
        if self._started_at is None:
            self._started_at = now
            self._last_completion = now
        elif not self._pending and now > self._last_completion:
            self._idle_accum += now - self._last_completion
        if len(self._pending) >= self.capacity:
            if not self._make_room(priority):
                self.shed += 1
                self.shed_arrivals += 1
                if _REG.enabled:
                    _SHEDS.labels(policy=self.policy.value).inc()
                return None
        service_time = self._service_time(work)
        start = max(now, self._pending[-1].completion if self._pending
                    else self._last_completion)
        self._seq += 1
        entry = _Entry(start + service_time, service_time, priority, self._seq)
        self._pending.append(entry)
        self._last_completion = entry.completion
        self.busy_seconds += service_time
        return entry.completion - now

    # -- shedding -----------------------------------------------------------

    def _make_room(self, arriving: Priority) -> bool:
        """Apply the shed policy to a full queue; True if room was made."""
        if self.policy is ShedPolicy.REJECT:
            return False
        if self.policy is ShedPolicy.DROP_OLDEST:
            victim = self._pending[0]
        else:  # PRIORITY: evict the worst-ranked waiter, newest last
            victim = max(self._pending, key=lambda e: (e.priority, e.seq))
            if victim.priority <= arriving:
                return False  # nothing in the queue ranks below the arrival
        self._evict(victim)
        return True

    def _evict(self, victim: _Entry) -> None:
        """Remove one admitted entry; later requests finish earlier.

        Evicting the in-service head only recovers its *remaining*
        service time — the work already done is sunk.
        """
        shift = victim.service_time
        if victim is self._pending[0]:
            shift = max(0.0, min(shift, victim.completion - self._last_now))
        found = False
        for entry in self._pending:
            if entry is victim:
                found = True
                continue
            if found:
                entry.completion -= shift
        self._pending.remove(victim)
        self.busy_seconds -= shift
        if self._pending:
            self._last_completion = self._pending[-1].completion
        else:
            self._last_completion = min(self._last_completion, self._last_now)
        self.shed += 1
        self.shed_evictions += 1
        if _REG.enabled:
            _SHEDS.labels(policy=self.policy.value).inc()

    def _service_time(self, work: float) -> float:
        if work <= 0:
            raise OverloadConfigError("work must be positive")
        return work / self.service_rate
