"""Aurora brownout mode: trade reconfiguration fidelity for headroom.

Section IV's epsilon knob trades balance quality against reconfiguration
traffic: a higher epsilon admits only operations that nearly close a
load gap, so far fewer blocks move.  Under overload that trade flips
from a tuning preference into a survival requirement — migration
traffic competes with the very client reads whose pressure triggered
the imbalance, so moving blocks aggressively makes the overload worse.

:class:`BrownoutController` is a hysteresis state machine over the
cluster saturation signal (mean bounded-queue occupancy, reported by
heartbeats).  While browned out, :class:`~repro.aurora.system.AuroraSystem`

* raises epsilon to ``brownout_epsilon`` (fewer, higher-value moves),
* defers non-urgent migrations entirely when configured to, and
* records the decision in its :class:`~repro.aurora.system.PeriodReport`

so an operator can see exactly which periods ran degraded and why.
Enter/exit use distinct thresholds so a cluster hovering at the edge
does not flap in and out of brownout every period.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import OverloadConfigError
from repro.obs.registry import get_registry

__all__ = ["BrownoutController"]

_REG = get_registry()
_ACTIVE = _REG.gauge(
    "repro_aurora_brownout_active",
    "Whether Aurora is currently in brownout mode (1) or not (0)",
)
_TRANSITIONS = _REG.counter(
    "repro_aurora_brownout_transitions_total",
    "Brownout mode transitions, by direction",
    ["direction"],
)


class BrownoutController:
    """Hysteresis detector driving Aurora's degraded operating mode."""

    def __init__(
        self,
        enter_threshold: float = 0.7,
        exit_threshold: float = 0.4,
    ) -> None:
        if not 0.0 < enter_threshold <= 1.0:
            raise OverloadConfigError("enter_threshold must be in (0, 1]")
        if not 0.0 <= exit_threshold < enter_threshold:
            raise OverloadConfigError(
                "exit_threshold must be in [0, enter_threshold)"
            )
        self.enter_threshold = enter_threshold
        self.exit_threshold = exit_threshold
        self.active = False
        self.last_saturation = 0.0
        self.entered = 0
        self.exited = 0
        # (time, "enter" | "exit", saturation) — the operator's audit trail.
        self.transitions: List[Tuple[float, str, float]] = []

    def update(self, now: float, saturation: float) -> bool:
        """Feed one saturation observation; returns the new mode."""
        if saturation < 0.0:
            raise OverloadConfigError("saturation must be non-negative")
        self.last_saturation = saturation
        if not self.active and saturation >= self.enter_threshold:
            self.active = True
            self.entered += 1
            self.transitions.append((now, "enter", saturation))
            if _REG.enabled:
                _TRANSITIONS.labels(direction="enter").inc()
        elif self.active and saturation <= self.exit_threshold:
            self.active = False
            self.exited += 1
            self.transitions.append((now, "exit", saturation))
            if _REG.enabled:
                _TRANSITIONS.labels(direction="exit").inc()
        if _REG.enabled:
            _ACTIVE.set(1.0 if self.active else 0.0)
        return self.active
