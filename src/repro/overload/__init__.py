"""Overload protection and graceful degradation for the Aurora stack.

PR 2 made the system survive *failures*; this package protects it from
*success* — demand beyond service capacity.  The pieces compose into a
layered defence:

* :mod:`repro.overload.queueing` — per-datanode bounded service queues
  with reject / drop-oldest / priority shedding;
* :mod:`repro.overload.admission` — namenode token buckets that make
  re-replication and migration traffic yield under client pressure;
* :mod:`repro.overload.breaker` — per-node circuit breakers under the
  client's read failover;
* :mod:`repro.overload.brownout` — the hysteresis controller behind
  Aurora's brownout mode (raise epsilon, defer migrations);
* :mod:`repro.overload.protection` — one-call installation onto a live
  namenode.
"""

from repro.overload.admission import AdmissionController, TokenBucket
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.overload.brownout import BrownoutController
from repro.overload.protection import (
    OverloadConfig,
    OverloadProtection,
    install_overload_protection,
)
from repro.overload.queueing import BoundedServiceQueue, Priority, ShedPolicy

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "BreakerState",
    "CircuitBreaker",
    "BrownoutController",
    "OverloadConfig",
    "OverloadProtection",
    "install_overload_protection",
    "BoundedServiceQueue",
    "Priority",
    "ShedPolicy",
]
