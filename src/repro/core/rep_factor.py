"""Replication-factor computation: Algorithm 3 / the Rep-Factor program.

Given block popularities ``P_i``, minimum factors ``k_low_i``, the machine
count ``|M|`` and a global replication budget ``beta``, the Rep-Factor
program chooses integer replication factors ``k_i`` minimizing the maximum
per-replica popularity ``max_i P_i / k_i``.

Algorithm 3 of the paper solves Rep-Factor optimally (Theorem 8) by greedy
water-filling: repeatedly take the block with the highest per-replica
popularity and give it one more replica — either from unused budget, or by
stealing a replica from a block ``l`` whose per-replica popularity after
the steal, ``P_l / (k_l - 1)``, does not exceed the current maximum.

Implementation notes
--------------------
* The steal is only performed when it *strictly* lowers the donor below
  the current maximum; at equality the maximum provably cannot be reduced
  further (the optimality condition in the proof of Theorem 8), so the
  algorithm stops.  This guard also guarantees termination: each steal
  strictly shrinks the multiset of shares at the current maximum.
* Factors are capped at ``|M|`` (a block cannot have two replicas on one
  machine).
* :func:`verify_optimal_factors` checks the optimality certificate and is
  used by the tests.
"""

from __future__ import annotations

import heapq
import logging
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.instance import PlacementProblem
from repro.errors import InvalidProblemError
from repro.obs.registry import get_registry

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_REPFACTOR_RUNS = _REG.counter(
    "repro_core_repfactor_runs_total",
    "Algorithm 3 (water-filling) invocations, by termination cause",
    ["outcome"],
)
_REPFACTOR_ITERATIONS = _REG.counter(
    "repro_core_repfactor_iterations_total",
    "Greedy water-filling steps performed, split into grants and steals",
    ["kind"],
)
_REPFACTOR_SECONDS = _REG.histogram(
    "repro_core_repfactor_seconds",
    "Wall-clock duration of one Algorithm 3 run",
)

__all__ = [
    "RepFactorResult",
    "compute_replication_factors",
    "factors_for_problem",
    "verify_optimal_factors",
    "max_share",
]


@dataclass(frozen=True)
class RepFactorResult:
    """Solution of the Rep-Factor program.

    ``factors`` maps block id to the chosen ``k_i``; ``iterations`` counts
    the greedy steps (grants plus steals) performed, which Algorithm 5
    caps at ``K``.  ``grants``/``steals`` split those steps by kind and
    ``elapsed_seconds`` is the run's wall-clock duration.
    """

    factors: Dict[int, int]
    max_share: float
    iterations: int
    budget_used: int
    exhausted_budget: bool
    grants: int = 0
    steals: int = 0
    elapsed_seconds: float = 0.0


def max_share(popularities: Mapping[int, float], factors: Mapping[int, int]) -> float:
    """Maximum per-replica popularity ``max_i P_i / k_i`` of an allocation."""
    if not popularities:
        return 0.0
    return max(popularities[i] / factors[i] for i in popularities)


def compute_replication_factors(
    popularities: Mapping[int, float],
    min_factors: Mapping[int, int],
    budget: int,
    num_machines: int,
    initial_factors: Optional[Mapping[int, int]] = None,
    max_iterations: Optional[int] = None,
) -> RepFactorResult:
    """Algorithm 3: optimal replication factors under a global budget.

    Parameters
    ----------
    popularities:
        ``P_i`` per block id.
    min_factors:
        ``k_low_i`` per block id (node-level reliability requirement).
    budget:
        ``beta`` — upper bound on ``sum_i k_i``.
    num_machines:
        ``|M|`` — upper bound on each ``k_i``.
    initial_factors:
        Starting factors (e.g. the currently deployed ones, for Aurora's
        incremental periods).  Defaults to the minimum factors.  Values
        are clamped into ``[k_low_i, |M|]``.
    max_iterations:
        Optional cap ``K`` on greedy steps, Algorithm 5's
        reconfiguration budget.  When hit, the result is feasible but may
        be sub-optimal (``exhausted_budget`` stays meaningful).
    """
    started = time.perf_counter()
    block_ids = list(popularities)
    if set(min_factors) != set(block_ids):
        raise InvalidProblemError("popularities and min_factors must share keys")
    min_total = sum(min_factors.values())
    if budget < min_total:
        raise InvalidProblemError(
            f"budget {budget} below the minimum replica total {min_total}"
        )
    for block_id in block_ids:
        if min_factors[block_id] < 1:
            raise InvalidProblemError(f"block {block_id}: min factor must be >= 1")
        if min_factors[block_id] > num_machines:
            raise InvalidProblemError(
                f"block {block_id}: min factor exceeds machine count"
            )
        if popularities[block_id] < 0:
            raise InvalidProblemError(
                f"block {block_id}: popularity must be non-negative"
            )

    factors: Dict[int, int] = {}
    for block_id in block_ids:
        start = (initial_factors or min_factors).get(block_id, min_factors[block_id])
        factors[block_id] = max(min_factors[block_id], min(int(start), num_machines))
    used = sum(factors.values())
    if used > budget:
        # Trim the lowest-share blocks back towards their minima until the
        # starting point is feasible.
        trim_order = sorted(
            block_ids, key=lambda b: popularities[b] / factors[b]
        )
        for block_id in trim_order:
            while used > budget and factors[block_id] > min_factors[block_id]:
                factors[block_id] -= 1
                used -= 1
        if used > budget:
            raise InvalidProblemError("initial factors cannot fit the budget")

    # Max-heap on per-replica popularity (receiver side); lazily refreshed.
    def share(block_id: int) -> float:
        return popularities[block_id] / factors[block_id]

    receiver_heap = [(-share(b), b, factors[b]) for b in block_ids]
    heapq.heapify(receiver_heap)
    # Min-heap of donor shares after a hypothetical steal.
    donor_heap = [
        (popularities[b] / (factors[b] - 1), b, factors[b])
        for b in block_ids
        if factors[b] > min_factors[b]
    ]
    heapq.heapify(donor_heap)

    iterations = 0
    grants = 0
    steals = 0
    while max_iterations is None or iterations < max_iterations:
        # Pop the highest-share block that can still receive a replica,
        # skipping stale entries.  Blocks at the machine cap (or with
        # zero popularity) are dropped from consideration: the paper's
        # Lemma 7 lets the leftover budget flow to the next-hottest
        # blocks without affecting optimality.
        receiver = None
        while receiver_heap:
            neg_share, block_id, stamp = heapq.heappop(receiver_heap)
            if stamp != factors[block_id]:
                continue
            if factors[block_id] >= num_machines or neg_share == 0.0:
                continue
            receiver = block_id
            break
        if receiver is None:
            break
        current_max = share(receiver)
        if used < budget:
            factors[receiver] += 1
            used += 1
            iterations += 1
            grants += 1
            _push_block(receiver_heap, donor_heap, popularities, min_factors,
                        factors, receiver)
            continue
        # Budget exhausted: steal from the donor with the smallest
        # post-steal share, provided that share stays strictly below the
        # current maximum.
        donor = None
        while donor_heap:
            post_share, block_id, stamp = heapq.heappop(donor_heap)
            if stamp != factors[block_id] or factors[block_id] <= min_factors[block_id]:
                continue
            if block_id == receiver:
                # A block never donates to itself; re-queue and look deeper.
                requeue = (post_share, block_id, stamp)
                donor = _pop_second_donor(donor_heap, factors, min_factors)
                heapq.heappush(donor_heap, requeue)
                break
            donor = (post_share, block_id)
            break
        if donor is None:
            heapq.heappush(
                receiver_heap, (-current_max, receiver, factors[receiver])
            )
            break
        post_share, donor_id = donor
        if post_share >= current_max:
            # Optimality certificate (Theorem 8): every possible steal
            # raises some block to at least the current maximum.
            heapq.heappush(receiver_heap, (-current_max, receiver, factors[receiver]))
            heapq.heappush(donor_heap, (post_share, donor_id, factors[donor_id]))
            break
        factors[donor_id] -= 1
        factors[receiver] += 1
        iterations += 1
        steals += 1
        _push_block(receiver_heap, donor_heap, popularities, min_factors,
                    factors, donor_id)
        _push_block(receiver_heap, donor_heap, popularities, min_factors,
                    factors, receiver)

    elapsed = time.perf_counter() - started
    capped = max_iterations is not None and iterations >= max_iterations
    if _REG.enabled:
        _REPFACTOR_RUNS.labels(
            outcome="capped" if capped else "optimal"
        ).inc()
        if grants:
            _REPFACTOR_ITERATIONS.labels(kind="grant").inc(grants)
        if steals:
            _REPFACTOR_ITERATIONS.labels(kind="steal").inc(steals)
        _REPFACTOR_SECONDS.observe(elapsed)
    _LOG.debug(
        "rep-factor done blocks=%d iterations=%d grants=%d steals=%d "
        "budget_used=%d/%d elapsed=%.4fs",
        len(block_ids), iterations, grants, steals, used, budget, elapsed,
    )
    return RepFactorResult(
        factors=factors,
        max_share=max_share(popularities, factors),
        iterations=iterations,
        budget_used=used,
        exhausted_budget=used >= budget,
        grants=grants,
        steals=steals,
        elapsed_seconds=elapsed,
    )


def _push_block(receiver_heap, donor_heap, popularities, min_factors, factors,
                block_id) -> None:
    """Refresh both heaps after ``block_id``'s factor changed."""
    count = factors[block_id]
    heapq.heappush(receiver_heap, (-(popularities[block_id] / count), block_id, count))
    if count > min_factors[block_id]:
        heapq.heappush(
            donor_heap, (popularities[block_id] / (count - 1), block_id, count)
        )


def _pop_second_donor(donor_heap, factors, min_factors):
    """Next valid donor after skipping the heap head, or ``None``."""
    while donor_heap:
        post_share, block_id, stamp = heapq.heappop(donor_heap)
        if stamp != factors[block_id] or factors[block_id] <= min_factors[block_id]:
            continue
        return (post_share, block_id)
    return None


def factors_for_problem(
    problem: PlacementProblem,
    initial_factors: Optional[Mapping[int, int]] = None,
    max_iterations: Optional[int] = None,
) -> RepFactorResult:
    """Run Algorithm 3 on a BP-Replicate problem instance."""
    if problem.replication_budget is None:
        raise InvalidProblemError(
            "problem has no replication budget; Rep-Factor applies to "
            "BP-Replicate instances only"
        )
    popularities = {spec.block_id: spec.popularity for spec in problem}
    min_factors = {spec.block_id: spec.replication_factor for spec in problem}
    return compute_replication_factors(
        popularities,
        min_factors,
        budget=problem.replication_budget,
        num_machines=problem.topology.num_machines,
        initial_factors=initial_factors,
        max_iterations=max_iterations,
    )


def verify_optimal_factors(
    popularities: Mapping[int, float],
    min_factors: Mapping[int, int],
    factors: Mapping[int, int],
    budget: int,
    num_machines: int,
    tolerance: float = 1e-9,
) -> bool:
    """Check Algorithm 3's optimality certificate.

    An allocation is optimal iff the max-share block cannot be granted a
    replica from spare budget, and every steal from another block would
    raise that donor to at least the current maximum.
    """
    current = max_share(popularities, factors)
    if current == 0.0:
        return True
    top_blocks = [
        b for b in popularities
        if abs(popularities[b] / factors[b] - current) <= tolerance
    ]
    used = sum(factors.values())
    for top in top_blocks:
        if factors[top] >= num_machines:
            continue
        if used < budget:
            return False
        for donor in popularities:
            if donor == top or factors[donor] <= min_factors[donor]:
                continue
            if popularities[donor] / (factors[donor] - 1) < current - tolerance:
                return False
    return True
