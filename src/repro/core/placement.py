"""Mutable placement state with incremental load bookkeeping.

:class:`PlacementState` tracks, for one :class:`~repro.core.instance.PlacementProblem`,
which machines hold a replica of each block, and maintains derived
quantities incrementally:

* per-machine popularity load ``L_m = sum_i p_i x_im`` where the share is
  ``p_i = P_i / (current replica count of i)`` — the paper's model in which
  a block's popularity is divided evenly among its replicas;
* per-rack total load;
* per-block rack spread (number of distinct racks holding a replica);
* per-machine used capacity.

All local-search operations of the paper (``Move``, ``Swap``, ``RackMove``,
``RackSwap``) and the replication-factor changes of Algorithm 5 reduce to
:meth:`add_replica`, :meth:`remove_replica`, :meth:`move` and :meth:`swap`.

The state also maintains three search indices so the local search
(:mod:`repro.core.local_search`) runs incrementally instead of rescanning
the cluster per iteration:

* **Load extremes** — lazy max/min heaps over machine loads, one global
  pair plus one pair per rack.  Every load change pushes fresh entries
  stamped with a per-machine version; queries pop stale entries, so
  :meth:`argmax_machine`, :meth:`argmin_machine`, :meth:`cost` and the
  per-rack variants are O(log M) amortized.  Tie-breaking is by lowest
  machine id, matching the ``argmax``/``argmin`` first-index convention
  the scanning implementation had.
* **Share indices** — one sorted ``(share, block_id)`` list per machine,
  delta-updated on every mutation (including the share changes a
  replication-factor change inflicts on *all* holders of a block).
* **Machine epochs** — a counter per machine, bumped whenever anything
  that could affect a local-search probe touching the machine changes:
  its load, its block set, or the share/rack-spread of any block it
  holds (hence every mutation bumps *all* holders of the touched block).
  The search engine keys its exhausted-pair memo on these epochs.

Loads are floats updated incrementally; :meth:`recompute` rebuilds them
from scratch and runs automatically every ``_RECOMPUTE_INTERVAL`` mutations
to bound floating-point drift.  :meth:`audit` verifies every invariant and
is used heavily by the test suite.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.core.instance import PlacementProblem
from repro.errors import (
    CapacityExceededError,
    InfeasibleOperationError,
    ReplicaConstraintError,
    UnknownBlockError,
)

__all__ = ["PlacementState"]

_RECOMPUTE_INTERVAL = 65536


class PlacementState:
    """Assignment of block replicas to machines, with incremental loads."""

    def __init__(self, problem: PlacementProblem) -> None:
        self.problem = problem
        topo = problem.topology
        self._machines_of: Dict[int, Set[int]] = {
            spec.block_id: set() for spec in problem
        }
        self._blocks_on: List[Set[int]] = [set() for _ in topo.machines]
        self._loads = np.zeros(topo.num_machines, dtype=np.float64)
        self._rack_loads = np.zeros(topo.num_racks, dtype=np.float64)
        self._rack_holders: Dict[int, Dict[int, int]] = {
            spec.block_id: {} for spec in problem
        }
        self._mutations = 0
        # Search indices (see module docstring): per-machine sorted
        # (share, block_id) lists, change epochs, and lazy extreme heaps.
        self._share_index: List[List[Tuple[float, int]]] = [
            [] for _ in topo.machines
        ]
        self._machine_epoch: List[int] = [0] * topo.num_machines
        self._load_stamp: List[int] = [0] * topo.num_machines
        self._init_load_heaps()

    def _init_load_heaps(self) -> None:
        """(Re)build the four lazy extreme-heap families from ``_loads``.

        Entries are ``(keyed load, machine, stamp)``; an entry is valid
        iff its stamp equals the machine's current ``_load_stamp``.  The
        invariant maintained everywhere: every machine's latest entry is
        present in all four heaps.
        """
        topo = self.problem.topology
        loads = self._loads
        stamps = self._load_stamp
        self._max_heap: List[Tuple[float, int, int]] = [
            (-float(loads[m]), m, stamps[m]) for m in topo.machines
        ]
        self._min_heap: List[Tuple[float, int, int]] = [
            (float(loads[m]), m, stamps[m]) for m in topo.machines
        ]
        self._rack_max_heaps: List[List[Tuple[float, int, int]]] = []
        self._rack_min_heaps: List[List[Tuple[float, int, int]]] = []
        for rack in topo.racks:
            members = topo.machines_in_rack(rack)
            self._rack_max_heaps.append(
                [(-float(loads[m]), m, stamps[m]) for m in members]
            )
            self._rack_min_heaps.append(
                [(float(loads[m]), m, stamps[m]) for m in members]
            )
        for heap in (self._max_heap, self._min_heap):
            heapq.heapify(heap)
        for heaps in (self._rack_max_heaps, self._rack_min_heaps):
            for heap in heaps:
                heapq.heapify(heap)
        # Compaction threshold: rebuild once stale entries dominate.
        self._heap_compact_at = 8 * topo.num_machines + 64

    # -- basic queries -------------------------------------------------------

    @property
    def topology(self):
        """The cluster topology of the underlying problem."""
        return self.problem.topology

    def machines_of(self, block_id: int) -> FrozenSet[int]:
        """Machines currently holding a replica of ``block_id``."""
        return frozenset(self._machines_for(block_id))

    def blocks_on(self, machine: int) -> FrozenSet[int]:
        """Blocks with a replica on ``machine`` (immutable copy).

        Allocates a fresh ``frozenset`` per call; hot paths that only
        need membership tests or iteration should use
        :meth:`blocks_on_view` instead.
        """
        self.topology.check_machine(machine)
        return frozenset(self._blocks_on[machine])

    def blocks_on_view(self, machine: int) -> Set[int]:
        """Zero-copy view of the blocks on ``machine``.

        Returns the internal set — callers must treat it as read-only
        and must not hold it across mutations they expect snapshot
        semantics from.  Use :meth:`blocks_on` for an immutable copy.
        """
        self.topology.check_machine(machine)
        return self._blocks_on[machine]

    def share_index(self, machine: int) -> Sequence[Tuple[float, int]]:
        """The machine's persistent sorted ``(share, block_id)`` index.

        Kept exact across mutations by delta updates; shares stored are
        bit-identical to :meth:`share` of each resident block.  Returns
        the internal list — read-only for callers.
        """
        self.topology.check_machine(machine)
        return self._share_index[machine]

    def machine_epoch(self, machine: int) -> int:
        """Change epoch of ``machine`` (see module docstring).

        Monotonically increasing; unchanged iff no mutation since the
        last reading could alter the outcome of a local-search probe
        with ``machine`` as an endpoint.
        """
        return self._machine_epoch[machine]

    def has_replica(self, block_id: int, machine: int) -> bool:
        """Whether ``machine`` holds a replica of ``block_id``."""
        return machine in self._machines_for(block_id)

    def replica_count(self, block_id: int) -> int:
        """Current number of replicas of ``block_id``."""
        return len(self._machines_for(block_id))

    def rack_spread(self, block_id: int) -> int:
        """Number of distinct racks holding a replica of ``block_id``."""
        return len(self._rack_holders_for(block_id))

    def share(self, block_id: int) -> float:
        """Per-replica popularity ``P_i / count`` with the current count.

        Zero when the block currently has no replicas.
        """
        count = self.replica_count(block_id)
        if count == 0:
            return 0.0
        return self.problem.block(block_id).popularity / count

    def used_capacity(self, machine: int) -> int:
        """Number of replicas currently stored on ``machine``."""
        self.topology.check_machine(machine)
        return len(self._blocks_on[machine])

    def free_capacity(self, machine: int) -> int:
        """Remaining block slots on ``machine``."""
        return self.topology.capacity_of(machine) - self.used_capacity(machine)

    def is_full(self, machine: int) -> bool:
        """Whether ``machine`` has no free block slots."""
        return self.free_capacity(machine) <= 0

    # -- load queries ----------------------------------------------------------

    def load(self, machine: int) -> float:
        """Popularity-weighted load ``L_m`` of ``machine``."""
        self.topology.check_machine(machine)
        return float(self._loads[machine])

    def loads(self) -> np.ndarray:
        """Copy of the per-machine load vector."""
        return self._loads.copy()

    def cost(self) -> float:
        """Objective value ``lambda = max_m L_m`` (O(log M) amortized)."""
        return -self._valid_top(self._max_heap)[0]

    def min_load(self) -> float:
        """Smallest machine load in the cluster."""
        return self._valid_top(self._min_heap)[0]

    def argmax_machine(self) -> int:
        """The machine with the highest load (lowest id on ties)."""
        return self._valid_top(self._max_heap)[1]

    def argmin_machine(self) -> int:
        """The machine with the lowest load (lowest id on ties)."""
        return self._valid_top(self._min_heap)[1]

    def rack_load(self, rack: int) -> float:
        """Total load of the machines in ``rack``."""
        return float(self._rack_loads[rack])

    def rack_loads(self) -> np.ndarray:
        """Copy of the per-rack total load vector."""
        return self._rack_loads.copy()

    def argmax_machine_in_rack(self, rack: int) -> int:
        """The highest-loaded machine within ``rack`` (lowest id on ties)."""
        self.topology.machines_in_rack(rack)  # validates the rack id
        return self._valid_top(self._rack_max_heaps[rack])[1]

    def argmin_machine_in_rack(self, rack: int) -> int:
        """The lowest-loaded machine within ``rack`` (lowest id on ties)."""
        self.topology.machines_in_rack(rack)  # validates the rack id
        return self._valid_top(self._rack_min_heaps[rack])[1]

    # -- feasibility predicates --------------------------------------------------

    def can_add(self, block_id: int, machine: int) -> bool:
        """Whether a new replica of ``block_id`` fits on ``machine``.

        True iff the machine has a free slot and does not already hold the
        block (node-level fault tolerance: ``x_im`` is binary).
        """
        self.topology.check_machine(machine)
        if self.has_replica(block_id, machine):
            return False
        return not self.is_full(machine)

    def can_remove(self, block_id: int, machine: int, enforce_min: bool = True) -> bool:
        """Whether a replica may be deleted from ``machine``.

        With ``enforce_min`` the deletion must keep the block at or above
        its node-level replication factor and rack spread requirement.
        """
        if not self.has_replica(block_id, machine):
            return False
        if not enforce_min:
            return True
        spec = self.problem.block(block_id)
        if self.replica_count(block_id) - 1 < spec.replication_factor:
            return False
        return self._spread_after_remove(block_id, machine) >= spec.rack_spread

    def can_move(self, block_id: int, src: int, dst: int) -> bool:
        """Whether ``Move(src, block, dst)`` is feasible.

        Feasible iff ``src`` holds the block, ``dst`` does not, ``dst`` has
        a free slot, and the block's rack spread stays at or above
        ``rho_i`` after the move.
        """
        if src == dst:
            return False
        if not self.has_replica(block_id, src):
            return False
        if not self.can_add(block_id, dst):
            return False
        return self.move_keeps_spread(block_id, src, dst)

    def can_swap(self, block_i: int, machine_m: int, block_j: int, machine_n: int) -> bool:
        """Whether ``Swap(m, i, n, j)`` is feasible.

        Swapping exchanges one replica of ``block_i`` on ``machine_m`` with
        one replica of ``block_j`` on ``machine_n``; capacities are
        unaffected, but both blocks must remain single-copy per machine and
        keep their rack spreads.
        """
        if machine_m == machine_n or block_i == block_j:
            return False
        if not self.has_replica(block_i, machine_m):
            return False
        if not self.has_replica(block_j, machine_n):
            return False
        if self.has_replica(block_i, machine_n) or self.has_replica(block_j, machine_m):
            return False
        if not self.move_keeps_spread(block_i, machine_m, machine_n):
            return False
        return self.move_keeps_spread(block_j, machine_n, machine_m)

    def move_keeps_spread(self, block_id: int, src: int, dst: int) -> bool:
        """Whether relocating one replica ``src -> dst`` keeps ``rho_i``.

        This is exactly the rack clause of :meth:`can_move` /
        :meth:`can_swap`.  The local search calls it directly for
        candidates whose membership preconditions already hold by
        construction (the block is on ``src`` and absent from ``dst``),
        skipping the redundant replica lookups.
        """
        rack_of = self.topology.rack_of
        src_rack = rack_of[src]
        dst_rack = rack_of[dst]
        holders = self._rack_holders_for(block_id)
        spread = len(holders)
        if src_rack != dst_rack:
            if holders.get(src_rack, 0) == 1:
                spread -= 1
            if dst_rack not in holders:
                spread += 1
        return spread >= self.problem.block(block_id).rack_spread

    # -- mutations ---------------------------------------------------------------

    def add_replica(self, block_id: int, machine: int) -> None:
        """Create a replica of ``block_id`` on ``machine``.

        Adding a replica dilutes the block's per-replica popularity from
        ``P/c`` to ``P/(c+1)``, so the load of every existing holder drops.
        """
        if not self.can_add(block_id, machine):
            if self.has_replica(block_id, machine):
                raise ReplicaConstraintError(
                    f"machine {machine} already holds block {block_id}"
                )
            raise CapacityExceededError(f"machine {machine} is full")
        machines = self._machines_for(block_id)
        popularity = self.problem.block(block_id).popularity
        old_count = len(machines)
        new_share = popularity / (old_count + 1)
        if old_count:
            old_share = popularity / old_count
            dilution = old_share - new_share
            for holder in machines:
                self._shift_load(holder, -dilution)
            self._reshare_block(block_id, machines, old_share, new_share)
        machines.add(machine)
        self._blocks_on[machine].add(block_id)
        self._shift_load(machine, new_share)
        self._index_insert(machine, new_share, block_id)
        rack = self.topology.rack_of[machine]
        holders = self._rack_holders_for(block_id)
        holders[rack] = holders.get(rack, 0) + 1
        self._bump_epochs(machines)
        self._tick()

    def remove_replica(
        self, block_id: int, machine: int, enforce_min: bool = True
    ) -> None:
        """Delete the replica of ``block_id`` stored on ``machine``.

        Removal concentrates the block's popularity on the survivors.  Set
        ``enforce_min=False`` to bypass the replication-factor and
        rack-spread checks (used when simulating failures and lazy
        deletion).
        """
        if not self.can_remove(block_id, machine, enforce_min=enforce_min):
            if not self.has_replica(block_id, machine):
                raise ReplicaConstraintError(
                    f"machine {machine} does not hold block {block_id}"
                )
            raise ReplicaConstraintError(
                f"removing block {block_id} from machine {machine} would "
                "violate its replication or rack-spread requirement"
            )
        machines = self._machines_for(block_id)
        popularity = self.problem.block(block_id).popularity
        old_count = len(machines)
        old_share = popularity / old_count
        machines.discard(machine)
        self._blocks_on[machine].discard(block_id)
        self._shift_load(machine, -old_share)
        self._index_discard(machine, old_share, block_id)
        new_count = old_count - 1
        if new_count:
            new_share = popularity / new_count
            concentration = new_share - old_share
            for holder in machines:
                self._shift_load(holder, concentration)
            self._reshare_block(block_id, machines, old_share, new_share)
        rack = self.topology.rack_of[machine]
        holders = self._rack_holders_for(block_id)
        holders[rack] -= 1
        if holders[rack] == 0:
            del holders[rack]
        self._bump_epochs(machines)
        self._machine_epoch[machine] += 1
        self._tick()

    def move(self, block_id: int, src: int, dst: int) -> None:
        """Apply ``Move(src, block, dst)``: relocate one replica.

        The replica count is unchanged, so only the two machines' loads
        shift by the block's share.
        """
        if not self.can_move(block_id, src, dst):
            raise InfeasibleOperationError(
                f"Move(block={block_id}, src={src}, dst={dst}) is infeasible"
            )
        share = self.share(block_id)
        machines = self._machines_for(block_id)
        machines.discard(src)
        machines.add(dst)
        self._blocks_on[src].discard(block_id)
        self._blocks_on[dst].add(block_id)
        self._shift_load(src, -share)
        self._shift_load(dst, share)
        self._index_discard(src, share, block_id)
        self._index_insert(dst, share, block_id)
        self._transfer_rack_holder(block_id, src, dst)
        # A move can change the block's rack spread, which affects
        # feasibility of probes on *every* holder — bump them all.
        self._bump_epochs(machines)
        self._machine_epoch[src] += 1
        self._tick()

    def swap(self, block_i: int, machine_m: int, block_j: int, machine_n: int) -> None:
        """Apply ``Swap(m, i, n, j)``: exchange two replicas across machines."""
        if not self.can_swap(block_i, machine_m, block_j, machine_n):
            raise InfeasibleOperationError(
                f"Swap(m={machine_m}, i={block_i}, n={machine_n}, j={block_j}) "
                "is infeasible"
            )
        share_i = self.share(block_i)
        share_j = self.share(block_j)
        holders_i = self._machines_for(block_i)
        holders_j = self._machines_for(block_j)
        holders_i.discard(machine_m)
        holders_i.add(machine_n)
        holders_j.discard(machine_n)
        holders_j.add(machine_m)
        self._blocks_on[machine_m].discard(block_i)
        self._blocks_on[machine_m].add(block_j)
        self._blocks_on[machine_n].discard(block_j)
        self._blocks_on[machine_n].add(block_i)
        self._shift_load(machine_m, share_j - share_i)
        self._shift_load(machine_n, share_i - share_j)
        self._index_discard(machine_m, share_i, block_i)
        self._index_insert(machine_m, share_j, block_j)
        self._index_discard(machine_n, share_j, block_j)
        self._index_insert(machine_n, share_i, block_i)
        self._transfer_rack_holder(block_i, machine_m, machine_n)
        self._transfer_rack_holder(block_j, machine_n, machine_m)
        self._bump_epochs(holders_i)
        self._bump_epochs(holders_j)
        self._tick()

    # -- bulk helpers -------------------------------------------------------------

    def copy(self) -> "PlacementState":
        """Deep copy of the state (shares the immutable problem).

        Subclass-preserving: copying a columnar state yields a columnar
        state.
        """
        clone = type(self)(self.problem)
        for block_id, machines in self._machines_of.items():
            clone._machines_of[block_id] = set(machines)
        clone._blocks_on = [set(blocks) for blocks in self._blocks_on]
        clone._loads = self._loads.copy()
        clone._rack_loads = self._rack_loads.copy()
        clone._rack_holders = {
            block_id: dict(holders)
            for block_id, holders in self._rack_holders.items()
        }
        clone._share_index = [list(index) for index in self._share_index]
        clone._init_load_heaps()
        return clone

    def to_assignment(self) -> Dict[int, FrozenSet[int]]:
        """Snapshot mapping each block id to its holder set."""
        return {
            block_id: frozenset(machines)
            for block_id, machines in self._machines_of.items()
        }

    @classmethod
    def from_assignment(
        cls, problem: PlacementProblem, assignment: Mapping[int, Iterable[int]]
    ) -> "PlacementState":
        """Rebuild a state from a block-to-machines mapping.

        Built in bulk: holder sets, rack counters, loads and share
        indices are constructed directly at their final values (loads
        via the same final-share accumulation :meth:`recompute` uses)
        instead of replaying one :meth:`add_replica` per replica, which
        re-dilutes every prior holder and re-sorts share indices on each
        add.  Validation matches the incremental path: unknown blocks,
        duplicate holders and capacity overruns raise the same errors.
        """
        state = cls(problem)
        topo = problem.topology
        rack_of = topo.rack_of
        blocks_on = state._blocks_on
        for block_id, machines in assignment.items():
            holders = state._machines_for(block_id)
            rack_holders = state._rack_holders[block_id]
            for machine in machines:
                topo.check_machine(machine)
                if machine in holders:
                    raise ReplicaConstraintError(
                        f"machine {machine} already holds block {block_id}"
                    )
                if len(blocks_on[machine]) >= topo.capacity_of(machine):
                    raise CapacityExceededError(f"machine {machine} is full")
                holders.add(machine)
                blocks_on[machine].add(block_id)
                rack = rack_of[machine]
                rack_holders[rack] = rack_holders.get(rack, 0) + 1
        loads = state._loads
        rack_loads = state._rack_loads
        share_index = state._share_index
        for block_id, holders in state._machines_of.items():
            if not holders:
                continue
            share = problem.block(block_id).popularity / len(holders)
            for machine in holders:
                loads[machine] += share
                rack_loads[rack_of[machine]] += share
                share_index[machine].append((share, block_id))
        for index in share_index:
            index.sort()
        state._init_load_heaps()
        return state

    def recompute(self) -> None:
        """Rebuild loads from scratch, clearing floating-point drift.

        Load values can shift by a few ulps, so all extreme heaps are
        rebuilt and every machine epoch is bumped (invalidating any
        exhausted-pair memo held by a search engine).
        """
        self._loads[:] = 0.0
        self._rack_loads[:] = 0.0
        rack_of = self.topology.rack_of
        for block_id, machines in self._machines_of.items():
            if not machines:
                continue
            share = self.problem.block(block_id).popularity / len(machines)
            for machine in machines:
                self._loads[machine] += share
                self._rack_loads[rack_of[machine]] += share
        for machine in self.topology.machines:
            self._load_stamp[machine] += 1
            self._machine_epoch[machine] += 1
        self._init_load_heaps()

    def is_fully_replicated(self) -> bool:
        """Whether every block meets its node and rack requirements."""
        for spec in self.problem:
            if self.replica_count(spec.block_id) < spec.replication_factor:
                return False
            if self.rack_spread(spec.block_id) < spec.rack_spread:
                return False
        return True

    def under_replicated_blocks(self) -> List[int]:
        """Blocks with fewer replicas than their replication factor."""
        return [
            spec.block_id
            for spec in self.problem
            if self.replica_count(spec.block_id) < spec.replication_factor
        ]

    def audit(self) -> None:
        """Verify every structural invariant; raise ``AssertionError`` on drift.

        Checks the forward and reverse replica indexes agree, capacities
        are respected, rack holder counters are exact, and incremental
        loads match a from-scratch recomputation.
        """
        for block_id, machines in self._machines_of.items():
            for machine in machines:
                assert block_id in self._blocks_on[machine], (
                    f"index mismatch: block {block_id} missing on machine {machine}"
                )
        for machine, blocks in enumerate(self._blocks_on):
            assert len(blocks) <= self.topology.capacity_of(machine), (
                f"machine {machine} over capacity"
            )
            for block_id in blocks:
                assert machine in self._machines_of[block_id], (
                    f"reverse index mismatch: machine {machine}, block {block_id}"
                )
        for block_id, machines in self._machines_of.items():
            expected: Dict[int, int] = {}
            for machine in machines:
                rack = self.topology.rack_of[machine]
                expected[rack] = expected.get(rack, 0) + 1
            assert expected == self._rack_holders[block_id], (
                f"rack holder drift for block {block_id}"
            )
        for machine in self.topology.machines:
            expected_index = sorted(
                (self.share(block_id), block_id)
                for block_id in self._blocks_on[machine]
            )
            assert expected_index == self._share_index[machine], (
                f"share index drift on machine {machine}"
            )
        assert self.argmax_machine() == int(self._loads.argmax()), (
            "max-heap extreme drift"
        )
        assert self.argmin_machine() == int(self._loads.argmin()), (
            "min-heap extreme drift"
        )
        for rack in self.topology.racks:
            members = self.topology.machines_in_rack(rack)
            assert self.argmax_machine_in_rack(rack) == max(
                members, key=lambda m: self._loads[m]
            ), f"rack {rack} max-heap extreme drift"
            assert self.argmin_machine_in_rack(rack) == min(
                members, key=lambda m: self._loads[m]
            ), f"rack {rack} min-heap extreme drift"
        snapshot = self._loads.copy()
        rack_snapshot = self._rack_loads.copy()
        self.recompute()
        assert np.allclose(snapshot, self._loads, atol=1e-6), "machine load drift"
        assert np.allclose(rack_snapshot, self._rack_loads, atol=1e-6), (
            "rack load drift"
        )

    # -- memory accounting ---------------------------------------------------------

    def state_bytes(self) -> int:
        """Approximate resident bytes of the placement state's structures.

        Sums ``sys.getsizeof`` of every container (hash tables and list
        backing stores) plus a flat per-entry estimate for the tuple
        objects the share indices and heaps point at.  It is an
        *estimate* — small-int interning and allocator slack are not
        modeled — but it is deterministic and consistent across the
        dict/heap and columnar engines, which is what the
        ``repro_core_state_bytes`` gauge and the scale study need to
        compare footprints.
        """
        import sys

        getsizeof = sys.getsizeof
        total = getsizeof(self._loads) + getsizeof(self._rack_loads)
        total += getsizeof(self._machines_of) + sum(
            getsizeof(s) for s in self._machines_of.values()
        )
        total += sum(getsizeof(s) for s in self._blocks_on)
        total += getsizeof(self._rack_holders) + sum(
            getsizeof(d) for d in self._rack_holders.values()
        )
        # Share indices: list backing store + one (float, int) tuple
        # object (~72 bytes) per entry.
        total += sum(
            getsizeof(ix) + 72 * len(ix) for ix in self._share_index
        )
        total += 8 * (len(self._machine_epoch) + len(self._load_stamp))
        return total + self._index_state_bytes()

    def _index_state_bytes(self) -> int:
        """Bytes held by the engine-specific search indices (the heaps)."""
        import sys

        getsizeof = sys.getsizeof
        total = getsizeof(self._max_heap) + getsizeof(self._min_heap)
        total += 80 * (len(self._max_heap) + len(self._min_heap))
        for heaps in (self._rack_max_heaps, self._rack_min_heaps):
            for heap in heaps:
                total += getsizeof(heap) + 80 * len(heap)
        return total

    # -- internals -----------------------------------------------------------------

    def _machines_for(self, block_id: int) -> Set[int]:
        try:
            return self._machines_of[block_id]
        except KeyError:
            raise UnknownBlockError(f"unknown block id {block_id}") from None

    def _rack_holders_for(self, block_id: int) -> Dict[int, int]:
        try:
            return self._rack_holders[block_id]
        except KeyError:
            raise UnknownBlockError(f"unknown block id {block_id}") from None

    def _shift_load(self, machine: int, delta: float) -> None:
        self._loads[machine] += delta
        rack = self.topology.rack_of[machine]
        self._rack_loads[rack] += delta
        stamp = self._load_stamp[machine] + 1
        self._load_stamp[machine] = stamp
        load = float(self._loads[machine])
        heapq.heappush(self._max_heap, (-load, machine, stamp))
        heapq.heappush(self._min_heap, (load, machine, stamp))
        heapq.heappush(self._rack_max_heaps[rack], (-load, machine, stamp))
        heapq.heappush(self._rack_min_heaps[rack], (load, machine, stamp))
        if len(self._max_heap) > self._heap_compact_at:
            self._init_load_heaps()

    def _valid_top(self, heap: List[Tuple[float, int, int]]) -> Tuple[float, int]:
        """Pop stale entries off ``heap``; return its valid (key, machine) top."""
        stamps = self._load_stamp
        while True:
            key, machine, stamp = heap[0]
            if stamps[machine] == stamp:
                return key, machine
            heapq.heappop(heap)

    def _bump_epochs(self, machines: Iterable[int]) -> None:
        epochs = self._machine_epoch
        for machine in machines:
            epochs[machine] += 1

    def _index_insert(self, machine: int, share: float, block_id: int) -> None:
        insort(self._share_index[machine], (share, block_id))

    def _index_discard(self, machine: int, share: float, block_id: int) -> None:
        index = self._share_index[machine]
        entry = (share, block_id)
        i = bisect_left(index, entry)
        if i < len(index) and index[i] == entry:
            del index[i]
        else:  # exact-share invariant violated; fail loudly via ValueError
            index.remove(entry)

    def _reshare_block(
        self, block_id: int, holders: Iterable[int], old_share: float, new_share: float
    ) -> None:
        """Replace ``block_id``'s index entry on every holder."""
        for holder in holders:
            self._index_discard(holder, old_share, block_id)
            self._index_insert(holder, new_share, block_id)

    def _transfer_rack_holder(self, block_id: int, src: int, dst: int) -> None:
        src_rack = self.topology.rack_of[src]
        dst_rack = self.topology.rack_of[dst]
        if src_rack == dst_rack:
            return
        holders = self._rack_holders_for(block_id)
        holders[src_rack] -= 1
        if holders[src_rack] == 0:
            del holders[src_rack]
        holders[dst_rack] = holders.get(dst_rack, 0) + 1

    def _spread_after_remove(self, block_id: int, machine: int) -> int:
        holders = self._rack_holders_for(block_id)
        rack = self.topology.rack_of[machine]
        spread = len(holders)
        if holders.get(rack, 0) == 1:
            spread -= 1
        return spread

    def _spread_after_move(self, block_id: int, src: int, dst: int) -> int:
        holders = self._rack_holders_for(block_id)
        src_rack = self.topology.rack_of[src]
        dst_rack = self.topology.rack_of[dst]
        if src_rack == dst_rack:
            return len(holders)
        spread = len(holders)
        if holders.get(src_rack, 0) == 1:
            spread -= 1
        if holders.get(dst_rack, 0) == 0:
            spread += 1
        return spread

    def _tick(self) -> None:
        self._mutations += 1
        if self._mutations % _RECOMPUTE_INTERVAL == 0:
            self.recompute()
