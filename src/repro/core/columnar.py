"""Columnar, array-backed placement state for large clusters.

:class:`ColumnarPlacementState` is a drop-in subclass of
:class:`~repro.core.placement.PlacementState` that replaces the lazy
extreme *heaps* with dense numpy columns, so the per-iteration queries
of Algorithms 1/2 become vectorized array reductions:

* the global extremes (:meth:`cost`, :meth:`argmax_machine`, ...) are
  ``O(M)`` C-speed reductions over the load vector instead of Python
  heap maintenance — every load shift in the heap engine pushes four
  tuples and every query pops stale entries, which dominates the
  mutation path at 10k machines;
* the per-rack extremes of Algorithm 2 are answered **for all racks at
  once** by :meth:`rack_extremes`: dense per-rack arrays maintained
  incrementally — a mutation marks its racks dirty and only dirty
  segments are rescanned on the next query.  The rack-pair ranking in
  :mod:`repro.core.local_search` consumes these arrays directly,
  turning the naive ``O(R^2)`` Python tuple sort per iteration into one
  flat ``argsort``;
* machine change epochs live in an ``(M,)`` int column instead of a
  Python list, so the search engine's exhausted-pair memo can compare
  whole epoch vectors at once (see ``_IntraRackMemo``);
* block popularity lives in one dense ``(B,)`` float column and the
  per-block rack-spread requirement in a ``(B,)`` int column (when the
  instance uses dense block ids, which every generator in this repo
  does), so :meth:`share` is two array loads instead of a dict walk.

What stays exactly as in the parent class — deliberately:

* the **mutation arithmetic** (`_shift_load` deltas, share dilution and
  concentration) is inherited unchanged, so every load value is
  *bit-identical* to the dict/heap engine's;
* the per-machine persistent sorted ``(share, block_id)`` indices: the
  candidate walk of the incremental engine depends on their exact
  order, and they already are the columnar representation of the
  per-(machine, block) share relation (sorted runs, delta-updated);
* holder sets stay sparse (a block has ~3 replicas; a dense ``M x B``
  incidence matrix would be ~30 GB at 10k machines / 1M blocks).

Tie-breaking is preserved: ``np.argmax``/``np.argmin`` return the first
index among equals, which is the lowest machine id — the same convention
the heaps implement and the reference solver's scans rely on.  The
columnar engine therefore produces operation sequences identical to the
incremental engine's (pinned by ``tests/core/test_columnar.py``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.instance import PlacementProblem
from repro.core.placement import PlacementState

__all__ = ["ColumnarPlacementState", "columnar_from_state", "make_columnar"]


class ColumnarPlacementState(PlacementState):
    """Array-backed :class:`PlacementState` with vectorized extremes."""

    def _init_load_heaps(self) -> None:
        """Build the static rack-segment arrays instead of extreme heaps.

        Called by ``__init__`` and again by :meth:`recompute`; the
        segment arrays depend only on the immutable topology, so they
        are built once and kept.
        """
        if hasattr(self, "_rack_members"):
            # Loads may have been rebuilt or bulk-loaded under us
            # (``recompute``, ``from_assignment``, ``copy``) — every
            # cached rack extreme is suspect.
            self._ext_dirty.update(self.problem.topology.racks)
            return
        topo = self.problem.topology
        members: List[np.ndarray] = [
            np.asarray(topo.machines_in_rack(rack), dtype=np.intp)
            for rack in topo.racks
        ]
        self._rack_members = members
        # Machine epochs as an array so search engines can compare whole
        # epoch vectors at once (the parent keeps a Python list).
        self._machine_epoch = np.asarray(self._machine_epoch, dtype=np.int64)
        # Incrementally-maintained per-rack extremes: only racks whose
        # loads changed since the last refresh are recomputed.
        num_racks = topo.num_racks
        self._ext_high = np.zeros(num_racks, dtype=np.int64)
        self._ext_low = np.zeros(num_racks, dtype=np.int64)
        self._ext_hot = np.zeros(num_racks, dtype=np.float64)
        self._ext_cold = np.zeros(num_racks, dtype=np.float64)
        self._ext_dirty = set(topo.racks)
        self._init_block_columns()

    def _init_block_columns(self) -> None:
        """Dense per-block popularity/requirement columns.

        Only materialized when block ids are dense ``0..B-1`` (true for
        every instance builder in the repo); otherwise :meth:`share`
        falls back to the parent's spec lookup.
        """
        problem = self.problem
        num = problem.num_blocks
        dense = all(spec.block_id == i for i, spec in enumerate(problem))
        self._dense_blocks = dense
        if not dense:
            self._pop_col = None
            return
        self._pop_col = np.fromiter(
            (spec.popularity for spec in problem), dtype=np.float64, count=num
        )
        self._rho_col = np.fromiter(
            (spec.rack_spread for spec in problem), dtype=np.int64, count=num
        )

    # -- vectorized scalar queries -------------------------------------------

    def _shift_load(self, machine: int, delta: float) -> None:
        rack = self.topology.rack_of[machine]
        self._loads[machine] += delta
        self._rack_loads[rack] += delta
        self._ext_dirty.add(rack)

    def _refresh_extremes(self) -> None:
        """Recompute the cached extremes of every dirty rack.

        A mutation touches at most a handful of machines, so steady-state
        refreshes scan a couple of 16-machine segments instead of the
        whole cluster.  ``argmax``/``argmin`` keep the first-index
        (lowest machine id) tie-break.
        """
        dirty = self._ext_dirty
        if not dirty:
            return
        loads = self._loads
        members_by_rack = self._rack_members
        for rack in dirty:
            members = members_by_rack[rack]
            segment = loads[members]
            hi = int(segment.argmax())
            lo = int(segment.argmin())
            self._ext_high[rack] = members[hi]
            self._ext_low[rack] = members[lo]
            self._ext_hot[rack] = segment[hi]
            self._ext_cold[rack] = segment[lo]
        dirty.clear()

    def cost(self) -> float:
        """Objective ``lambda = max_m L_m`` — one vectorized reduction."""
        return float(self._loads.max())

    def min_load(self) -> float:
        """Smallest machine load in the cluster."""
        return float(self._loads.min())

    def argmax_machine(self) -> int:
        """Highest-loaded machine (lowest id on ties, like the heaps)."""
        return int(self._loads.argmax())

    def argmin_machine(self) -> int:
        """Lowest-loaded machine (lowest id on ties)."""
        return int(self._loads.argmin())

    def argmax_machine_in_rack(self, rack: int) -> int:
        """Hottest machine of ``rack`` via a vectorized segment argmax."""
        self.topology.machines_in_rack(rack)  # validates the rack id
        members = self._rack_members[rack]
        return int(members[self._loads[members].argmax()])

    def argmin_machine_in_rack(self, rack: int) -> int:
        """Coldest machine of ``rack`` via a vectorized segment argmin."""
        self.topology.machines_in_rack(rack)  # validates the rack id
        members = self._rack_members[rack]
        return int(members[self._loads[members].argmin()])

    def share(self, block_id: int) -> float:
        count = len(self._machines_for(block_id))
        if count == 0:
            return 0.0
        if self._pop_col is not None:
            return float(self._pop_col[block_id]) / count
        return self.problem.block(block_id).popularity / count

    # -- vectorized bulk queries ---------------------------------------------

    def rack_extreme_loads(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-rack ``(hottest, coldest)`` load arrays, all racks at once.

        Served from the incrementally-maintained extreme cache (dirty
        racks refreshed first).  The values are bit-identical to
        ``load(argmax_machine_in_rack(r))`` — a max over the same floats
        — so consumers ranking racks by these arrays stay in lock step
        with per-rack queries.  Returns internal arrays: read-only, and
        stale after the next mutation.
        """
        self._refresh_extremes()
        return self._ext_hot, self._ext_cold

    def rack_extremes(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(high_machine, low_machine, hottest, coldest)`` per rack.

        The machine columns carry the *first* machine (lowest id)
        achieving each rack's extreme, matching the per-rack query
        tie-break.  Served from the dirty-rack cache — steady-state cost
        is proportional to the racks the last operation touched, not the
        cluster.  Returns internal arrays: read-only, and stale after
        the next mutation.
        """
        self._refresh_extremes()
        return self._ext_high, self._ext_low, self._ext_hot, self._ext_cold

    # -- memory accounting ----------------------------------------------------

    def _index_state_bytes(self) -> int:
        total = (
            self._ext_high.nbytes
            + self._ext_low.nbytes
            + self._ext_hot.nbytes
            + self._ext_cold.nbytes
            + self._machine_epoch.nbytes
            + sum(m.nbytes for m in self._rack_members)
        )
        if self._pop_col is not None:
            total += self._pop_col.nbytes + self._rho_col.nbytes
        return total


def columnar_from_state(state: PlacementState) -> ColumnarPlacementState:
    """Columnar copy of a placement state, bit-exact loads included.

    Clones the internal structures directly (like
    :meth:`PlacementState.copy`) instead of replaying the assignment:
    incrementally-accumulated load floats can differ by ulps from a
    bulk rebuild, and the differential suite compares the two engines
    from byte-identical starting points.
    """
    clone = ColumnarPlacementState(state.problem)
    for block_id, machines in state._machines_of.items():
        clone._machines_of[block_id] = set(machines)
    clone._blocks_on = [set(blocks) for blocks in state._blocks_on]
    clone._loads = state._loads.copy()
    clone._rack_loads = state._rack_loads.copy()
    clone._rack_holders = {
        block_id: dict(holders)
        for block_id, holders in state._rack_holders.items()
    }
    clone._share_index = [list(index) for index in state._share_index]
    clone._mutations = state._mutations
    return clone


def make_columnar(problem: PlacementProblem) -> ColumnarPlacementState:
    """Empty columnar state for ``problem`` (convenience constructor)."""
    return ColumnarPlacementState(problem)
