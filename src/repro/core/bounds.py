"""Lower bounds on the optimal objective of the placement problems.

Useful for certifying approximation quality without solving the NP-hard
problem exactly:

* the **average bound**: the total popularity mass ``sum_i P_i`` is
  invariant under replication and placement, so
  ``OPT >= sum_i P_i / |M|`` (used in the proof of Theorem 6);
* the **share bound**: the most popular per-replica share must sit on
  some machine, so ``OPT >= max_i P_i / k_i`` (used in Corollaries 3
  and 5); for BP-Replicate the share is evaluated at the largest
  admissible factor;
* the **LP bound**: the fractional relaxation of BP-Node, solved in
  closed form (it equals the average bound whenever capacities allow,
  and otherwise a small LP, solved with scipy).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.instance import PlacementProblem, ProblemVariant
from repro.core.placement import PlacementState

__all__ = [
    "average_load_bound",
    "max_share_bound",
    "combined_lower_bound",
    "empirical_ratio",
]


def average_load_bound(problem: PlacementProblem) -> float:
    """``sum_i P_i / |M|`` — no placement can beat the perfect spread."""
    return problem.total_popularity() / problem.topology.num_machines


def max_share_bound(problem: PlacementProblem) -> float:
    """``max_i p_i`` with the instance's replication factors.

    For BP-Replicate the bound uses the most optimistic factor each block
    could receive: the full budget headroom on top of its minimum, capped
    at the machine count.
    """
    if problem.num_blocks == 0:
        return 0.0
    if problem.variant() is not ProblemVariant.BP_REPLICATE:
        return problem.max_per_replica_popularity()
    budget = problem.replication_budget
    assert budget is not None
    headroom = budget - problem.minimum_total_replicas()
    machines = problem.topology.num_machines
    best = 0.0
    for spec in problem:
        k_best = min(machines, spec.replication_factor + headroom)
        best = max(best, spec.popularity / k_best)
    return best


def combined_lower_bound(problem: PlacementProblem) -> float:
    """The tighter of the average and share bounds."""
    return max(average_load_bound(problem), max_share_bound(problem))


def empirical_ratio(
    state: PlacementState, optimum: Optional[float] = None
) -> float:
    """Achieved cost over (known or bounded) optimum.

    If ``optimum`` is not supplied, the combined lower bound is used, so
    the returned ratio is an upper bound on the true approximation ratio.
    Returns ``nan`` for the degenerate zero-popularity instance.
    """
    denominator = optimum if optimum is not None else combined_lower_bound(
        state.problem
    )
    if denominator <= 0:
        return float("nan")
    return state.cost() / denominator
