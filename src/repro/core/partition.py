"""Rack-partitioned parallel solver for Algorithm 2 at cluster scale.

One global rack-aware search is inherently sequential: every iteration
reads the authoritative loads its predecessor just changed.  At 10k
machines the run is long, yet most of its operations are *local* — they
move load between machines of nearby racks and would commute with
operations elsewhere in the cluster.  This module exploits that:

1. **Partition** the racks into disjoint groups of roughly equal machine
   count (:func:`plan_partitions`, deterministic LPT assignment).
2. **Extract** one self-contained sub-problem per group
   (:func:`extract_subproblem`): the group's machines become a local
   topology, and every block with at least one in-group replica becomes
   a local block whose replication factor equals its in-group replica
   count — moves and swaps preserve replica counts, so the sub-solver
   can never change it.  Per-block constraints and popularity are
   translated so that solving the sub-problem cannot break the global
   problem (see the function docstring for the exact mapping and its
   one documented ulp-level approximation).
3. **Solve** the sub-problems concurrently on a process pool (the same
   fork-context pool the experiment runner uses), each with the
   columnar engine, recording the operation log.
4. **Merge**: replay every partition's operations — mapped back to
   global ids — against the authoritative global state, in deterministic
   partition order, re-validating each through
   :meth:`~repro.core.placement.PlacementState.can_move` /
   :meth:`~repro.core.placement.PlacementState.can_swap` plus a strict
   improvement check.  Replicas of one block may live in several
   groups, so two sub-solvers can each plan around the other's replicas;
   the conflict check is what makes the merge sound regardless.
5. **Polish**: one sequential rack-aware run on the merged global state
   drives the cluster to a true Algorithm 2 local optimum, fixing any
   residual cross-partition imbalance.  The final state therefore
   satisfies exactly the same termination criterion as the unpartitioned
   solver; the *path* (and hence which local optimum is reached) may
   differ, which the scale study quantifies as a relative cost epsilon.

Determinism: partition planning, sub-problem extraction, sub-solves and
the merge order are all deterministic, and each sub-solve is independent
of the others — so ``jobs=1`` and ``jobs=N`` produce byte-identical
results (pinned by ``tests/core/test_partition.py``).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterTopology
from repro.core.admissibility import AdmissibilityPolicy, AlwaysAdmissible
from repro.core.columnar import ColumnarPlacementState
from repro.core.instance import BlockSpec, PlacementProblem
from repro.core.local_search import SearchStats, balance_rack_aware
from repro.core.operations import MoveOp, Operation, SwapOp
from repro.core.placement import PlacementState

__all__ = [
    "PartitionPlan",
    "PartitionedStats",
    "Subproblem",
    "balance_rack_aware_partitioned",
    "extract_subproblem",
    "plan_partitions",
]

_LOG = logging.getLogger(__name__)


def _pool_context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class PartitionPlan:
    """Deterministic assignment of racks to disjoint solver groups."""

    groups: Tuple[Tuple[int, ...], ...]

    @property
    def num_partitions(self) -> int:
        return len(self.groups)


def plan_partitions(
    topology: ClusterTopology, num_partitions: int
) -> PartitionPlan:
    """Split racks into ``num_partitions`` groups of ~equal machine count.

    Longest-processing-time greedy: racks are taken largest first (ties
    by rack id) and each is appended to the currently lightest group
    (ties by group index), which is deterministic and keeps machine
    counts within one rack of balanced for uniform racks.  Groups with
    fewer than two racks cannot host inter-rack operations, so the
    partition count is clamped to ``num_racks // 2`` (and to at least 1).
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    num_partitions = max(1, min(num_partitions, topology.num_racks // 2))
    sizes = [
        (-len(topology.machines_in_rack(rack)), rack)
        for rack in topology.racks
    ]
    sizes.sort()
    machine_counts = [0] * num_partitions
    members: List[List[int]] = [[] for _ in range(num_partitions)]
    for neg_size, rack in sizes:
        target = min(range(num_partitions), key=lambda g: (machine_counts[g], g))
        machine_counts[target] += -neg_size
        members[target].append(rack)
    return PartitionPlan(
        groups=tuple(tuple(sorted(group)) for group in members)
    )


@dataclass(frozen=True)
class Subproblem:
    """One rack group's self-contained slice of the global problem.

    ``machines`` maps local machine id -> global machine id (ascending,
    so local tie-breaks mirror global ones); ``blocks`` maps local block
    id -> global block id.  ``problem``/``assignment`` are expressed
    entirely in local ids and are what the worker process solves.
    """

    racks: Tuple[int, ...]
    machines: Tuple[int, ...]
    blocks: Tuple[int, ...]
    problem: PlacementProblem
    assignment: Dict[int, Tuple[int, ...]]


def extract_subproblem(
    state: PlacementState, racks: Sequence[int]
) -> Subproblem:
    """Project ``state`` onto a rack group as a standalone sub-problem.

    The translation guarantees that any feasible sub-solution maps back
    to in-group placements that keep every *global* constraint intact,
    provided the other groups' replicas stay put (the merge re-validates
    precisely because they may not):

    * ``replication_factor_sub`` = the block's current in-group replica
      count.  Moves and swaps preserve replica counts, so this is an
      invariant of the sub-solve, and the global count (in + out) never
      changes.
    * ``rack_spread_sub = min(max(1, rho - out_spread), in_count)`` where
      ``out_spread`` counts the distinct *out-of-group* racks holding the
      block.  Racks are wholly inside or outside the group, so the global
      spread decomposes as ``in_spread + out_spread``; keeping
      ``in_spread >= rho - out_spread`` keeps the global spread at or
      above ``rho``.  The current assignment already satisfies it
      (``in_spread >= max(1, rho - out_spread)``), so the sub-problem
      starts feasible.
    * ``popularity_sub = share * in_count`` so each sub-replica carries
      the block's current global per-replica share.  Dividing back by
      ``in_count`` can differ from the global share by an ulp — the one
      approximation in the pipeline.  It only steers the sub-solver's
      ranking; the merge replays operations against the authoritative
      state with exact global shares, so no approximate float ever
      enters the final loads.
    """
    topo = state.topology
    rack_set = set(racks)
    machines: List[int] = []
    for rack in sorted(rack_set):
        machines.extend(topo.machines_in_rack(rack))
    machines.sort()
    local_machine = {m: i for i, m in enumerate(machines)}
    rack_ids = sorted(rack_set)
    local_rack = {r: i for i, r in enumerate(rack_ids)}
    sub_topology = ClusterTopology(
        rack_of=tuple(local_rack[topo.rack_of[m]] for m in machines),
        capacities=tuple(topo.capacities[m] for m in machines),
    )
    specs: List[BlockSpec] = []
    block_ids: List[int] = []
    assignment: Dict[int, Tuple[int, ...]] = {}
    for spec in state.problem:
        holders = state.machines_of(spec.block_id)
        in_holders = sorted(
            m for m in holders if topo.rack_of[m] in rack_set
        )
        if not in_holders:
            continue
        in_count = len(in_holders)
        out_spread = sum(
            1
            for rack in state._rack_holders[spec.block_id]
            if rack not in rack_set
        )
        rho_sub = min(max(1, spec.rack_spread - out_spread), in_count)
        local_id = len(specs)
        specs.append(
            BlockSpec(
                block_id=local_id,
                popularity=state.share(spec.block_id) * in_count,
                replication_factor=in_count,
                rack_spread=rho_sub,
            )
        )
        block_ids.append(spec.block_id)
        assignment[local_id] = tuple(local_machine[m] for m in in_holders)
    sub_problem = PlacementProblem(
        topology=sub_topology, blocks=tuple(specs)
    )
    return Subproblem(
        racks=tuple(rack_ids),
        machines=tuple(machines),
        blocks=tuple(block_ids),
        problem=sub_problem,
        assignment=assignment,
    )


def _solve_subproblem(
    payload: Tuple[Subproblem, Optional[AdmissibilityPolicy], Optional[int]]
) -> Tuple[List[Operation], int, float]:
    """Worker: converge one sub-problem, return its (local-id) op log."""
    sub, policy, max_operations = payload
    state = ColumnarPlacementState.from_assignment(
        sub.problem, sub.assignment
    )
    stats = balance_rack_aware(
        state,
        policy=policy,
        max_operations=max_operations,
        log_operations=True,
    )
    return stats.operations, stats.iterations, stats.elapsed_seconds


def _map_operation(op: Operation, sub: Subproblem) -> Operation:
    """Translate a sub-solver operation back to global ids."""
    if isinstance(op, MoveOp):
        return MoveOp(
            block=sub.blocks[op.block],
            src=sub.machines[op.src],
            dst=sub.machines[op.dst],
        )
    return SwapOp(
        block_i=sub.blocks[op.block_i],
        src=sub.machines[op.src],
        block_j=sub.blocks[op.block_j],
        dst=sub.machines[op.dst],
    )


@dataclass
class PartitionedStats:
    """Outcome of one partitioned rack-aware run.

    ``search`` aggregates the whole run in the familiar
    :class:`~repro.core.local_search.SearchStats` shape (costs, applied
    operation counts, convergence of the final polish); the remaining
    fields expose the partition pipeline's internals.
    """

    search: SearchStats
    num_partitions: int = 0
    partition_racks: List[Tuple[int, ...]] = field(default_factory=list)
    partition_operations: List[int] = field(default_factory=list)
    partition_seconds: List[float] = field(default_factory=list)
    merged_operations: int = 0
    merge_conflicts: int = 0
    merge_non_improving: int = 0
    polish_operations: int = 0
    extract_seconds: float = 0.0
    solve_seconds: float = 0.0
    merge_seconds: float = 0.0
    polish_seconds: float = 0.0


def balance_rack_aware_partitioned(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    num_partitions: Optional[int] = None,
    jobs: Optional[int] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> PartitionedStats:
    """Algorithm 2 via rack-partitioned sub-solves plus a global polish.

    Mutates ``state`` in place.  ``num_partitions`` defaults to the
    worker count; ``jobs`` defaults to the machine's CPU count (capped
    at 8).  ``jobs=1`` runs the sub-solves sequentially in-process —
    same results, no pool.  ``max_operations`` caps each phase's applied
    operations: every sub-solve gets the full budget (they explore
    disjoint machines), and the polish gets whatever the merge has not
    used.  The run converges iff the polish converges.
    """
    policy = policy or AlwaysAdmissible()
    if jobs is None:
        jobs = min(8, os.cpu_count() or 1)
    if num_partitions is None:
        num_partitions = max(1, jobs)
    started = time.perf_counter()
    initial_cost = state.cost()
    stats = PartitionedStats(
        search=SearchStats(initial_cost=initial_cost, final_cost=initial_cost)
    )

    plan = plan_partitions(state.topology, num_partitions)
    stats.num_partitions = plan.num_partitions
    stats.partition_racks = list(plan.groups)
    subs = [extract_subproblem(state, group) for group in plan.groups]
    stats.extract_seconds = time.perf_counter() - started

    solve_started = time.perf_counter()
    payloads = [(sub, policy, max_operations) for sub in subs]
    workers = min(jobs, len(subs))
    if workers <= 1 or len(subs) <= 1:
        outcomes = [_solve_subproblem(p) for p in payloads]
    else:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            outcomes = list(pool.map(_solve_subproblem, payloads))
    stats.solve_seconds = time.perf_counter() - solve_started

    merge_started = time.perf_counter()
    search = stats.search
    current_cost = initial_cost
    for sub, (operations, iterations, seconds) in zip(subs, outcomes):
        stats.partition_operations.append(len(operations))
        stats.partition_seconds.append(seconds)
        search.iterations += iterations
        for local_op in operations:
            if (
                max_operations is not None
                and search.total_operations >= max_operations
            ):
                break
            op = _map_operation(local_op, sub)
            if isinstance(op, MoveOp):
                feasible = state.can_move(op.block, op.src, op.dst)
            else:
                feasible = state.can_swap(
                    op.block_i, op.src, op.block_j, op.dst
                )
            if not feasible:
                stats.merge_conflicts += 1
                continue
            if not op.outcome(state).improves:
                stats.merge_non_improving += 1
                continue
            cross = op.is_cross_rack(state)
            op.apply(state)
            current_cost = state.cost()
            search.record(op, cross, log_operations)
            stats.merged_operations += 1
            if log_operations:
                search.cost_trajectory.append(current_cost)
    stats.merge_seconds = time.perf_counter() - merge_started

    polish_started = time.perf_counter()
    remaining = (
        None
        if max_operations is None
        else max(0, max_operations - search.total_operations)
    )
    polish = balance_rack_aware(
        state,
        policy=policy,
        max_operations=remaining,
        log_operations=log_operations,
    )
    stats.polish_seconds = time.perf_counter() - polish_started
    stats.polish_operations = polish.total_operations
    search.iterations += polish.iterations
    search.moves += polish.moves
    search.swaps += polish.swaps
    search.cross_rack_moves += polish.cross_rack_moves
    search.cross_rack_swaps += polish.cross_rack_swaps
    search.blocks_transferred += polish.blocks_transferred
    search.admissibility_rejections += polish.admissibility_rejections
    search.pairs_probed += polish.pairs_probed
    search.pairs_pruned += polish.pairs_pruned
    search.converged = polish.converged
    if log_operations:
        search.operations.extend(polish.operations)
        search.cost_trajectory.extend(polish.cost_trajectory)
    search.final_cost = state.cost()
    search.elapsed_seconds = time.perf_counter() - started
    _LOG.debug(
        "partitioned balance done partitions=%d merged=%d conflicts=%d "
        "polish=%d cost=%.6g->%.6g elapsed=%.4fs",
        stats.num_partitions, stats.merged_operations, stats.merge_conflicts,
        stats.polish_operations, search.initial_cost, search.final_cost,
        search.elapsed_seconds,
    )
    return stats
