"""Reference (naive) implementation of Algorithms 1 and 2.

This module is a frozen transcription of the local search exactly as the
paper states it, with no incremental machinery: machine and rack extremes
are found by scanning the load vector, exclusive-block candidate lists
are rebuilt and re-sorted per machine pair, and the global objective is
recomputed every iteration.  It exists for two reasons:

* **Differential testing** — the incremental engine in
  :mod:`repro.core.local_search` must produce *identical* operation
  sequences (hence identical placements and final costs) to this module
  on every instance; ``tests/core/test_differential.py`` pins that.
* **Benchmarking** — the solver-scale study
  (:func:`repro.experiments.scale.run_solver_scale_study` and
  ``benchmarks/test_search_scale.py``) measures the incremental engine's
  speedup against this baseline.

The only intentional difference from the historical solver is the
inter-rack pair ordering: pairs are ranked by the load gap between the
source rack's hottest machine and the destination rack's coldest machine
(and both directions of each rack pair are probed).  The historical
ranking by *total* rack load let a large rack of lightly-loaded machines
outrank a small rack containing the true hottest machine, leaving that
machine's load stranded; both solvers carry the fix so they stay in lock
step.  See ``docs/performance.md``.

Deliberately NOT exported from :mod:`repro.core` — production callers
should use :func:`repro.core.local_search.balance_node_level` /
:func:`repro.core.local_search.balance_rack_aware`.
"""

from __future__ import annotations

import bisect
import time
from typing import List, Optional, Tuple

from repro.core.admissibility import AdmissibilityPolicy, AlwaysAdmissible
from repro.core.local_search import SearchStats
from repro.core.operations import MoveOp, Operation, SwapOp
from repro.core.placement import PlacementState

__all__ = [
    "reference_balance_node_level",
    "reference_balance_rack_aware",
    "reference_find_operation_between",
]

_TOLERANCE = 1e-12


def _argmax_machine(state: PlacementState) -> int:
    """Highest-loaded machine by direct scan (first index on ties)."""
    return int(state.loads().argmax())


def _argmin_machine(state: PlacementState) -> int:
    """Lowest-loaded machine by direct scan (first index on ties)."""
    return int(state.loads().argmin())


def _argmax_in_rack(state: PlacementState, rack: int) -> int:
    """Hottest machine of ``rack`` by direct scan."""
    members = state.topology.machines_in_rack(rack)
    return max(members, key=state.load)


def _argmin_in_rack(state: PlacementState, rack: int) -> int:
    """Coldest machine of ``rack`` by direct scan."""
    members = state.topology.machines_in_rack(rack)
    return min(members, key=state.load)


def _exclusive_blocks(
    state: PlacementState, machine: int, other: int
) -> List[Tuple[float, int]]:
    """Blocks on ``machine`` but not on ``other``, as sorted (share, id)."""
    other_blocks = state.blocks_on(other)
    pairs = [
        (state.share(block_id), block_id)
        for block_id in state.blocks_on(machine)
        if block_id not in other_blocks
    ]
    pairs.sort()
    return pairs


def _find_swap_partner(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    global_cost: float,
    block_i: int,
    share_i: float,
    src: int,
    dst: int,
    dst_candidates: List[Tuple[float, int]],
    gap: float,
    stats: Optional[SearchStats] = None,
) -> Optional[SwapOp]:
    """Best feasible, admissible swap partner for ``block_i`` on ``dst``.

    A swap transfers net load ``share_i - share_j`` from ``src`` to
    ``dst``; it strictly improves the pair cost iff ``share_j`` lies in
    the open window ``(share_i - gap, share_i)``.  The pair cost after is
    minimized at ``share_j = share_i - gap/2``, so candidates are probed
    outward from that ideal value.
    """
    if not dst_candidates:
        return None
    ideal = share_i - gap / 2.0
    lower = share_i - gap
    center = bisect.bisect_left(dst_candidates, (ideal, -1))
    left = center - 1
    right = center
    num = len(dst_candidates)
    while left >= 0 or right < num:
        candidates = []
        if left >= 0:
            candidates.append(dst_candidates[left])
        if right < num:
            candidates.append(dst_candidates[right])
        # probe the candidate nearest the ideal share first
        candidates.sort(key=lambda pair: abs(pair[0] - ideal))
        for share_j, block_j in candidates:
            if not lower + _TOLERANCE < share_j < share_i - _TOLERANCE:
                continue
            op = SwapOp(block_i=block_i, src=src, block_j=block_j, dst=dst)
            if not op.is_feasible(state):
                continue
            outcome = op.outcome(state)
            if policy.is_admissible(outcome, global_cost):
                return op
            if stats is not None:
                stats.admissibility_rejections += 1
        if left >= 0 and dst_candidates[left][0] <= lower:
            left = -1
        else:
            left -= 1
        if right < num and dst_candidates[right][0] >= share_i:
            right = num
        else:
            right += 1
    return None


def reference_find_operation_between(
    state: PlacementState,
    src: int,
    dst: int,
    policy: AdmissibilityPolicy,
    global_cost: float,
    stats: Optional[SearchStats] = None,
) -> Optional[Operation]:
    """Naive ``Move``/``Swap`` probe: rebuilds both candidate lists."""
    load_src = state.load(src)
    load_dst = state.load(dst)
    gap = load_src - load_dst
    if gap <= _TOLERANCE:
        return None
    src_blocks = _exclusive_blocks(state, src, dst)
    dst_blocks = _exclusive_blocks(state, dst, src)
    for share_i, block_i in reversed(src_blocks):
        if share_i <= _TOLERANCE:
            break
        move = MoveOp(block=block_i, src=src, dst=dst)
        if move.is_feasible(state):
            outcome = move.outcome(state)
            if policy.is_admissible(outcome, global_cost):
                return move
            if stats is not None:
                stats.admissibility_rejections += 1
        swap = _find_swap_partner(
            state,
            policy,
            global_cost,
            block_i,
            share_i,
            src,
            dst,
            dst_blocks,
            gap,
            stats,
        )
        if swap is not None:
            return swap
    return None


def _rack_pairs_by_gap(state: PlacementState) -> List[Tuple[int, int]]:
    """Ordered rack pairs ranked by extreme-machine load gap (naive scans)."""
    racks = state.topology.racks
    if state.topology.num_racks < 2:
        return []
    hottest = [state.load(_argmax_in_rack(state, rack)) for rack in racks]
    coldest = [state.load(_argmin_in_rack(state, rack)) for rack in racks]
    ranked = []
    for src_rack in racks:
        for dst_rack in racks:
            if src_rack == dst_rack:
                continue
            gap = hottest[src_rack] - coldest[dst_rack]
            if gap > _TOLERANCE:
                ranked.append((-gap, src_rack, dst_rack))
    ranked.sort()
    return [(src_rack, dst_rack) for _, src_rack, dst_rack in ranked]


def _find_rack_aware_operation(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    global_cost: float,
    stats: Optional[SearchStats] = None,
) -> Optional[Operation]:
    """One admissible operation for Algorithm 2's combined search space."""
    intra = []
    for rack in state.topology.racks:
        high = _argmax_in_rack(state, rack)
        low = _argmin_in_rack(state, rack)
        gap = state.load(high) - state.load(low)
        if gap > _TOLERANCE:
            intra.append((gap, high, low))
    intra.sort(reverse=True)
    for _, high, low in intra:
        op = reference_find_operation_between(
            state, high, low, policy, global_cost, stats
        )
        if op is not None:
            return op
    for src_rack, dst_rack in _rack_pairs_by_gap(state):
        src = _argmax_in_rack(state, src_rack)
        dst = _argmin_in_rack(state, dst_rack)
        op = reference_find_operation_between(
            state, src, dst, policy, global_cost, stats
        )
        if op is not None:
            return op
    return None


def reference_balance_node_level(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> SearchStats:
    """Algorithm 1, verbatim: scan extremes, probe, apply, repeat."""
    policy = policy or AlwaysAdmissible()
    started = time.perf_counter()
    stats = SearchStats(initial_cost=state.cost(), final_cost=state.cost())
    while max_operations is None or stats.total_operations < max_operations:
        stats.iterations += 1
        src = _argmax_machine(state)
        dst = _argmin_machine(state)
        op = reference_find_operation_between(
            state, src, dst, policy, state.cost(), stats
        )
        if op is None:
            stats.converged = True
            break
        cross = op.is_cross_rack(state)
        op.apply(state)
        stats.record(op, cross, log_operations)
        if log_operations:
            stats.cost_trajectory.append(state.cost())
    stats.final_cost = state.cost()
    stats.elapsed_seconds = time.perf_counter() - started
    return stats


def reference_balance_rack_aware(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> SearchStats:
    """Algorithm 2, verbatim: full pair sweep per applied operation."""
    policy = policy or AlwaysAdmissible()
    started = time.perf_counter()
    stats = SearchStats(initial_cost=state.cost(), final_cost=state.cost())
    while max_operations is None or stats.total_operations < max_operations:
        stats.iterations += 1
        op = _find_rack_aware_operation(state, policy, state.cost(), stats)
        if op is None:
            stats.converged = True
            break
        cross = op.is_cross_rack(state)
        op.apply(state)
        stats.record(op, cross, log_operations)
        if log_operations:
            stats.cost_trajectory.append(state.cost())
    stats.final_cost = state.cost()
    stats.elapsed_seconds = time.perf_counter() - started
    return stats
