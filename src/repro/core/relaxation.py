"""LP relaxation of BP-Node: integrality-gap measurement.

Relaxing the binary placement variables ``x_im`` to ``[0, 1]`` turns
BP-Node into a linear program whose optimum lower-bounds the integral
one.  Because a fractional solution may split a block's popularity
across machines, the LP bound typically equals the average-load bound
and sits *below* the ``p_max`` share bound — which is exactly why the
paper's guarantee carries an additive ``p_max`` term: the empirical
integrality gap ``OPT / LP`` quantifies how much of the hardness is
integrality rather than load mass.  :func:`certified_lower_bound`
therefore takes the max over all available bounds.

Solved with scipy's HiGHS ``linprog`` backend; guarded by a size limit
since the variable count is ``|B| * |M|``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.core.bounds import combined_lower_bound
from repro.core.instance import PlacementProblem, ProblemVariant
from repro.errors import InvalidProblemError, ReproError

__all__ = ["lp_lower_bound", "certified_lower_bound"]

_MAX_LP_VARIABLES = 200_000


class RelaxationError(ReproError):
    """The LP relaxation failed or the instance exceeds the size limit."""


def lp_lower_bound(problem: PlacementProblem) -> float:
    """Optimal value of BP-Node's LP relaxation (a valid lower bound).

    Variables: fractional ``x_im`` in ``[0, 1]`` plus the makespan
    ``lambda``; constraints mirror the ILP with integrality dropped.
    Only fixed-factor instances are supported (for BP-Replicate, build
    the instance with the factors chosen by Algorithm 3 first).
    """
    if problem.variant() is ProblemVariant.BP_REPLICATE:
        raise InvalidProblemError(
            "lp_lower_bound handles fixed-factor instances; fix the "
            "factors (e.g. via Algorithm 3) first"
        )
    num_blocks = problem.num_blocks
    machines = problem.topology.num_machines
    if num_blocks == 0:
        return 0.0
    num_vars = num_blocks * machines + 1
    if num_vars > _MAX_LP_VARIABLES:
        raise RelaxationError(
            f"instance too large for the LP relaxation ({num_vars} vars)"
        )
    lam = num_vars - 1
    blocks = list(problem)

    def x_index(pos: int, machine: int) -> int:
        return pos * machines + machine

    objective = np.zeros(num_vars)
    objective[lam] = 1.0

    # Inequalities: load rows (<= 0 after moving lambda) and capacities.
    num_ineq = machines * 2
    a_ub = lil_matrix((num_ineq, num_vars))
    b_ub = np.zeros(num_ineq)
    row = 0
    for machine in range(machines):
        for pos, spec in enumerate(blocks):
            a_ub[row, x_index(pos, machine)] = spec.per_replica_popularity
        a_ub[row, lam] = -1.0
        b_ub[row] = 0.0
        row += 1
    for machine in range(machines):
        for pos in range(num_blocks):
            a_ub[row, x_index(pos, machine)] = 1.0
        b_ub[row] = problem.topology.capacity_of(machine)
        row += 1

    # Equalities: each block places exactly k_i fractional copies.
    a_eq = lil_matrix((num_blocks, num_vars))
    b_eq = np.zeros(num_blocks)
    for pos, spec in enumerate(blocks):
        for machine in range(machines):
            a_eq[pos, x_index(pos, machine)] = 1.0
        b_eq[pos] = spec.replication_factor

    bounds = [(0.0, 1.0)] * (num_vars - 1) + [(0.0, None)]
    result = linprog(
        c=objective,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RelaxationError(f"LP solver failed: {result.message}")
    return float(result.fun)


def certified_lower_bound(problem: PlacementProblem) -> float:
    """The best certified lower bound available for the instance.

    The max of the closed-form bounds and (when the instance is small
    enough and has fixed factors) the LP relaxation.
    """
    best = combined_lower_bound(problem)
    if problem.variant() is ProblemVariant.BP_REPLICATE:
        return best
    try:
        best = max(best, lp_lower_bound(problem))
    except RelaxationError:
        pass
    return best
