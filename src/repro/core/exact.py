"""Exact solvers for small placement instances.

BP-Node and BP-Rack are solved as mixed-integer linear programs with
scipy's HiGHS backend (:func:`solve_exact`); BP-Replicate is solved by
enumerating replication-factor vectors and solving the induced BP-Rack
instance for each (:func:`solve_bp_replicate_exact`).  A pure-Python brute
force (:func:`brute_force_bp_node`) cross-checks the MILP on tiny
instances.

These solvers exist to *validate the approximation guarantees* of the
local-search algorithms in tests and benchmarks; they are exponential or
worse in general and guarded by size limits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from repro.core.instance import BlockSpec, PlacementProblem, ProblemVariant
from repro.errors import InvalidProblemError, ReproError

__all__ = [
    "ExactSolution",
    "solve_exact",
    "solve_bp_replicate_exact",
    "brute_force_bp_node",
]

_MAX_MILP_VARIABLES = 20000
_MAX_ENUMERATED_VECTORS = 250000


class ExactSolverError(ReproError):
    """The exact solver failed or the instance exceeds its size limits."""


@dataclass(frozen=True)
class ExactSolution:
    """An optimal placement: objective value and block-to-machine map."""

    objective: float
    assignment: Dict[int, FrozenSet[int]]
    factors: Optional[Dict[int, int]] = None


def solve_exact(problem: PlacementProblem, time_limit: float = 60.0) -> ExactSolution:
    """Solve BP-Node or BP-Rack to optimality via MILP (HiGHS).

    Variables are the binary placement indicators ``x_im`` (plus rack
    indicators ``y_ir`` for BP-Rack) and the continuous makespan
    ``lambda``.  Raises :class:`ExactSolverError` on instances that are
    too large or infeasible.
    """
    if problem.variant() is ProblemVariant.BP_REPLICATE:
        raise InvalidProblemError(
            "solve_exact handles fixed-factor instances; use "
            "solve_bp_replicate_exact for BP-Replicate"
        )
    num_blocks = problem.num_blocks
    machines = problem.topology.num_machines
    racks = problem.topology.num_racks
    rack_aware = problem.variant() is ProblemVariant.BP_RACK

    num_x = num_blocks * machines
    num_y = num_blocks * racks if rack_aware else 0
    num_vars = num_x + num_y + 1  # + lambda
    if num_vars > _MAX_MILP_VARIABLES:
        raise ExactSolverError(
            f"instance too large for the exact solver ({num_vars} variables)"
        )

    block_list = list(problem)
    lam = num_vars - 1

    def x_index(block_pos: int, machine: int) -> int:
        return block_pos * machines + machine

    def y_index(block_pos: int, rack: int) -> int:
        return num_x + block_pos * racks + rack

    objective = np.zeros(num_vars)
    objective[lam] = 1.0

    rows: List[Tuple[lil_matrix, float, float]] = []
    num_rack_link = num_x if rack_aware else 0
    total_rows = machines * 2 + num_blocks + num_rack_link + (
        num_blocks if rack_aware else 0
    )
    matrix = lil_matrix((total_rows, num_vars))
    lower = np.empty(total_rows)
    upper = np.empty(total_rows)
    row = 0

    # Load constraints: sum_i p_i x_im - lambda <= 0.
    for machine in range(machines):
        for pos, spec in enumerate(block_list):
            matrix[row, x_index(pos, machine)] = spec.per_replica_popularity
        matrix[row, lam] = -1.0
        lower[row] = -np.inf
        upper[row] = 0.0
        row += 1
    # Capacity constraints: sum_i x_im <= C_m.
    for machine in range(machines):
        for pos in range(num_blocks):
            matrix[row, x_index(pos, machine)] = 1.0
        lower[row] = 0.0
        upper[row] = problem.topology.capacity_of(machine)
        row += 1
    # Replication constraints: sum_m x_im == k_i.
    for pos, spec in enumerate(block_list):
        for machine in range(machines):
            matrix[row, x_index(pos, machine)] = 1.0
        lower[row] = spec.replication_factor
        upper[row] = spec.replication_factor
        row += 1
    if rack_aware:
        # Linking: x_im <= y_ir for machine m in rack r.
        for pos in range(num_blocks):
            for machine in range(machines):
                rack = problem.topology.rack_of[machine]
                matrix[row, x_index(pos, machine)] = 1.0
                matrix[row, y_index(pos, rack)] = -1.0
                lower[row] = -np.inf
                upper[row] = 0.0
                row += 1
        # Spread: sum_r y_ir >= rho_i.
        for pos, spec in enumerate(block_list):
            for rack in range(racks):
                matrix[row, y_index(pos, rack)] = 1.0
            lower[row] = spec.rack_spread
            upper[row] = np.inf
            row += 1
    assert row == total_rows

    integrality = np.ones(num_vars)
    integrality[lam] = 0.0
    var_lower = np.zeros(num_vars)
    var_upper = np.ones(num_vars)
    var_upper[lam] = np.inf

    result = milp(
        c=objective,
        constraints=LinearConstraint(matrix.tocsr(), lower, upper),
        integrality=integrality,
        bounds=Bounds(var_lower, var_upper),
        options={"time_limit": time_limit},
    )
    if not result.success:
        raise ExactSolverError(f"MILP solver failed: {result.message}")

    assignment: Dict[int, FrozenSet[int]] = {}
    for pos, spec in enumerate(block_list):
        holders = frozenset(
            machine
            for machine in range(machines)
            if result.x[x_index(pos, machine)] > 0.5
        )
        assignment[spec.block_id] = holders
    return ExactSolution(objective=float(result.x[lam]), assignment=assignment)


def _factor_vectors(problem: PlacementProblem):
    """Enumerate feasible replication-factor vectors for BP-Replicate."""
    budget = problem.replication_budget
    assert budget is not None
    machines = problem.topology.num_machines
    ranges = []
    for spec in problem:
        slack = budget - (problem.minimum_total_replicas() - spec.replication_factor)
        top = min(machines, slack)
        ranges.append(range(spec.replication_factor, top + 1))
    count = 1
    for factor_range in ranges:
        count *= len(factor_range)
        if count > _MAX_ENUMERATED_VECTORS:
            raise ExactSolverError(
                "BP-Replicate instance too large for exhaustive factor search"
            )
    for vector in itertools.product(*ranges):
        if sum(vector) <= budget:
            yield vector


def solve_bp_replicate_exact(
    problem: PlacementProblem, time_limit: float = 60.0
) -> ExactSolution:
    """Solve tiny BP-Replicate instances by exhaustive factor enumeration.

    For every feasible factor vector the induced fixed-factor instance is
    solved exactly; the best combination wins.  Exponential — intended for
    validation only.
    """
    if problem.replication_budget is None:
        raise InvalidProblemError("problem is not a BP-Replicate instance")
    best: Optional[ExactSolution] = None
    block_list = list(problem)
    for vector in _factor_vectors(problem):
        specs = tuple(
            BlockSpec(
                block_id=spec.block_id,
                popularity=spec.popularity,
                replication_factor=factor,
                rack_spread=spec.rack_spread,
            )
            for spec, factor in zip(block_list, vector)
        )
        candidate_problem = PlacementProblem(
            topology=problem.topology, blocks=specs, replication_budget=None
        )
        try:
            solution = solve_exact(candidate_problem, time_limit=time_limit)
        except ExactSolverError:
            continue
        if best is None or solution.objective < best.objective - 1e-12:
            best = ExactSolution(
                objective=solution.objective,
                assignment=solution.assignment,
                factors={
                    spec.block_id: factor
                    for spec, factor in zip(block_list, vector)
                },
            )
    if best is None:
        raise ExactSolverError("no feasible factor vector found")
    return best


def brute_force_bp_node(problem: PlacementProblem) -> ExactSolution:
    """Exhaustive BP-Node solver (pure Python) for cross-checking the MILP.

    Enumerates, block by block, every machine subset of size ``k_i``;
    prunes on machine capacity and the incumbent objective.  Only viable
    for a handful of blocks and machines.
    """
    machines = list(problem.topology.machines)
    if problem.num_blocks > 8 or len(machines) > 8:
        raise ExactSolverError("instance too large for brute force")
    blocks = sorted(problem, key=lambda s: s.per_replica_popularity, reverse=True)
    capacities = [problem.topology.capacity_of(m) for m in machines]
    loads = [0.0] * len(machines)
    used = [0] * len(machines)
    best_objective = float("inf")
    best_assignment: Dict[int, FrozenSet[int]] = {}
    current: Dict[int, Tuple[int, ...]] = {}

    def recurse(index: int) -> None:
        nonlocal best_objective, best_assignment
        if max(loads) >= best_objective - 1e-12:
            return
        if index == len(blocks):
            best_objective = max(loads) if loads else 0.0
            best_assignment = {
                block_id: frozenset(holders) for block_id, holders in current.items()
            }
            return
        spec = blocks[index]
        share = spec.per_replica_popularity
        for holders in itertools.combinations(machines, spec.replication_factor):
            if any(used[m] + 1 > capacities[m] for m in holders):
                continue
            for m in holders:
                loads[m] += share
                used[m] += 1
            current[spec.block_id] = holders
            recurse(index + 1)
            del current[spec.block_id]
            for m in holders:
                loads[m] -= share
                used[m] -= 1

    recurse(0)
    if best_objective == float("inf"):
        raise ExactSolverError("no feasible assignment exists")
    return ExactSolution(objective=best_objective, assignment=best_assignment)
