"""Local-search operations: ``Move``, ``Swap`` and their rack variants.

The paper defines four operations (Sections III.A and III.B):

* ``Move(m, i, n)`` — relocate one replica of block ``i`` from machine
  ``m`` to machine ``n``;
* ``Swap(m, i, n, j)`` — exchange a replica of ``i`` on ``m`` with a
  replica of ``j`` on ``n``;
* ``RackMove(r, m, i, t, n)`` / ``RackSwap(r, m, i, t, n, j)`` — the same
  operations across racks ``r`` and ``t``.

Structurally a rack move *is* a move whose endpoints sit in different
racks, so we model all four with two dataclasses and expose
:attr:`MoveOp.is_cross_rack` for statistics.  Each operation can be
evaluated against a :class:`~repro.core.placement.PlacementState` without
being applied: :meth:`MoveOp.outcome` returns the endpoint loads before and
after, which admissibility policies consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.placement import PlacementState

__all__ = ["MoveOp", "SwapOp", "Operation", "OperationOutcome"]


@dataclass(frozen=True)
class OperationOutcome:
    """Endpoint loads of an operation, before and after applying it.

    ``src`` is the higher-loaded machine the operation unloads; ``dst``
    the machine receiving load.  ``pair_cost_before``/``after`` are the
    max of the two endpoint loads, which is what the local search must
    strictly reduce.
    """

    src_load_before: float
    dst_load_before: float
    src_load_after: float
    dst_load_after: float

    @property
    def pair_cost_before(self) -> float:
        """Max endpoint load before the operation."""
        return max(self.src_load_before, self.dst_load_before)

    @property
    def pair_cost_after(self) -> float:
        """Max endpoint load after the operation."""
        return max(self.src_load_after, self.dst_load_after)

    @property
    def pair_gap_before(self) -> float:
        """Absolute endpoint load gap before the operation."""
        return abs(self.src_load_before - self.dst_load_before)

    @property
    def pair_gap_after(self) -> float:
        """Absolute endpoint load gap after the operation."""
        return abs(self.src_load_after - self.dst_load_after)

    @property
    def improves(self) -> bool:
        """Whether the operation strictly reduces the pair cost.

        A strictly improving operation also strictly reduces the sum of
        squared machine loads, which is the potential-function argument
        guaranteeing the local search terminates.
        """
        return self.pair_cost_after < self.pair_cost_before - 1e-12


@dataclass(frozen=True)
class MoveOp:
    """``Move(src, block, dst)`` — also the paper's ``RackMove``."""

    block: int
    src: int
    dst: int

    def is_cross_rack(self, state: PlacementState) -> bool:
        """Whether the endpoints are in different racks."""
        return not state.topology.same_rack(self.src, self.dst)

    def is_feasible(self, state: PlacementState) -> bool:
        """Whether the move can legally be applied to ``state``."""
        return state.can_move(self.block, self.src, self.dst)

    def outcome(self, state: PlacementState) -> OperationOutcome:
        """Endpoint loads before/after, without mutating the state."""
        share = state.share(self.block)
        src_load = state.load(self.src)
        dst_load = state.load(self.dst)
        return OperationOutcome(
            src_load_before=src_load,
            dst_load_before=dst_load,
            src_load_after=src_load - share,
            dst_load_after=dst_load + share,
        )

    def apply(self, state: PlacementState) -> None:
        """Mutate ``state`` by performing the move."""
        state.move(self.block, self.src, self.dst)

    @property
    def blocks_touched(self) -> int:
        """Number of block replicas physically transferred (always 1)."""
        return 1


@dataclass(frozen=True)
class SwapOp:
    """``Swap(src, block_i, dst, block_j)`` — also the paper's ``RackSwap``."""

    block_i: int
    src: int
    block_j: int
    dst: int

    def is_cross_rack(self, state: PlacementState) -> bool:
        """Whether the endpoints are in different racks."""
        return not state.topology.same_rack(self.src, self.dst)

    def is_feasible(self, state: PlacementState) -> bool:
        """Whether the swap can legally be applied to ``state``."""
        return state.can_swap(self.block_i, self.src, self.block_j, self.dst)

    def outcome(self, state: PlacementState) -> OperationOutcome:
        """Endpoint loads before/after, without mutating the state."""
        share_i = state.share(self.block_i)
        share_j = state.share(self.block_j)
        src_load = state.load(self.src)
        dst_load = state.load(self.dst)
        return OperationOutcome(
            src_load_before=src_load,
            dst_load_before=dst_load,
            src_load_after=src_load - share_i + share_j,
            dst_load_after=dst_load + share_i - share_j,
        )

    def apply(self, state: PlacementState) -> None:
        """Mutate ``state`` by performing the swap."""
        state.swap(self.block_i, self.src, self.block_j, self.dst)

    @property
    def blocks_touched(self) -> int:
        """Number of block replicas physically transferred (always 2)."""
        return 2


Operation = Union[MoveOp, SwapOp]
