"""Local-search load balancing: Algorithms 1 and 2 of the paper.

* :func:`balance_node_level` implements **Algorithm 1** for BP-Node:
  repeatedly take the highest- and lowest-loaded machines ``(m, n)`` and
  perform a ``Move(m, i, n)`` or ``Swap(m, i, n, j)`` that improves the
  solution, until no admissible operation exists.  With the
  :class:`~repro.core.admissibility.AlwaysAdmissible` policy this is a
  2-approximation (Theorem 2 / Corollary 3).
* :func:`balance_rack_aware` implements **Algorithm 2** for BP-Rack: per
  rack it balances the intra-rack extremes, and across rack pairs it
  performs ``RackMove``/``RackSwap`` operations, giving a 4-approximation
  (Theorem 4 / Corollary 5).  Operations never violate a block's
  rack-spread requirement — feasibility is checked by the placement
  state.

Termination: every applied operation strictly reduces ``max(L_m, L_n)``
of its endpoint pair, which strictly decreases the sum of squared machine
loads; with finitely many configurations the search cannot cycle.  A
``max_operations`` cap is still supported for Aurora's budgeted periodic
runs (Algorithm 5).
"""

from __future__ import annotations

import bisect
import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.admissibility import AdmissibilityPolicy, AlwaysAdmissible
from repro.core.operations import MoveOp, Operation, SwapOp
from repro.core.placement import PlacementState
from repro.obs.registry import get_registry

__all__ = ["SearchStats", "balance_node_level", "balance_rack_aware"]

_TOLERANCE = 1e-12

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_SEARCH_RUNS = _REG.counter(
    "repro_core_search_runs_total",
    "Local-search runs, by algorithm and whether they converged",
    ["algorithm", "converged"],
)
_SEARCH_OPS = _REG.counter(
    "repro_core_search_operations_total",
    "Applied local-search operations by kind (Algorithms 1/2)",
    ["algorithm", "kind"],
)
_SEARCH_REJECTIONS = _REG.counter(
    "repro_core_search_rejections_total",
    "Feasible operations rejected by the admissibility policy",
    ["algorithm"],
)
_SEARCH_SECONDS = _REG.histogram(
    "repro_core_search_seconds",
    "Wall-clock duration of one local-search run",
    ["algorithm"],
)
_SEARCH_COST_REDUCTION = _REG.histogram(
    "repro_core_search_cost_reduction_ratio",
    "Relative cost reduction (1 - final/initial) achieved per run",
    ["algorithm"],
    buckets=(0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)


def _flush_search_metrics(algorithm: str, stats: "SearchStats") -> None:
    """Publish one run's stats to the registry (one flush per run,

    so the search loop itself stays free of metric calls)."""
    if not _REG.enabled:
        return
    _SEARCH_RUNS.labels(
        algorithm=algorithm, converged=str(stats.converged).lower()
    ).inc()
    for kind, count in stats.operations_by_kind.items():
        if count:
            _SEARCH_OPS.labels(algorithm=algorithm, kind=kind).inc(count)
    if stats.admissibility_rejections:
        _SEARCH_REJECTIONS.labels(algorithm=algorithm).inc(
            stats.admissibility_rejections
        )
    _SEARCH_SECONDS.labels(algorithm=algorithm).observe(stats.elapsed_seconds)
    if stats.initial_cost > 0:
        _SEARCH_COST_REDUCTION.labels(algorithm=algorithm).observe(
            max(0.0, 1.0 - stats.final_cost / stats.initial_cost)
        )


@dataclass
class SearchStats:
    """Outcome of one local-search run.

    ``converged`` is True when the search stopped because no admissible
    operation existed (the paper's natural termination), False when it hit
    the ``max_operations`` cap.

    ``elapsed_seconds`` is the run's wall-clock duration (perf_counter);
    ``admissibility_rejections`` counts feasible operations the epsilon
    policy turned down; ``cost_trajectory`` records the cost after each
    applied operation when ``log_operations`` is on (index-aligned with
    ``operations``).
    """

    initial_cost: float
    final_cost: float
    iterations: int = 0
    moves: int = 0
    swaps: int = 0
    cross_rack_moves: int = 0
    cross_rack_swaps: int = 0
    blocks_transferred: int = 0
    converged: bool = False
    operations: List[Operation] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    admissibility_rejections: int = 0
    cost_trajectory: List[float] = field(default_factory=list)

    @property
    def total_operations(self) -> int:
        """Moves plus swaps performed."""
        return self.moves + self.swaps

    @property
    def operations_by_kind(self) -> Dict[str, int]:
        """Applied operations split into the paper's four kinds.

        Cross-rack moves/swaps are the ``RackMove``/``RackSwap`` of
        Algorithm 2; the plain kinds are the intra-rack remainder.
        """
        return {
            "move": self.moves - self.cross_rack_moves,
            "swap": self.swaps - self.cross_rack_swaps,
            "rack_move": self.cross_rack_moves,
            "rack_swap": self.cross_rack_swaps,
        }

    def record(self, op: Operation, cross_rack: bool, log_operations: bool) -> None:
        """Account one applied operation."""
        if isinstance(op, MoveOp):
            self.moves += 1
            if cross_rack:
                self.cross_rack_moves += 1
        else:
            self.swaps += 1
            if cross_rack:
                self.cross_rack_swaps += 1
        self.blocks_transferred += op.blocks_touched
        if log_operations:
            self.operations.append(op)


def _exclusive_blocks(
    state: PlacementState, machine: int, other: int
) -> List[Tuple[float, int]]:
    """Blocks on ``machine`` but not on ``other``, as (share, id) pairs."""
    other_blocks = state.blocks_on(other)
    pairs = [
        (state.share(block_id), block_id)
        for block_id in state.blocks_on(machine)
        if block_id not in other_blocks
    ]
    pairs.sort()
    return pairs


def _find_swap_partner(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    global_cost: float,
    block_i: int,
    share_i: float,
    src: int,
    dst: int,
    dst_candidates: List[Tuple[float, int]],
    gap: float,
    stats: Optional[SearchStats] = None,
) -> Optional[SwapOp]:
    """Best feasible, admissible swap partner for ``block_i`` on ``dst``.

    A swap transfers net load ``share_i - share_j`` from ``src`` to
    ``dst``; it strictly improves the pair cost iff ``share_j`` lies in
    the open window ``(share_i - gap, share_i)``.  The pair cost after is
    minimized at ``share_j = share_i - gap/2``, so candidates are probed
    outward from that ideal value.
    """
    if not dst_candidates:
        return None
    ideal = share_i - gap / 2.0
    lower = share_i - gap
    center = bisect.bisect_left(dst_candidates, (ideal, -1))
    left = center - 1
    right = center
    num = len(dst_candidates)
    while left >= 0 or right < num:
        candidates = []
        if left >= 0:
            candidates.append(dst_candidates[left])
        if right < num:
            candidates.append(dst_candidates[right])
        # probe the candidate nearest the ideal share first
        candidates.sort(key=lambda pair: abs(pair[0] - ideal))
        for share_j, block_j in candidates:
            if not lower + _TOLERANCE < share_j < share_i - _TOLERANCE:
                continue
            op = SwapOp(block_i=block_i, src=src, block_j=block_j, dst=dst)
            if not op.is_feasible(state):
                continue
            outcome = op.outcome(state)
            if policy.is_admissible(outcome, global_cost):
                return op
            if stats is not None:
                stats.admissibility_rejections += 1
        if left >= 0 and dst_candidates[left][0] <= lower:
            left = -1
        else:
            left -= 1
        if right < num and dst_candidates[right][0] >= share_i:
            right = num
        else:
            right += 1
    return None


def find_operation_between(
    state: PlacementState,
    src: int,
    dst: int,
    policy: AdmissibilityPolicy,
    global_cost: float,
    stats: Optional[SearchStats] = None,
) -> Optional[Operation]:
    """Find an admissible ``Move`` or ``Swap`` from ``src`` towards ``dst``.

    Blocks exclusive to ``src`` are tried in descending share order — the
    paper's proofs reason about the most popular movable block first.
    For each such block a direct move is attempted, then the best swap
    partner on ``dst``.  Returns ``None`` when no admissible operation
    exists between this machine pair.  When ``stats`` is given, feasible
    operations turned down by ``policy`` are counted on it.
    """
    load_src = state.load(src)
    load_dst = state.load(dst)
    gap = load_src - load_dst
    if gap <= _TOLERANCE:
        return None
    src_blocks = _exclusive_blocks(state, src, dst)
    dst_blocks = _exclusive_blocks(state, dst, src)
    for share_i, block_i in reversed(src_blocks):
        if share_i <= _TOLERANCE:
            break
        move = MoveOp(block=block_i, src=src, dst=dst)
        if move.is_feasible(state):
            outcome = move.outcome(state)
            if policy.is_admissible(outcome, global_cost):
                return move
            if stats is not None:
                stats.admissibility_rejections += 1
        swap = _find_swap_partner(
            state,
            policy,
            global_cost,
            block_i,
            share_i,
            src,
            dst,
            dst_blocks,
            gap,
            stats,
        )
        if swap is not None:
            return swap
    return None


def balance_node_level(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> SearchStats:
    """Algorithm 1: balance loads with moves/swaps between extremes.

    Mutates ``state`` in place and returns the run's
    :class:`SearchStats`.  ``policy`` defaults to
    :class:`~repro.core.admissibility.AlwaysAdmissible` (the verbatim
    algorithm); pass an epsilon policy for Section IV's budgeted variant.
    """
    policy = policy or AlwaysAdmissible()
    started = time.perf_counter()
    stats = SearchStats(initial_cost=state.cost(), final_cost=state.cost())
    while max_operations is None or stats.total_operations < max_operations:
        stats.iterations += 1
        src = state.argmax_machine()
        dst = state.argmin_machine()
        op = find_operation_between(
            state, src, dst, policy, state.cost(), stats
        )
        if op is None:
            stats.converged = True
            break
        cross = op.is_cross_rack(state)
        op.apply(state)
        stats.record(op, cross, log_operations)
        if log_operations:
            stats.cost_trajectory.append(state.cost())
    stats.final_cost = state.cost()
    stats.elapsed_seconds = time.perf_counter() - started
    _flush_search_metrics("node", stats)
    _LOG.debug(
        "balance_node_level done ops=%d rejections=%d converged=%s "
        "cost=%.6g->%.6g elapsed=%.4fs",
        stats.total_operations, stats.admissibility_rejections,
        stats.converged, stats.initial_cost, stats.final_cost,
        stats.elapsed_seconds,
    )
    return stats


def _rack_pairs_by_gap(state: PlacementState) -> List[Tuple[int, int]]:
    """All ordered rack pairs, heaviest-to-lightest gaps first."""
    racks = sorted(state.topology.racks, key=state.rack_load, reverse=True)
    pairs = []
    for i, src_rack in enumerate(racks):
        for dst_rack in reversed(racks[i + 1 :]):
            pairs.append((src_rack, dst_rack))
    return pairs


def _find_rack_aware_operation(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    stats: Optional[SearchStats] = None,
) -> Optional[Operation]:
    """One admissible operation for Algorithm 2's combined search space."""
    global_cost = state.cost()
    # Intra-rack phase: balance the extremes of each rack, worst rack first.
    intra = []
    for rack in state.topology.racks:
        high = state.argmax_machine_in_rack(rack)
        low = state.argmin_machine_in_rack(rack)
        gap = state.load(high) - state.load(low)
        if gap > _TOLERANCE:
            intra.append((gap, high, low))
    intra.sort(reverse=True)
    for _, high, low in intra:
        op = find_operation_between(
            state, high, low, policy, global_cost, stats
        )
        if op is not None:
            return op
    # Inter-rack phase: RackMove / RackSwap between extreme machines of
    # rack pairs, largest rack-load gaps first.
    for src_rack, dst_rack in _rack_pairs_by_gap(state):
        src = state.argmax_machine_in_rack(src_rack)
        dst = state.argmin_machine_in_rack(dst_rack)
        op = find_operation_between(
            state, src, dst, policy, global_cost, stats
        )
        if op is not None:
            return op
    return None


def balance_rack_aware(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> SearchStats:
    """Algorithm 2: rack-aware balancing with all four operations.

    Performs intra-rack moves/swaps between each rack's extremes and
    inter-rack ``RackMove``/``RackSwap`` operations between rack pairs
    until no admissible operation remains.  Every operation preserves each
    block's rack-spread requirement ``rho_i``.
    """
    policy = policy or AlwaysAdmissible()
    started = time.perf_counter()
    stats = SearchStats(initial_cost=state.cost(), final_cost=state.cost())
    while max_operations is None or stats.total_operations < max_operations:
        stats.iterations += 1
        op = _find_rack_aware_operation(state, policy, stats)
        if op is None:
            stats.converged = True
            break
        cross = op.is_cross_rack(state)
        op.apply(state)
        stats.record(op, cross, log_operations)
        if log_operations:
            stats.cost_trajectory.append(state.cost())
    stats.final_cost = state.cost()
    stats.elapsed_seconds = time.perf_counter() - started
    _flush_search_metrics("rack", stats)
    _LOG.debug(
        "balance_rack_aware done ops=%d rejections=%d converged=%s "
        "cost=%.6g->%.6g elapsed=%.4fs",
        stats.total_operations, stats.admissibility_rejections,
        stats.converged, stats.initial_cost, stats.final_cost,
        stats.elapsed_seconds,
    )
    return stats
