"""Local-search load balancing: Algorithms 1 and 2, incremental engine.

* :func:`balance_node_level` implements **Algorithm 1** for BP-Node:
  repeatedly take the highest- and lowest-loaded machines ``(m, n)`` and
  perform a ``Move(m, i, n)`` or ``Swap(m, i, n, j)`` that improves the
  solution, until no admissible operation exists.  With the
  :class:`~repro.core.admissibility.AlwaysAdmissible` policy this is a
  2-approximation (Theorem 2 / Corollary 3).
* :func:`balance_rack_aware` implements **Algorithm 2** for BP-Rack: per
  rack it balances the intra-rack extremes, and across rack pairs it
  performs ``RackMove``/``RackSwap`` operations, giving a 4-approximation
  (Theorem 4 / Corollary 5).  Operations never violate a block's
  rack-spread requirement — feasibility is checked by the placement
  state.

Both run on an *incremental engine* that is operation-for-operation
identical to the naive transcription in :mod:`repro.core.reference`
(pinned by ``tests/core/test_differential.py``) but does per-iteration
work proportional to what the last operation changed:

* machine/rack extremes and the global objective come from the placement
  state's lazy heap indices (O(log M) amortized) instead of load scans;
* candidate blocks are walked directly on the state's persistent
  per-machine ``(share, block_id)`` indices, skipping shared blocks
  inline, instead of rebuilding sorted exclusive lists per machine pair;
* a :class:`_PairPruner` memoizes machine pairs proven exhausted, keyed
  on both endpoints' change epochs and the current objective, so the
  rack-pair sweep only re-probes pairs something actually touched;
* the objective is threaded through the loop and refreshed only after an
  operation is applied — it cannot change otherwise.

Termination: every applied operation strictly reduces ``max(L_m, L_n)``
of its endpoint pair, which strictly decreases the sum of squared machine
loads; with finitely many configurations the search cannot cycle.  A
``max_operations`` cap is still supported for Aurora's budgeted periodic
runs (Algorithm 5).
"""

from __future__ import annotations

import bisect
import heapq
import logging
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.admissibility import (
    AdmissibilityPolicy,
    AlwaysAdmissible,
    RelativeCostPolicy,
    RelativeGapPolicy,
)
from repro.core.operations import MoveOp, Operation, OperationOutcome, SwapOp
from repro.core.placement import PlacementState
from repro.obs.registry import get_registry

__all__ = ["SearchStats", "balance_node_level", "balance_rack_aware"]

_TOLERANCE = 1e-12

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_SEARCH_RUNS = _REG.counter(
    "repro_core_search_runs_total",
    "Local-search runs, by algorithm and whether they converged",
    ["algorithm", "converged"],
)
_SEARCH_OPS = _REG.counter(
    "repro_core_search_operations_total",
    "Applied local-search operations by kind (Algorithms 1/2)",
    ["algorithm", "kind"],
)
_SEARCH_REJECTIONS = _REG.counter(
    "repro_core_search_rejections_total",
    "Feasible operations rejected by the admissibility policy",
    ["algorithm"],
)
_SEARCH_SECONDS = _REG.histogram(
    "repro_core_search_seconds",
    "Wall-clock duration of one local-search run",
    ["algorithm"],
)
_SEARCH_COST_REDUCTION = _REG.histogram(
    "repro_core_search_cost_reduction_ratio",
    "Relative cost reduction (1 - final/initial) achieved per run",
    ["algorithm"],
    buckets=(0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)
_SEARCH_PAIR_PROBES = _REG.counter(
    "repro_core_search_pair_probes_total",
    "Machine-pair probes by the incremental engine, split by whether the "
    "epoch memo pruned the probe",
    ["algorithm", "outcome"],
)
_STATE_BYTES = _REG.gauge(
    "repro_core_state_bytes",
    "Approximate resident bytes of the placement state's structures, "
    "sampled after each local-search run",
)


def _flush_search_metrics(
    algorithm: str, stats: "SearchStats", state: Optional[PlacementState] = None
) -> None:
    """Publish one run's stats to the registry (one flush per run,

    so the search loop itself stays free of metric calls)."""
    if not _REG.enabled:
        return
    if state is not None:
        _STATE_BYTES.set(state.state_bytes())
    _SEARCH_RUNS.labels(
        algorithm=algorithm, converged=str(stats.converged).lower()
    ).inc()
    for kind, count in stats.operations_by_kind.items():
        if count:
            _SEARCH_OPS.labels(algorithm=algorithm, kind=kind).inc(count)
    if stats.admissibility_rejections:
        _SEARCH_REJECTIONS.labels(algorithm=algorithm).inc(
            stats.admissibility_rejections
        )
    _SEARCH_SECONDS.labels(algorithm=algorithm).observe(stats.elapsed_seconds)
    if stats.pairs_probed:
        _SEARCH_PAIR_PROBES.labels(algorithm=algorithm, outcome="probed").inc(
            stats.pairs_probed
        )
    if stats.pairs_pruned:
        _SEARCH_PAIR_PROBES.labels(algorithm=algorithm, outcome="pruned").inc(
            stats.pairs_pruned
        )
    if stats.initial_cost > 0:
        _SEARCH_COST_REDUCTION.labels(algorithm=algorithm).observe(
            max(0.0, 1.0 - stats.final_cost / stats.initial_cost)
        )


@dataclass
class SearchStats:
    """Outcome of one local-search run.

    ``converged`` is True when the search stopped because no admissible
    operation existed (the paper's natural termination), False when it hit
    the ``max_operations`` cap.

    ``elapsed_seconds`` is the run's wall-clock duration (perf_counter);
    ``admissibility_rejections`` counts feasible operations the epsilon
    policy turned down; ``cost_trajectory`` records the cost after each
    applied operation when ``log_operations`` is on (index-aligned with
    ``operations``).

    ``pairs_probed``/``pairs_pruned`` account the incremental engine's
    machine-pair probes: a *probe* runs the candidate search between a
    pair, a *prune* skips it because the pair was already proven
    exhausted and neither endpoint changed since.
    """

    initial_cost: float
    final_cost: float
    iterations: int = 0
    moves: int = 0
    swaps: int = 0
    cross_rack_moves: int = 0
    cross_rack_swaps: int = 0
    blocks_transferred: int = 0
    converged: bool = False
    operations: List[Operation] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    admissibility_rejections: int = 0
    cost_trajectory: List[float] = field(default_factory=list)
    pairs_probed: int = 0
    pairs_pruned: int = 0

    @property
    def total_operations(self) -> int:
        """Moves plus swaps performed."""
        return self.moves + self.swaps

    @property
    def operations_by_kind(self) -> Dict[str, int]:
        """Applied operations split into the paper's four kinds.

        Cross-rack moves/swaps are the ``RackMove``/``RackSwap`` of
        Algorithm 2; the plain kinds are the intra-rack remainder.
        """
        return {
            "move": self.moves - self.cross_rack_moves,
            "swap": self.swaps - self.cross_rack_swaps,
            "rack_move": self.cross_rack_moves,
            "rack_swap": self.cross_rack_swaps,
        }

    def record(self, op: Operation, cross_rack: bool, log_operations: bool) -> None:
        """Account one applied operation."""
        if isinstance(op, MoveOp):
            self.moves += 1
            if cross_rack:
                self.cross_rack_moves += 1
        else:
            self.swaps += 1
            if cross_rack:
                self.cross_rack_swaps += 1
        self.blocks_transferred += op.blocks_touched
        if log_operations:
            self.operations.append(op)


def _prev_exclusive(index: Sequence[Tuple[float, int]], i: int, skip) -> int:
    """Largest position ``<= i`` whose block is not in ``skip``, else -1."""
    while i >= 0 and index[i][1] in skip:
        i -= 1
    return i


def _next_exclusive(index: Sequence[Tuple[float, int]], i: int, skip) -> int:
    """Smallest position ``>= i`` whose block is not in ``skip``, else len."""
    num = len(index)
    while i < num and index[i][1] in skip:
        i += 1
    return i


# Dispatch tags for the inlined admissibility fast paths below.
_GENERIC, _ALWAYS, _GAP, _COST = 0, 1, 2, 3


def _policy_mode(policy: AdmissibilityPolicy) -> int:
    """Classify ``policy`` for the candidate loops' inlined arithmetic.

    Exact type checks on purpose: a subclass may override
    ``is_admissible``, so anything unrecognized takes the generic path
    through the real policy object.
    """
    cls = type(policy)
    if cls is AlwaysAdmissible:
        return _ALWAYS
    if cls is RelativeGapPolicy:
        return _GAP
    if cls is RelativeCostPolicy:
        return _COST
    return _GENERIC


def _find_swap_partner(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    global_cost: float,
    block_i: int,
    share_i: float,
    src: int,
    dst: int,
    dst_index: Sequence[Tuple[float, int]],
    src_blocks,
    load_src: float,
    load_dst: float,
    mode: int,
    stats: Optional[SearchStats] = None,
) -> Optional[SwapOp]:
    """Best feasible, admissible swap partner for ``block_i`` on ``dst``.

    A swap transfers net load ``share_i - share_j`` from ``src`` to
    ``dst``; it strictly improves the pair cost iff ``share_j`` lies in
    the open window ``(share_i - gap, share_i)``.  The pair cost after is
    minimized at ``share_j = share_i - gap/2``, so candidates are probed
    outward from that ideal value.

    ``dst_index`` is the destination machine's *full* persistent share
    index; blocks shared with ``src`` (``src_blocks``) are stepped over
    in place, which visits exactly the exclusive blocks in the same order
    a rebuilt exclusive list would.

    Preconditions held by the caller (and relied on here): ``src`` and
    ``dst`` differ, ``block_i`` is on ``src`` but not on ``dst``, and
    every probed ``block_j`` is on ``dst`` but not on ``src`` — so of
    :meth:`~repro.core.placement.PlacementState.can_swap` only the two
    rack-spread clauses remain to be checked.  The ``block_i`` clause
    does not depend on the partner and is checked once up front
    (infeasible candidates are never counted as rejections, so bailing
    out early is stats-neutral); the outcome loads are computed from the
    shares already in hand with the same expressions
    ``SwapOp.outcome`` uses, keeping every float bit-identical.
    """
    if not dst_index:
        return None
    if not state.move_keeps_spread(block_i, src, dst):
        return None
    gap = load_src - load_dst
    ideal = share_i - gap / 2.0
    lower = share_i - gap
    lower_bar = lower + _TOLERANCE
    upper_bar = share_i - _TOLERANCE
    num = len(dst_index)
    keeps_spread = state.move_keeps_spread
    pair_before = load_src if load_src >= load_dst else load_dst
    improve_bar = pair_before - _TOLERANCE
    if mode == _GAP:
        gap_bar = (1.0 - policy.epsilon) * abs(load_src - load_dst) + _TOLERANCE
    elif mode == _COST:
        src_at_max = not (load_src < global_cost - _TOLERANCE)
        cost_bar = (1.0 - policy.epsilon) * global_cost + _TOLERANCE
    rejections = 0
    center = bisect.bisect_left(dst_index, (ideal, -1))
    left = _prev_exclusive(dst_index, center - 1, src_blocks)
    right = _next_exclusive(dst_index, center, src_blocks)
    while left >= 0 or right < num:
        # probe the candidate nearest the ideal share first (ties: left)
        if left < 0:
            candidates = (dst_index[right],)
        elif right >= num:
            candidates = (dst_index[left],)
        elif abs(dst_index[right][0] - ideal) < abs(dst_index[left][0] - ideal):
            candidates = (dst_index[right], dst_index[left])
        else:
            candidates = (dst_index[left], dst_index[right])
        for share_j, block_j in candidates:
            if not lower_bar < share_j < upper_bar:
                continue
            if not keeps_spread(block_j, dst, src):
                continue
            src_after = load_src - share_i + share_j
            dst_after = load_dst + share_i - share_j
            pair_after = src_after if src_after >= dst_after else dst_after
            if mode == _GAP:
                admissible = (
                    pair_after < improve_bar
                    and abs(src_after - dst_after) <= gap_bar
                )
            elif mode == _ALWAYS:
                admissible = pair_after < improve_bar
            elif mode == _COST:
                admissible = (
                    pair_after < improve_bar
                    and src_at_max
                    and pair_after <= cost_bar
                )
            else:
                admissible = policy.is_admissible(
                    OperationOutcome(
                        src_load_before=load_src,
                        dst_load_before=load_dst,
                        src_load_after=src_after,
                        dst_load_after=dst_after,
                    ),
                    global_cost,
                )
            if admissible:
                if rejections and stats is not None:
                    stats.admissibility_rejections += rejections
                return SwapOp(block_i=block_i, src=src, block_j=block_j, dst=dst)
            rejections += 1
        if left >= 0 and dst_index[left][0] <= lower:
            left = -1
        else:
            left = _prev_exclusive(dst_index, left - 1, src_blocks)
        if right < num and dst_index[right][0] >= share_i:
            right = num
        else:
            right = _next_exclusive(dst_index, right + 1, src_blocks)
    if rejections and stats is not None:
        stats.admissibility_rejections += rejections
    return None


def find_operation_between(
    state: PlacementState,
    src: int,
    dst: int,
    policy: AdmissibilityPolicy,
    global_cost: float,
    stats: Optional[SearchStats] = None,
) -> Optional[Operation]:
    """Find an admissible ``Move`` or ``Swap`` from ``src`` towards ``dst``.

    Blocks exclusive to ``src`` are tried in descending share order — the
    paper's proofs reason about the most popular movable block first.
    For each such block a direct move is attempted, then the best swap
    partner on ``dst``.  Returns ``None`` when no admissible operation
    exists between this machine pair.  When ``stats`` is given, feasible
    operations turned down by ``policy`` are counted on it.

    Candidates come straight from the placement state's persistent share
    indices — nothing is copied, rebuilt or sorted per call.  The move
    feasibility check is reduced to its two non-trivial clauses: the
    destination slot (hoisted — capacity cannot change mid-probe) and
    the rack-spread clause; the index walk already guarantees the
    membership preconditions.  Outcome loads and the stock policies'
    admissibility tests are inlined with expressions bit-identical to
    ``MoveOp.outcome`` / ``policy.is_admissible``, so the chosen
    operation and the rejection count match the object-based path
    exactly (pinned by the differential tests).
    """
    load_src = state.load(src)
    load_dst = state.load(dst)
    gap = load_src - load_dst
    if gap <= _TOLERANCE:
        return None
    src_index = state.share_index(src)
    dst_index = state.share_index(dst)
    src_blocks = state.blocks_on_view(src)
    dst_blocks = state.blocks_on_view(dst)
    mode = _policy_mode(policy)
    keeps_spread = state.move_keeps_spread
    dst_open = not state.is_full(dst)
    pair_before = load_src if load_src >= load_dst else load_dst
    improve_bar = pair_before - _TOLERANCE
    if mode == _GAP:
        gap_bar = (1.0 - policy.epsilon) * abs(load_src - load_dst) + _TOLERANCE
    elif mode == _COST:
        src_at_max = not (load_src < global_cost - _TOLERANCE)
        cost_bar = (1.0 - policy.epsilon) * global_cost + _TOLERANCE
    for share_i, block_i in reversed(src_index):
        if block_i in dst_blocks:
            continue
        if share_i <= _TOLERANCE:
            break
        if dst_open and keeps_spread(block_i, src, dst):
            src_after = load_src - share_i
            dst_after = load_dst + share_i
            pair_after = src_after if src_after >= dst_after else dst_after
            if mode == _GAP:
                admissible = (
                    pair_after < improve_bar
                    and abs(src_after - dst_after) <= gap_bar
                )
            elif mode == _ALWAYS:
                admissible = pair_after < improve_bar
            elif mode == _COST:
                admissible = (
                    pair_after < improve_bar
                    and src_at_max
                    and pair_after <= cost_bar
                )
            else:
                admissible = policy.is_admissible(
                    OperationOutcome(
                        src_load_before=load_src,
                        dst_load_before=load_dst,
                        src_load_after=src_after,
                        dst_load_after=dst_after,
                    ),
                    global_cost,
                )
            if admissible:
                return MoveOp(block=block_i, src=src, dst=dst)
            if stats is not None:
                stats.admissibility_rejections += 1
        swap = _find_swap_partner(
            state,
            policy,
            global_cost,
            block_i,
            share_i,
            src,
            dst,
            dst_index,
            src_blocks,
            load_src,
            load_dst,
            mode,
            stats,
        )
        if swap is not None:
            return swap
    return None


class _PairPruner:
    """Epoch-keyed memo of machine pairs proven to admit no operation.

    A probe of ``(src, dst)`` that returns ``None`` can only start
    returning something once the probe's inputs change, and every such
    input change bumps a machine epoch (see
    :meth:`~repro.core.placement.PlacementState.machine_epoch`): the
    endpoints' loads and block sets, and the share or rack spread of any
    resident block — mutations bump *all* holders of the touched block
    precisely so remote spread changes invalidate this memo.  The epsilon
    policy may also read the global objective, so the memo additionally
    requires it unchanged.

    Rejections the memoized probe counted are replayed into ``stats`` on
    every prune, keeping `SearchStats` identical to the naive solver's.

    The memo is **bounded**: it keeps at most ``max_entries`` pairs and
    evicts least-recently-touched entries beyond that, so a long run on
    a large cluster (up to ``M^2`` distinct extreme pairs) cannot grow
    it without bound.  Eviction is safe by construction — losing an
    entry only forfeits a prune; the re-probe recomputes the identical
    result and rejection count, so the operation sequence and
    `SearchStats` totals are unaffected (pinned by the differential
    suite and the bounded-memory regression test).
    """

    __slots__ = ("_state", "_memo", "_max_entries")

    #: Default cap on memoized pairs (~100 bytes each -> a few MB).
    DEFAULT_MAX_ENTRIES = 65536

    def __init__(
        self, state: PlacementState, max_entries: Optional[int] = None
    ) -> None:
        self._state = state
        self._memo: "OrderedDict[Tuple[int, int], Tuple[int, int, float, int]]" = (
            OrderedDict()
        )
        self._max_entries = (
            self.DEFAULT_MAX_ENTRIES if max_entries is None else max_entries
        )

    def __len__(self) -> int:
        return len(self._memo)

    def find(
        self,
        src: int,
        dst: int,
        policy: AdmissibilityPolicy,
        global_cost: float,
        stats: Optional[SearchStats],
    ) -> Optional[Operation]:
        """Memoizing wrapper around :func:`find_operation_between`."""
        state = self._state
        key = (src, dst)
        src_epoch = state.machine_epoch(src)
        dst_epoch = state.machine_epoch(dst)
        memo = self._memo.get(key)
        if (
            memo is not None
            and memo[0] == src_epoch
            and memo[1] == dst_epoch
            and memo[2] == global_cost
        ):
            self._memo.move_to_end(key)
            if stats is not None:
                stats.pairs_pruned += 1
                stats.admissibility_rejections += memo[3]
            return None
        rejections_before = stats.admissibility_rejections if stats else 0
        if stats is not None:
            stats.pairs_probed += 1
        op = find_operation_between(state, src, dst, policy, global_cost, stats)
        if op is None:
            rejections = (
                stats.admissibility_rejections - rejections_before
                if stats
                else 0
            )
            self._memo[key] = (src_epoch, dst_epoch, global_cost, rejections)
            self._memo.move_to_end(key)
            while len(self._memo) > self._max_entries:
                self._memo.popitem(last=False)
        elif memo is not None:
            # The pair produced an operation again; its stale no-op
            # record would only waste a slot.
            del self._memo[key]
        return op


class _IntraRackMemo:
    """Vectorized exhausted-pair memo for the columnar intra-rack phase.

    Stores per rack the last extreme pair ``(src, dst)`` proven to admit
    no operation, with both endpoints' epochs and the objective at proof
    time plus the rejections the probe counted — the array analogue of
    one :class:`_PairPruner` entry.  Because the intra sweep probes at
    most one pair per rack per iteration, a flat ``(R,)`` layout
    suffices, and comparing against the current extreme/epoch columns
    yields the hit mask for the *whole* sweep order in a handful of
    numpy scans instead of one dict lookup per rack.

    Memo organisation cannot change the chosen operation or rejection
    totals (the same argument that makes :class:`_PairPruner` eviction
    safe): a missed hit merely re-probes, and the probe recomputes
    exactly the result and rejections a replay would have reported.
    Only the ``pairs_probed``/``pairs_pruned`` split shifts, which the
    differential suite deliberately does not pin.
    """

    __slots__ = ("src", "dst", "src_ep", "dst_ep", "cost", "rej")

    def __init__(self, num_racks: int) -> None:
        self.src = np.full(num_racks, -1, dtype=np.int64)
        self.dst = np.full(num_racks, -1, dtype=np.int64)
        self.src_ep = np.zeros(num_racks, dtype=np.int64)
        self.dst_ep = np.zeros(num_racks, dtype=np.int64)
        # NaN compares unequal to every objective -> no spurious initial hits.
        self.cost = np.full(num_racks, np.nan, dtype=np.float64)
        self.rej = np.zeros(num_racks, dtype=np.int64)


def _sweep_intra_racks(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    memo: _IntraRackMemo,
    order: np.ndarray,
    high_arr: np.ndarray,
    low_arr: np.ndarray,
    global_cost: float,
    stats: Optional[SearchStats],
) -> Optional[Operation]:
    """Probe the intra-rack extreme pairs in ``order``, memo-accelerated.

    Runs of racks whose memo entry is still valid are skipped in bulk
    (their memoized rejections replayed into ``stats``); only racks that
    changed since their exhaustion proof are actually probed.
    """
    src_arr = high_arr[order]
    dst_arr = low_arr[order]
    epochs = state._machine_epoch  # int column on columnar states
    hit = (
        (memo.src[order] == src_arr)
        & (memo.dst[order] == dst_arr)
        & (memo.src_ep[order] == epochs[src_arr])
        & (memo.dst_ep[order] == epochs[dst_arr])
        & (memo.cost[order] == global_cost)
    )
    pos = 0
    for miss in np.nonzero(~hit)[0]:
        miss = int(miss)
        if stats is not None and miss > pos:
            stats.pairs_pruned += miss - pos
            stats.admissibility_rejections += int(
                memo.rej[order[pos:miss]].sum()
            )
        rack = int(order[miss])
        src = int(src_arr[miss])
        dst = int(dst_arr[miss])
        before = stats.admissibility_rejections if stats is not None else 0
        if stats is not None:
            stats.pairs_probed += 1
        op = find_operation_between(state, src, dst, policy, global_cost, stats)
        if op is not None:
            return op
        memo.src[rack] = src
        memo.dst[rack] = dst
        memo.src_ep[rack] = epochs[src]
        memo.dst_ep[rack] = epochs[dst]
        memo.cost[rack] = global_cost
        memo.rej[rack] = (
            stats.admissibility_rejections - before if stats is not None else 0
        )
        pos = miss + 1
    remaining = len(order) - pos
    if stats is not None and remaining > 0:
        stats.pairs_pruned += remaining
        stats.admissibility_rejections += int(memo.rej[order[pos:]].sum())
    return None


def balance_node_level(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> SearchStats:
    """Algorithm 1: balance loads with moves/swaps between extremes.

    Mutates ``state`` in place and returns the run's
    :class:`SearchStats`.  ``policy`` defaults to
    :class:`~repro.core.admissibility.AlwaysAdmissible` (the verbatim
    algorithm); pass an epsilon policy for Section IV's budgeted variant.
    """
    policy = policy or AlwaysAdmissible()
    started = time.perf_counter()
    pruner = _PairPruner(state)
    current_cost = state.cost()
    stats = SearchStats(initial_cost=current_cost, final_cost=current_cost)
    while max_operations is None or stats.total_operations < max_operations:
        stats.iterations += 1
        src = state.argmax_machine()
        dst = state.argmin_machine()
        op = pruner.find(src, dst, policy, current_cost, stats)
        if op is None:
            stats.converged = True
            break
        cross = op.is_cross_rack(state)
        op.apply(state)
        current_cost = state.cost()
        stats.record(op, cross, log_operations)
        if log_operations:
            stats.cost_trajectory.append(current_cost)
    stats.final_cost = current_cost
    stats.elapsed_seconds = time.perf_counter() - started
    _flush_search_metrics("node", stats, state)
    _LOG.debug(
        "balance_node_level done ops=%d rejections=%d converged=%s "
        "cost=%.6g->%.6g elapsed=%.4fs",
        stats.total_operations, stats.admissibility_rejections,
        stats.converged, stats.initial_cost, stats.final_cost,
        stats.elapsed_seconds,
    )
    return stats


def _rack_pairs_by_gap(state: PlacementState) -> List[Tuple[int, int]]:
    """Ordered rack pairs ranked by extreme-machine load gap, largest first.

    The gap between the source rack's hottest machine and the destination
    rack's coldest machine bounds what an inter-rack operation between the
    pair's extremes can achieve.  Ranking by *total* rack load (the old
    behaviour) let a large rack of lightly-loaded machines outrank a small
    rack containing the true hottest machine, stranding its load; see the
    heterogeneous-rack regression test.  Pairs with no positive gap cannot
    yield an improving operation and are dropped.
    """
    topo = state.topology
    racks = topo.racks
    if topo.num_racks < 2:
        return []
    hottest = [
        state.load(state.argmax_machine_in_rack(rack)) for rack in racks
    ]
    coldest = [
        state.load(state.argmin_machine_in_rack(rack)) for rack in racks
    ]
    ranked = []
    for src_rack in racks:
        for dst_rack in racks:
            if src_rack == dst_rack:
                continue
            gap = hottest[src_rack] - coldest[dst_rack]
            if gap > _TOLERANCE:
                ranked.append((-gap, src_rack, dst_rack))
    ranked.sort()
    return [(src_rack, dst_rack) for _, src_rack, dst_rack in ranked]


def _ranked_rack_pairs_lazy(
    hottest: np.ndarray, coldest: np.ndarray
) -> Iterator[Tuple[int, int]]:
    """Rack pairs in exactly ``_rack_pairs_by_gap`` order, lazily.

    Enumerates ``(src_rack, dst_rack)`` in ascending ``(-gap, src, dst)``
    order without materializing the ``R^2`` pair matrix: racks are
    sorted once by hottest (descending) and coldest (ascending) load,
    and a frontier heap walks the implied sorted-sum grid (the classic
    lazy "sorted A + B" enumeration).  Gaps along the grid are monotone,
    and stable argsort puts tied racks in ascending id order, so each
    grid cell's key is strictly greater than its predecessors' — the
    heap therefore pops pairs in the exact order the eager tuple sort
    produces.  Pairs stop at the first non-positive gap (everything
    after is smaller still).

    Most Algorithm 2 iterations consume only the first few pairs before
    finding an operation, so this turns a per-iteration ``O(R^2 log R)``
    Python sort into ``O(k log R)`` for ``k`` consumed pairs.
    """
    num_racks = len(hottest)
    if num_racks < 2:
        return
    by_hot = np.argsort(-hottest, kind="stable")
    by_cold = np.argsort(coldest, kind="stable")
    hot_sorted = hottest[by_hot]
    cold_sorted = coldest[by_cold]
    frontier = [
        (
            -(float(hot_sorted[0]) - float(cold_sorted[0])),
            int(by_hot[0]),
            int(by_cold[0]),
            0,
            0,
        )
    ]
    while frontier:
        neg_gap, src_rack, dst_rack, i, j = heapq.heappop(frontier)
        if -neg_gap <= _TOLERANCE:
            return
        if src_rack != dst_rack:
            yield src_rack, dst_rack
        if j + 1 < num_racks:
            heapq.heappush(frontier, (
                -(float(hot_sorted[i]) - float(cold_sorted[j + 1])),
                int(by_hot[i]),
                int(by_cold[j + 1]),
                i,
                j + 1,
            ))
        if j == 0 and i + 1 < num_racks:
            heapq.heappush(frontier, (
                -(float(hot_sorted[i + 1]) - float(cold_sorted[0])),
                int(by_hot[i + 1]),
                int(by_cold[0]),
                i + 1,
                0,
            ))


def _find_rack_aware_operation(
    state: PlacementState,
    policy: AdmissibilityPolicy,
    pruner: _PairPruner,
    global_cost: float,
    stats: Optional[SearchStats] = None,
    intra_memo: Optional[_IntraRackMemo] = None,
) -> Optional[Operation]:
    """One admissible operation for Algorithm 2's combined search space.

    When the state exposes vectorized bulk extremes (the columnar
    engine's :meth:`~repro.core.columnar.ColumnarPlacementState.rack_extremes`),
    every rack's extreme machine and load come from one pass of segment
    reductions and the inter-rack pair ranking is enumerated lazily; the
    probe order — and hence the chosen operation — is identical to the
    per-rack query path (pinned by the columnar differential tests).
    No state mutation happens between probes, so extremes computed once
    stay valid for the whole call.
    """
    rack_extremes = getattr(state, "rack_extremes", None)
    if rack_extremes is not None:
        # Columnar fast path.  Intra-rack phase: every rack's extremes
        # come from one pass of segment reductions; the worst-rack-first
        # order is the eager path's descending (gap, high, low) tuple
        # sort, expressed as a lexsort over the same columns.
        high_arr, low_arr, hottest, coldest = rack_extremes()
        gaps = hottest - coldest
        idx = np.nonzero(gaps > _TOLERANCE)[0]
        if len(idx):
            order = idx[np.lexsort((
                -low_arr[idx], -high_arr[idx], -gaps[idx]
            ))]
            if intra_memo is not None:
                op = _sweep_intra_racks(
                    state, policy, intra_memo, order,
                    high_arr, low_arr, global_cost, stats,
                )
                if op is not None:
                    return op
            else:
                for rack in order:
                    op = pruner.find(
                        int(high_arr[rack]), int(low_arr[rack]),
                        policy, global_cost, stats,
                    )
                    if op is not None:
                        return op
        # Inter-rack phase, lazily ranked.
        for src_rack, dst_rack in _ranked_rack_pairs_lazy(hottest, coldest):
            op = pruner.find(
                int(high_arr[src_rack]), int(low_arr[dst_rack]),
                policy, global_cost, stats,
            )
            if op is not None:
                return op
        return None
    # Intra-rack phase: balance the extremes of each rack, worst rack first.
    intra = []
    for rack in state.topology.racks:
        high = state.argmax_machine_in_rack(rack)
        low = state.argmin_machine_in_rack(rack)
        gap = state.load(high) - state.load(low)
        if gap > _TOLERANCE:
            intra.append((gap, high, low))
    intra.sort(reverse=True)
    for _, high, low in intra:
        op = pruner.find(high, low, policy, global_cost, stats)
        if op is not None:
            return op
    # Inter-rack phase: RackMove / RackSwap between extreme machines of
    # rack pairs, largest extreme-machine gaps first.
    for src_rack, dst_rack in _rack_pairs_by_gap(state):
        src = state.argmax_machine_in_rack(src_rack)
        dst = state.argmin_machine_in_rack(dst_rack)
        op = pruner.find(src, dst, policy, global_cost, stats)
        if op is not None:
            return op
    return None


def balance_rack_aware(
    state: PlacementState,
    policy: Optional[AdmissibilityPolicy] = None,
    max_operations: Optional[int] = None,
    log_operations: bool = False,
) -> SearchStats:
    """Algorithm 2: rack-aware balancing with all four operations.

    Performs intra-rack moves/swaps between each rack's extremes and
    inter-rack ``RackMove``/``RackSwap`` operations between rack pairs
    until no admissible operation remains.  Every operation preserves each
    block's rack-spread requirement ``rho_i``.
    """
    policy = policy or AlwaysAdmissible()
    started = time.perf_counter()
    pruner = _PairPruner(state)
    intra_memo = (
        _IntraRackMemo(state.topology.num_racks)
        if getattr(state, "rack_extremes", None) is not None
        else None
    )
    current_cost = state.cost()
    stats = SearchStats(initial_cost=current_cost, final_cost=current_cost)
    while max_operations is None or stats.total_operations < max_operations:
        stats.iterations += 1
        op = _find_rack_aware_operation(
            state, policy, pruner, current_cost, stats, intra_memo
        )
        if op is None:
            stats.converged = True
            break
        cross = op.is_cross_rack(state)
        op.apply(state)
        current_cost = state.cost()
        stats.record(op, cross, log_operations)
        if log_operations:
            stats.cost_trajectory.append(current_cost)
    stats.final_cost = current_cost
    stats.elapsed_seconds = time.perf_counter() - started
    _flush_search_metrics("rack", stats, state)
    _LOG.debug(
        "balance_rack_aware done ops=%d rejections=%d converged=%s "
        "cost=%.6g->%.6g elapsed=%.4fs",
        stats.total_operations, stats.admissibility_rejections,
        stats.converged, stats.initial_cost, stats.final_cost,
        stats.elapsed_seconds,
    )
    return stats
