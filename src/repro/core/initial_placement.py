"""Greedy initial block placement: Algorithm 4 of the paper.

Aurora's block placement controller handles a freshly written block with a
greedy rule:

* if the block was written by a task, the first replica lands on the
  writer's machine (HDFS's local-write rule); otherwise it lands on the
  lowest-loaded machine in the lowest-loaded rack;
* replicas ``2 .. rho_i`` go to the lowest-loaded machine of the next
  lowest-loaded racks, one rack each, establishing the rack spread;
* the remaining ``k_i - rho_i`` replicas go to the lowest-loaded machines
  among the ``rho_i`` racks already chosen.

Machines that are full or already hold the block are skipped; if a chosen
rack cannot host a replica the next-lowest-loaded rack is used, so the
placement degrades gracefully on nearly full clusters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.instance import BlockSpec
from repro.core.placement import PlacementState
from repro.errors import CapacityExceededError

__all__ = ["place_block", "place_all_blocks"]


def _eligible_machine(
    state: PlacementState, block_id: int, rack: int
) -> Optional[int]:
    """Lowest-loaded machine in ``rack`` that can accept the block."""
    candidates = [
        machine
        for machine in state.topology.machines_in_rack(rack)
        if state.can_add(block_id, machine)
    ]
    if not candidates:
        return None
    return min(candidates, key=state.load)


def _racks_by_load(state: PlacementState, exclude: Sequence[int]) -> List[int]:
    """Racks sorted by ascending total load, minus ``exclude``."""
    excluded = set(exclude)
    racks = [rack for rack in state.topology.racks if rack not in excluded]
    racks.sort(key=state.rack_load)
    return racks


def place_block(
    state: PlacementState,
    spec: BlockSpec,
    writer_machine: Optional[int] = None,
) -> List[int]:
    """Algorithm 4: place all ``k_i`` replicas of a new block.

    ``writer_machine`` is the machine of the task that produced the block,
    or ``None`` for an external write.  Returns the machines chosen, in
    placement order.  Raises :class:`CapacityExceededError` if the cluster
    cannot host all replicas.
    """
    block_id = spec.block_id
    chosen: List[int] = []
    chosen_racks: List[int] = []

    # First replica: writer-local, or globally least-loaded machine in the
    # least-loaded rack.
    first: Optional[int] = None
    if writer_machine is not None and state.can_add(block_id, writer_machine):
        first = writer_machine
    if first is None:
        for rack in _racks_by_load(state, exclude=()):
            first = _eligible_machine(state, block_id, rack)
            if first is not None:
                break
    if first is None:
        raise CapacityExceededError(
            f"no machine can host the first replica of block {block_id}"
        )
    state.add_replica(block_id, first)
    chosen.append(first)
    chosen_racks.append(state.topology.rack_of[first])

    # Replicas 2 .. rho_i: one per additional rack, ascending rack load.
    while len(chosen_racks) < spec.rack_spread:
        placed = False
        for rack in _racks_by_load(state, exclude=chosen_racks):
            machine = _eligible_machine(state, block_id, rack)
            if machine is None:
                continue
            state.add_replica(block_id, machine)
            chosen.append(machine)
            chosen_racks.append(rack)
            placed = True
            break
        if not placed:
            raise CapacityExceededError(
                f"cannot satisfy rack spread {spec.rack_spread} for block "
                f"{block_id}: only {len(chosen_racks)} racks have space"
            )

    # Remaining replicas: lowest-loaded machines within the chosen racks,
    # spilling into other racks only when the chosen ones are full.
    while len(chosen) < spec.replication_factor:
        candidates = []
        for rack in chosen_racks:
            machine = _eligible_machine(state, block_id, rack)
            if machine is not None:
                candidates.append(machine)
        if not candidates:
            for rack in _racks_by_load(state, exclude=chosen_racks):
                machine = _eligible_machine(state, block_id, rack)
                if machine is not None:
                    candidates.append(machine)
                    chosen_racks.append(rack)
                    break
        if not candidates:
            raise CapacityExceededError(
                f"cluster cannot host {spec.replication_factor} replicas of "
                f"block {block_id}"
            )
        machine = min(candidates, key=state.load)
        state.add_replica(block_id, machine)
        chosen.append(machine)
    return chosen


def place_all_blocks(
    state: PlacementState, writer_machines: Optional[dict] = None
) -> None:
    """Place every block of the state's problem with Algorithm 4.

    ``writer_machines`` optionally maps block ids to the machine of the
    producing task.  Blocks are placed in descending popularity order so
    that hot blocks get first pick of the least-loaded machines.
    """
    writers = writer_machines or {}
    specs = sorted(state.problem, key=lambda s: s.popularity, reverse=True)
    for spec in specs:
        if state.replica_count(spec.block_id) > 0:
            continue
        place_block(state, spec, writer_machine=writers.get(spec.block_id))
