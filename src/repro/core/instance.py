"""Problem instances for the three block placement variants.

The paper studies three integer programs (Section III), all minimizing the
maximum popularity-weighted machine load ``lambda``:

* **BP-Node** — per-block replication factor ``k_i`` is given; the only
  fault-tolerance constraint is node-level (at most one replica of a block
  per machine) plus machine capacities.
* **BP-Rack** — additionally every block must be spread over at least
  ``rho_i`` racks.
* **BP-Replicate** — the solver also chooses ``k_i`` subject to
  ``k_i >= k_low_i`` and a global replication budget ``sum_i k_i <= beta``;
  each replica of block ``i`` carries popularity ``P_i / k_i``.

:class:`PlacementProblem` captures all three variants; the variant is
derived from which constraints are active (:meth:`PlacementProblem.variant`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.errors import InvalidProblemError, UnknownBlockError

__all__ = ["BlockSpec", "PlacementProblem", "ProblemVariant"]


class ProblemVariant(enum.Enum):
    """Which of the paper's three ILPs an instance corresponds to."""

    BP_NODE = "bp-node"
    BP_RACK = "bp-rack"
    BP_REPLICATE = "bp-replicate"


@dataclass(frozen=True)
class BlockSpec:
    """Static description of one file block.

    Parameters
    ----------
    block_id:
        Dense integer id of the block.
    popularity:
        Total popularity ``P_i``: the number of accesses to the block's
        content over the measurement period ``T``.
    replication_factor:
        Node-level replication factor ``k_i``.  For BP-Node and BP-Rack
        this is the fixed replica count; for BP-Replicate it is the
        *minimum* count ``k_low_i`` required for reliability.
    rack_spread:
        Rack-level fault-tolerance requirement ``rho_i``: the minimum
        number of distinct racks that must hold a replica.  ``1`` disables
        the rack constraint (BP-Node).
    """

    block_id: int
    popularity: float
    replication_factor: int = 3
    rack_spread: int = 1

    def __post_init__(self) -> None:
        if self.block_id < 0:
            raise InvalidProblemError("block_id must be non-negative")
        if self.popularity < 0:
            raise InvalidProblemError(
                f"block {self.block_id}: popularity must be non-negative"
            )
        if self.replication_factor < 1:
            raise InvalidProblemError(
                f"block {self.block_id}: replication_factor must be >= 1"
            )
        if not 1 <= self.rack_spread <= self.replication_factor:
            raise InvalidProblemError(
                f"block {self.block_id}: rack_spread must be in "
                f"[1, replication_factor] (got {self.rack_spread})"
            )

    @property
    def per_replica_popularity(self) -> float:
        """Popularity share ``p_i = P_i / k_i`` carried by each replica."""
        return self.popularity / self.replication_factor

    def with_replication_factor(self, factor: int) -> "BlockSpec":
        """Copy of this spec with a different node-level factor."""
        return BlockSpec(
            block_id=self.block_id,
            popularity=self.popularity,
            replication_factor=factor,
            rack_spread=min(self.rack_spread, factor),
        )


@dataclass(frozen=True)
class PlacementProblem:
    """One instance of the block placement problem.

    Parameters
    ----------
    topology:
        The cluster of machines and racks.
    blocks:
        The block specifications; ids must be unique.
    replication_budget:
        The total budget ``beta`` on ``sum_i k_i`` for BP-Replicate, or
        ``None`` when replication factors are fixed (BP-Node / BP-Rack).
    """

    topology: ClusterTopology
    blocks: tuple
    replication_budget: Optional[int] = None
    _by_id: Mapping[int, BlockSpec] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        blocks = tuple(self.blocks)
        object.__setattr__(self, "blocks", blocks)
        by_id: Dict[int, BlockSpec] = {}
        for spec in blocks:
            if spec.block_id in by_id:
                raise InvalidProblemError(f"duplicate block id {spec.block_id}")
            by_id[spec.block_id] = spec
        object.__setattr__(self, "_by_id", by_id)
        for spec in blocks:
            if spec.replication_factor > self.topology.num_machines:
                raise InvalidProblemError(
                    f"block {spec.block_id}: replication factor "
                    f"{spec.replication_factor} exceeds machine count "
                    f"{self.topology.num_machines}"
                )
            if spec.rack_spread > self.topology.num_racks:
                raise InvalidProblemError(
                    f"block {spec.block_id}: rack spread {spec.rack_spread} "
                    f"exceeds rack count {self.topology.num_racks}"
                )
        total_replicas = sum(s.replication_factor for s in blocks)
        if self.replication_budget is not None:
            if self.replication_budget < total_replicas:
                raise InvalidProblemError(
                    f"replication budget {self.replication_budget} is below the "
                    f"minimum replica count {total_replicas}"
                )
        if total_replicas > self.topology.total_capacity():
            raise InvalidProblemError(
                f"total replicas {total_replicas} exceed cluster capacity "
                f"{self.topology.total_capacity()}"
            )

    # -- accessors ---------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of distinct blocks ``|B|``."""
        return len(self.blocks)

    def block(self, block_id: int) -> BlockSpec:
        """Look up a block spec by id."""
        try:
            return self._by_id[block_id]
        except KeyError:
            raise UnknownBlockError(f"unknown block id {block_id}") from None

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._by_id

    def __iter__(self) -> Iterator[BlockSpec]:
        return iter(self.blocks)

    def block_ids(self) -> Iterable[int]:
        """All block ids in instance order."""
        return (spec.block_id for spec in self.blocks)

    def variant(self) -> ProblemVariant:
        """Classify the instance into one of the paper's three ILPs."""
        if self.replication_budget is not None:
            return ProblemVariant.BP_REPLICATE
        if any(spec.rack_spread > 1 for spec in self.blocks):
            return ProblemVariant.BP_RACK
        return ProblemVariant.BP_NODE

    def total_popularity(self) -> float:
        """Sum of total block popularities ``sum_i P_i``.

        This is invariant under replication: replicas share their block's
        popularity, so the cluster-wide load mass never changes.
        """
        return sum(spec.popularity for spec in self.blocks)

    def max_per_replica_popularity(self) -> float:
        """``p_max``: the largest per-replica popularity in the instance."""
        if not self.blocks:
            return 0.0
        return max(spec.per_replica_popularity for spec in self.blocks)

    def minimum_total_replicas(self) -> int:
        """Sum of the (minimum) replication factors over all blocks."""
        return sum(spec.replication_factor for spec in self.blocks)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_popularities(
        cls,
        topology: ClusterTopology,
        popularities: Sequence[float],
        replication_factor: int = 3,
        rack_spread: int = 1,
        replication_budget: Optional[int] = None,
    ) -> "PlacementProblem":
        """Build an instance with uniform ``k_i`` and ``rho_i`` settings."""
        blocks = tuple(
            BlockSpec(
                block_id=i,
                popularity=float(p),
                replication_factor=replication_factor,
                rack_spread=rack_spread,
            )
            for i, p in enumerate(popularities)
        )
        return cls(
            topology=topology, blocks=blocks, replication_budget=replication_budget
        )
