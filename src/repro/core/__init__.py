"""Core algorithms of the paper: problem models, local search, Rep-Factor.

This package is the paper's primary contribution and is deliberately free
of any simulator dependency — it operates on
:class:`~repro.core.instance.PlacementProblem` /
:class:`~repro.core.placement.PlacementState` values and can be used
standalone for offline placement optimization.
"""

from repro.core.admissibility import (
    AdmissibilityPolicy,
    AlwaysAdmissible,
    RelativeCostPolicy,
    RelativeGapPolicy,
    theorem9_approximation_factor,
    theorem9_iteration_bound,
)
from repro.core.bounds import (
    average_load_bound,
    combined_lower_bound,
    empirical_ratio,
    max_share_bound,
)
from repro.core.columnar import ColumnarPlacementState, columnar_from_state
from repro.core.initial_placement import place_all_blocks, place_block
from repro.core.instance import BlockSpec, PlacementProblem, ProblemVariant
from repro.core.local_search import (
    SearchStats,
    balance_node_level,
    balance_rack_aware,
)
from repro.core.operations import MoveOp, Operation, OperationOutcome, SwapOp
from repro.core.placement import PlacementState
from repro.core.relaxation import certified_lower_bound, lp_lower_bound
from repro.core.rep_factor import (
    RepFactorResult,
    compute_replication_factors,
    factors_for_problem,
    max_share,
    verify_optimal_factors,
)

__all__ = [
    "AdmissibilityPolicy",
    "AlwaysAdmissible",
    "RelativeCostPolicy",
    "RelativeGapPolicy",
    "theorem9_approximation_factor",
    "theorem9_iteration_bound",
    "average_load_bound",
    "combined_lower_bound",
    "empirical_ratio",
    "max_share_bound",
    "place_all_blocks",
    "place_block",
    "BlockSpec",
    "PlacementProblem",
    "ProblemVariant",
    "SearchStats",
    "balance_node_level",
    "balance_rack_aware",
    "MoveOp",
    "Operation",
    "OperationOutcome",
    "SwapOp",
    "PlacementState",
    "ColumnarPlacementState",
    "columnar_from_state",
    "certified_lower_bound",
    "lp_lower_bound",
    "RepFactorResult",
    "compute_replication_factors",
    "factors_for_problem",
    "max_share",
    "verify_optimal_factors",
]
