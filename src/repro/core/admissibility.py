"""Epsilon-admissibility policies (paper Section IV, Theorem 9).

The paper trades solution optimality for reconfiguration cost by only
performing *admissible* local-search operations: given ``epsilon > 0``, an
operation is admissible when it "reduces solution cost by at least
``epsilon * SOL``".  Larger epsilons therefore demand bigger improvements
per operation, which suppresses block movement at the price of a looser
``2 + epsilon`` / ``4 + 3*epsilon`` approximation factor, and bounds the
iteration count by ``log(SOL/OPT) / -log(1 - epsilon)``.

Two readings of that sentence are implemented (see DESIGN.md):

* :class:`RelativeCostPolicy` — the literal Theorem 9 semantics: the
  operation must shrink the *global* objective (max machine load) by a
  factor of at least ``epsilon``.  Used by the theory tests; for moderate
  epsilon almost no single block move qualifies, which is why the
  practical system uses the gap policy below.
* :class:`RelativeGapPolicy` — the operation, acting on a machine pair
  ``(m, n)``, must close at least an ``epsilon`` fraction of the pair's
  load gap.  This reading reproduces the monotone balance-vs-movement
  trade-off of the paper's Figures 3-5 and is Aurora's default.
* :class:`AlwaysAdmissible` — the ``epsilon = 0`` limit: any strictly
  improving operation is performed (Algorithms 1 and 2 verbatim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.operations import OperationOutcome
from repro.errors import InvalidProblemError

__all__ = [
    "AdmissibilityPolicy",
    "AlwaysAdmissible",
    "RelativeGapPolicy",
    "RelativeCostPolicy",
    "theorem9_iteration_bound",
    "theorem9_approximation_factor",
]

_TOLERANCE = 1e-12


@runtime_checkable
class AdmissibilityPolicy(Protocol):
    """Decides whether a strictly improving operation is worth its cost."""

    def is_admissible(self, outcome: OperationOutcome, global_cost: float) -> bool:
        """Whether the operation described by ``outcome`` should be applied.

        ``global_cost`` is the current objective value ``SOL`` (maximum
        machine load over the whole cluster) before the operation.
        """
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class AlwaysAdmissible:
    """Accept every strictly improving operation (``epsilon = 0``)."""

    def is_admissible(self, outcome: OperationOutcome, global_cost: float) -> bool:
        """True iff the pair cost strictly improves."""
        return outcome.improves


@dataclass(frozen=True)
class RelativeGapPolicy:
    """Admit operations closing >= ``epsilon`` of the endpoint load gap.

    With ``epsilon`` close to 0 this degenerates to
    :class:`AlwaysAdmissible`; with ``epsilon`` close to 1 only
    near-perfectly balancing operations are performed, so far fewer blocks
    move.
    """

    epsilon: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 1.0:
            raise InvalidProblemError(
                f"epsilon must be in [0, 1), got {self.epsilon}"
            )

    def is_admissible(self, outcome: OperationOutcome, global_cost: float) -> bool:
        """True iff the pair gap shrinks to <= (1 - epsilon) of its value."""
        if not outcome.improves:
            return False
        threshold = (1.0 - self.epsilon) * outcome.pair_gap_before
        return outcome.pair_gap_after <= threshold + _TOLERANCE


@dataclass(frozen=True)
class RelativeCostPolicy:
    """Admit operations shrinking the global cost by >= ``epsilon * SOL``.

    This is the literal Theorem 9 statement.  The post-operation global
    cost is conservatively lower-bounded by the pair cost after the
    operation: if even the touched pair stays above ``(1 - epsilon) *
    SOL``, the global maximum certainly does.
    """

    epsilon: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 1.0:
            raise InvalidProblemError(
                f"epsilon must be in [0, 1), got {self.epsilon}"
            )

    def is_admissible(self, outcome: OperationOutcome, global_cost: float) -> bool:
        """True iff the operation can shrink ``SOL`` by factor ``epsilon``.

        Only operations whose source machine carries the global maximum
        load can reduce the global cost at all, so the check is
        ``pair_cost_after <= (1 - epsilon) * SOL`` and the source must be
        (one of) the maximum machines.
        """
        if not outcome.improves:
            return False
        if outcome.src_load_before < global_cost - _TOLERANCE:
            return False
        return outcome.pair_cost_after <= (1.0 - self.epsilon) * global_cost + _TOLERANCE


def theorem9_iteration_bound(sol: float, opt: float, epsilon: float) -> float:
    """Theorem 9's bound on the number of admissible operations.

    Each admissible operation reduces the cost by a factor ``1 - epsilon``,
    so at most ``log(SOL / OPT) / -log(1 - epsilon)`` operations fit
    between the initial cost ``sol`` and the optimum ``opt``.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidProblemError("epsilon must be in (0, 1) for the bound")
    if opt <= 0 or sol <= 0:
        raise InvalidProblemError("sol and opt must be positive")
    if sol <= opt:
        return 0.0
    return math.log(sol / opt) / -math.log(1.0 - epsilon)


def theorem9_approximation_factor(rack_aware: bool, epsilon: float) -> float:
    """Approximation factor under epsilon-admissible search.

    ``2 + epsilon`` for BP-Node (Algorithm 1), ``4 + 3*epsilon`` for
    BP-Rack / BP-Replicate (Algorithm 2, with or without Algorithm 3).
    """
    if epsilon < 0:
        raise InvalidProblemError("epsilon must be non-negative")
    if rack_aware:
        return 4.0 + 3.0 * epsilon
    return 2.0 + epsilon
