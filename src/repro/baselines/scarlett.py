"""Scarlett baseline (Ananthanarayanan et al., EuroSys 2011).

Scarlett "replicates blocks dynamically based on load distribution" at
*file* granularity under a storage budget, with two budget-distribution
heuristics — **priority** and **round-robin** — and places extra replicas
to equalize *storage*, not popularity load.  The paper compares Aurora
against Scarlett-priority ("which achieves better performance than round
robin in experiments") and highlights the differences Aurora fixes:
Scarlett "does not consider initial block placement and dynamic load
balancing" and needs hand-tuned parameters where Algorithm 3 computes
optimal factors.

This module provides the factor computation
(:func:`scarlett_factors`) and a periodic driver
(:class:`ScarlettSystem`) mirroring Aurora's integration points so the
two systems are swappable in the experiment harnesses.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.dfs.namenode import Namenode
from repro.errors import InvalidProblemError
from repro.monitor.usage import UsageMonitor
from repro.simulation.engine import Simulation

__all__ = ["ScarlettScheme", "ScarlettConfig", "scarlett_factors",
           "ScarlettSystem"]


class ScarlettScheme(enum.Enum):
    """Scarlett's two budget-distribution heuristics."""

    PRIORITY = "priority"
    ROUND_ROBIN = "round-robin"


@dataclass(frozen=True)
class ScarlettConfig:
    """Scarlett's knobs (the paper notes it "requires more input
    parameters" than Aurora).

    ``desired_per_access`` converts a file's observed access count within
    the learning window into its desired replica count — Scarlett sizes
    replication to observed concurrent usage.
    """

    budget_blocks: int
    scheme: ScarlettScheme = ScarlettScheme.PRIORITY
    base_replication: int = 3
    desired_per_access: float = 1.0
    window: float = 2 * 3600.0
    period: float = 3600.0

    def __post_init__(self) -> None:
        if self.budget_blocks < 0:
            raise InvalidProblemError("budget_blocks must be non-negative")
        if self.base_replication < 1:
            raise InvalidProblemError("base_replication must be >= 1")
        if self.desired_per_access <= 0:
            raise InvalidProblemError("desired_per_access must be positive")
        if self.window <= 0 or self.period <= 0:
            raise InvalidProblemError("window and period must be positive")


def scarlett_factors(
    popularities: Mapping[int, float],
    base_factors: Mapping[int, int],
    budget_blocks: int,
    scheme: ScarlettScheme,
    desired_per_access: float = 1.0,
    max_factor: Optional[int] = None,
) -> Dict[int, int]:
    """Scarlett's replication factors for one period.

    Each file's *desired* factor is ``max(base, ceil(accesses *
    desired_per_access))``.  The extra-replica budget is then distributed:

    * **priority**: hottest files first, each raised all the way to its
      desired factor while budget remains;
    * **round-robin**: one extra replica per file per round, hottest
      first, cycling until the budget or all desires are exhausted.
    """
    if set(popularities) != set(base_factors):
        raise InvalidProblemError("popularities and base_factors must share keys")
    desired: Dict[int, int] = {}
    for item, accesses in popularities.items():
        want = max(
            base_factors[item],
            int(math.ceil(accesses * desired_per_access)),
        )
        if max_factor is not None:
            want = min(want, max_factor)
        desired[item] = want
    factors = dict(base_factors)
    remaining = budget_blocks
    order = sorted(popularities, key=lambda i: popularities[i], reverse=True)
    if scheme is ScarlettScheme.PRIORITY:
        for item in order:
            if remaining <= 0:
                break
            grant = min(desired[item] - factors[item], remaining)
            if grant > 0:
                factors[item] += grant
                remaining -= grant
    else:
        progressed = True
        while remaining > 0 and progressed:
            progressed = False
            for item in order:
                if remaining <= 0:
                    break
                if factors[item] < desired[item]:
                    factors[item] += 1
                    remaining -= 1
                    progressed = True
    return factors


class ScarlettSystem:
    """Periodic Scarlett driver over the DFS simulator.

    Observes block accesses through a sliding window (like Aurora's usage
    monitor), aggregates them per file, recomputes file factors each
    period and pushes them via ``set_replication``.  Placement of the new
    replicas uses the namenode's default storage-load metric — Scarlett
    equalizes disk usage, not popularity load.
    """

    def __init__(self, namenode: Namenode, config: ScarlettConfig) -> None:
        self.namenode = namenode
        self.config = config
        self.monitor = UsageMonitor(window=config.window)
        namenode.access_listeners.append(self.monitor.record_access)
        self.periods_run = 0
        self.replicas_granted = 0

    def file_popularities(self, now: float) -> Dict[int, float]:
        """Window access counts aggregated from blocks to files."""
        per_block = self.monitor.snapshot(now)
        per_file: Dict[int, float] = {}
        for block_id, count in per_block.items():
            if block_id not in self.namenode.blockmap:
                continue
            file_id = self.namenode.blockmap.meta(block_id).file_id
            per_file[file_id] = per_file.get(file_id, 0.0) + count
        return per_file

    def optimize(self, now: Optional[float] = None) -> Dict[int, int]:
        """One Scarlett period: recompute and apply file factors."""
        now = self.namenode.now if now is None else now
        popularity = self.file_popularities(now)
        if not popularity:
            self.periods_run += 1
            return {}
        base = {file_id: self.config.base_replication for file_id in popularity}
        # Normalize access counts per file to a per-block concurrency
        # proxy: accesses divided by the file's block count approximates
        # concurrent jobs on each block.
        num_blocks = {
            file_id: max(1, self.namenode.file_by_id(file_id).num_blocks)
            for file_id in popularity
        }
        concurrency = {
            file_id: popularity[file_id] / num_blocks[file_id]
            for file_id in popularity
        }
        factors = scarlett_factors(
            concurrency,
            base,
            budget_blocks=self.config.budget_blocks,
            scheme=self.config.scheme,
            desired_per_access=self.config.desired_per_access,
            max_factor=self.namenode.topology.num_machines,
        )
        for file_id, factor in factors.items():
            meta = self.namenode.file_by_id(file_id)
            for block_id in meta.block_ids:
                current = self.namenode.blockmap.meta(block_id)
                if current.replication_factor != factor:
                    if factor > current.replication_factor:
                        self.replicas_granted += factor - current.replication_factor
                    self.namenode.set_replication(block_id, factor)
        self.periods_run += 1
        return factors

    def run_periodic(self, sim: Simulation) -> None:
        """Schedule :meth:`optimize` every ``period`` seconds."""
        sim.schedule_periodic(self.config.period, self.optimize)
