"""Baseline systems the paper compares against.

* default HDFS random placement lives in
  :class:`repro.dfs.policies.DefaultHdfsPolicy`;
* Scarlett (priority / round-robin) in :mod:`repro.baselines.scarlett`;
* DARE-style replicate-on-read in :mod:`repro.baselines.dare`.
"""

from repro.baselines.dare import DareConfig, DareSystem
from repro.baselines.scarlett import (
    ScarlettConfig,
    ScarlettScheme,
    ScarlettSystem,
    scarlett_factors,
)

__all__ = [
    "DareConfig",
    "DareSystem",
    "ScarlettConfig",
    "ScarlettScheme",
    "ScarlettSystem",
    "scarlett_factors",
]
