"""DARE-style replicate-on-read baseline (Abad et al., CLUSTER 2011).

"DARE replicates popular blocks with a probability p after each read
access.  Unpopular blocks are evicted according to a least-recently used
(LRU) policy.  However, DARE does not consider the placement of blocks in
the system."  Aurora's conclusion also lists replication-on-read as
future work, so this baseline doubles as that extension:

* every *remote* read of a block creates, with probability ``p``, a new
  replica on the reading machine (the data already crossed the network,
  so the copy is nearly free — the paper's "use remote map tasks to
  facilitate block replication" optimization);
* a storage budget bounds the extra replicas; when exceeded, the
  least-recently-used extra replicas are evicted (never below a block's
  base replication factor or rack spread).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dfs.namenode import Namenode
from repro.errors import InvalidProblemError

__all__ = ["DareConfig", "DareSystem"]


@dataclass(frozen=True)
class DareConfig:
    """DARE's knobs: replication probability and extra-storage budget."""

    probability: float = 0.5
    budget_blocks: int = 1000

    def __post_init__(self) -> None:
        if not 0 < self.probability <= 1:
            raise InvalidProblemError("probability must be in (0, 1]")
        if self.budget_blocks < 0:
            raise InvalidProblemError("budget_blocks must be non-negative")


class DareSystem:
    """Probabilistic replicate-on-read with LRU eviction."""

    def __init__(
        self,
        namenode: Namenode,
        config: Optional[DareConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.namenode = namenode
        self.config = config or DareConfig()
        self._rng = rng or random.Random(0)
        # Extra replicas we created: (block, node) -> last-use time.
        self._extras: Dict[Tuple[int, int], float] = {}
        self.replicas_created = 0
        self.replicas_evicted = 0

    @property
    def extra_replicas(self) -> int:
        """Extra replicas currently alive."""
        return len(self._extras)

    def on_read(self, block_id: int, reader: int, source: int) -> bool:
        """Handle one read; returns True when a replica was created.

        Call after the DFS served a read: if the read was remote and the
        coin flip succeeds, the reader machine keeps a local copy.
        """
        if block_id not in self.namenode.blockmap:
            return False
        key = (block_id, source)
        if key in self._extras:
            self._extras[key] = self.namenode.now
        if reader == source:
            return False
        if self._rng.random() >= self.config.probability:
            return False
        if reader in self.namenode.blockmap.locations(block_id):
            return False
        if not self.namenode.can_store(reader, block_id):
            return False
        created = self.namenode.replicate_block(block_id, target=reader)
        if not created:
            return False
        self._extras[(block_id, reader)] = self.namenode.now
        self.replicas_created += 1
        self._enforce_budget()
        return True

    def _enforce_budget(self) -> None:
        """Evict LRU extra replicas beyond the budget."""
        while len(self._extras) > self.config.budget_blocks:
            victim = min(self._extras, key=self._extras.get)
            del self._extras[victim]
            block_id, node = victim
            if block_id not in self.namenode.blockmap:
                continue
            if node not in self.namenode.blockmap.locations(block_id):
                continue
            meta = self.namenode.blockmap.meta(block_id)
            if self.namenode.blockmap.replica_count(block_id) <= \
                    meta.replication_factor:
                continue
            # Never collapse the block's rack spread below target.
            remaining_racks = {
                self.namenode.topology.rack_of[n]
                for n in self.namenode.blockmap.locations(block_id)
                if n != node
            }
            if len(remaining_racks) < meta.rack_spread:
                continue
            self.namenode.blockmap.remove_location(block_id, node)
            dn = self.namenode.datanode(node)
            if dn.alive and dn.holds(block_id):
                dn.erase(block_id)
            self.replicas_evicted += 1
