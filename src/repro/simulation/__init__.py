"""Discrete-event simulation kernel and metric collectors."""

from repro.simulation.engine import EventToken, Simulation
from repro.simulation.metrics import (
    Counter,
    Distribution,
    HourlyRate,
    MetricsRecorder,
    TimeSeries,
)

__all__ = [
    "EventToken",
    "Simulation",
    "Counter",
    "Distribution",
    "HourlyRate",
    "MetricsRecorder",
    "TimeSeries",
]
