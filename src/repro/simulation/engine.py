"""Discrete-event simulation engine.

A small, deterministic DES kernel used by the HDFS simulator and the task
scheduler.  Events are callbacks scheduled at absolute simulated times;
ties are broken by insertion order so runs are fully reproducible.

The event queue holds plain ``(time, seq, action, token)`` tuples rather
than a dedicated entry class: ``seq`` is unique per event, so tuple
comparison never reaches the (uncomparable) callable, and the heap
operations stay inside CPython's C tuple-comparison fast path.  The run
loop pops cancelled events without dispatching and without re-peeking.

Typical use::

    sim = Simulation()
    sim.schedule(10.0, lambda: print("at t=10"))
    token = sim.schedule_periodic(3600.0, optimize_placement)
    sim.run(until=7 * 24 * 3600.0)
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Simulation", "EventToken"]

# One scheduled event: (time, seq, action, token).  seq is the unique
# scheduling order, so tuples compare on (time, seq) alone.
_Event = Tuple[float, int, Callable[[], None], "EventToken"]


class EventToken:
    """Handle to a scheduled event; supports cancellation.

    For periodic events the token covers every future firing.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event (and, if periodic, all future firings)."""
        self.cancelled = True


class Simulation:
    """Deterministic discrete-event simulator.

    ``now`` is the current simulated time in seconds.  Events scheduled at
    the same instant fire in scheduling order.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[_Event] = []
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None]) -> EventToken:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventToken:
        """Run ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        token = EventToken()
        self._push(time, action, token)
        return token

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        first_at: Optional[float] = None,
    ) -> EventToken:
        """Run ``action`` every ``interval`` seconds until cancelled.

        The first firing defaults to one full interval from now; pass
        ``first_at`` to override.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        token = EventToken()

        def fire() -> None:
            action()
            if not token.cancelled:
                self._push(self._now + interval, fire, token)

        start = self._now + interval if first_at is None else first_at
        if start < self._now:
            raise SimulationError("first_at must not be in the past")
        self._push(start, fire, token)
        return token

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, action, token = heapq.heappop(queue)
            if token.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            action()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or the cap hits.

        With ``until`` set, events strictly after that time remain queued
        and the clock is advanced exactly to ``until``.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if max_events is not None and executed >= max_events:
                return
            head = queue[0]
            if head[3].cancelled:
                pop(queue)
                continue
            time = head[0]
            if until is not None and time > until:
                self._now = until
                return
            pop(queue)
            self._now = time
            self._events_processed += 1
            head[2]()
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def _push(self, time: float, action: Callable[[], None],
              token: EventToken) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, action, token))
