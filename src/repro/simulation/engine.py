"""Discrete-event simulation engine.

A small, deterministic DES kernel used by the HDFS simulator and the task
scheduler.  Events are callbacks scheduled at absolute simulated times;
ties are broken by insertion order so runs are fully reproducible.

Typical use::

    sim = Simulation()
    sim.schedule(10.0, lambda: print("at t=10"))
    token = sim.schedule_periodic(3600.0, optimize_placement)
    sim.run(until=7 * 24 * 3600.0)
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Simulation", "EventToken"]


class EventToken:
    """Handle to a scheduled event; supports cancellation.

    For periodic events the token covers every future firing.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event (and, if periodic, all future firings)."""
        self.cancelled = True


class _Entry:
    """Heap entry; orders by (time, sequence)."""

    __slots__ = ("time", "seq", "action", "token")

    def __init__(self, time: float, seq: int, action: Callable[[], None],
                 token: EventToken) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.token = token

    def __lt__(self, other: "_Entry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulation:
    """Deterministic discrete-event simulator.

    ``now`` is the current simulated time in seconds.  Events scheduled at
    the same instant fire in scheduling order.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[_Entry] = []
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None]) -> EventToken:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventToken:
        """Run ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        token = EventToken()
        self._push(time, action, token)
        return token

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        first_at: Optional[float] = None,
    ) -> EventToken:
        """Run ``action`` every ``interval`` seconds until cancelled.

        The first firing defaults to one full interval from now; pass
        ``first_at`` to override.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        token = EventToken()

        def fire() -> None:
            action()
            if not token.cancelled:
                self._push(self._now + interval, fire, token)

        start = self._now + interval if first_at is None else first_at
        if start < self._now:
            raise SimulationError("first_at must not be in the past")
        self._push(start, fire, token)
        return token

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.token.cancelled:
                continue
            self._now = entry.time
            self._events_processed += 1
            entry.action()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or the cap hits.

        With ``until`` set, events strictly after that time remain queued
        and the clock is advanced exactly to ``until``.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            head = self._queue[0]
            if head.token.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            if not self.step():
                break
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def _push(self, time: float, action: Callable[[], None],
              token: EventToken) -> None:
        self._seq += 1
        heapq.heappush(self._queue, _Entry(time, self._seq, action, token))
