"""Metric collection for simulation runs.

The experiments report per-hour event rates (remote tasks, block moves),
distributions (machine load CDFs, movement durations) and plain counters.
This module provides small, dependency-light collectors for each:

* :class:`Counter` — named integer/float counters;
* :class:`HourlyRate` — time-bucketed event counts with per-hour rates;
* :class:`Distribution` — sample collector with percentile/CDF helpers;
* :class:`TimeSeries` — (time, value) pairs;
* :class:`MetricsRecorder` — a registry bundling the above by name.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Counter", "HourlyRate", "Distribution", "TimeSeries", "MetricsRecorder"]

_SECONDS_PER_HOUR = 3600.0


class Counter:
    """Named scalar counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount``."""
        self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 when never incremented)."""
        return self._values.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._values)


class HourlyRate:
    """Event counts bucketed by simulated hour."""

    def __init__(self) -> None:
        self._buckets: Dict[int, float] = defaultdict(float)

    def record(self, time: float, amount: float = 1.0) -> None:
        """Record ``amount`` events at simulated ``time`` (seconds)."""
        self._buckets[int(time // _SECONDS_PER_HOUR)] += amount

    def total(self) -> float:
        """Total events across all hours."""
        return sum(self._buckets.values())

    def per_hour(self, horizon_hours: int) -> List[float]:
        """Counts for hours ``0 .. horizon_hours-1`` (zeros where idle)."""
        return [self._buckets.get(h, 0.0) for h in range(horizon_hours)]

    def mean_per_hour(self, horizon_hours: int) -> float:
        """Average events per hour over the horizon."""
        if horizon_hours <= 0:
            return 0.0
        return self.total() / horizon_hours


class Distribution:
    """Sample collector with summary statistics and CDF extraction."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(float(value))

    def extend(self, values: Sequence[float]) -> None:
        """Add many samples."""
        self._samples.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """All recorded samples, in insertion order."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean (nan when empty)."""
        if not self._samples:
            return math.nan
        return float(np.mean(self._samples))

    def std(self) -> float:
        """Population standard deviation (nan when empty)."""
        if not self._samples:
            return math.nan
        return float(np.std(self._samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, ``q`` in [0, 100]."""
        if not self._samples:
            return math.nan
        return float(np.percentile(self._samples, q))

    def max(self) -> float:
        """Largest sample (nan when empty)."""
        if not self._samples:
            return math.nan
        return float(np.max(self._samples))

    def min(self) -> float:
        """Smallest sample (nan when empty)."""
        if not self._samples:
            return math.nan
        return float(np.min(self._samples))

    def cdf(self, points: int = 20) -> List[Tuple[float, float]]:
        """Empirical CDF as ``points`` (value, probability) pairs."""
        if not self._samples:
            return []
        ordered = np.sort(self._samples)
        n = len(ordered)
        indices = np.linspace(0, n - 1, num=min(points, n)).astype(int)
        return [(float(ordered[i]), float((i + 1) / n)) for i in indices]

    def coefficient_of_variation(self) -> float:
        """std / mean — the load-imbalance scalar used in summaries."""
        mean = self.mean()
        if not self._samples or mean == 0:
            return math.nan
        return self.std() / mean


class TimeSeries:
    """Sequence of (time, value) observations."""

    def __init__(self) -> None:
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation."""
        self._points.append((float(time), float(value)))

    @property
    def points(self) -> List[Tuple[float, float]]:
        """All observations, in insertion order."""
        return list(self._points)

    def values(self) -> List[float]:
        """Just the observed values."""
        return [value for _, value in self._points]

    def last(self) -> Tuple[float, float]:
        """Most recent observation."""
        if not self._points:
            raise IndexError("empty time series")
        return self._points[-1]


class MetricsRecorder:
    """Named registry of counters, rates, distributions and series."""

    def __init__(self) -> None:
        self.counters = Counter()
        self._rates: Dict[str, HourlyRate] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._series: Dict[str, TimeSeries] = {}

    def rate(self, name: str) -> HourlyRate:
        """The hourly-rate collector called ``name`` (created on demand)."""
        if name not in self._rates:
            self._rates[name] = HourlyRate()
        return self._rates[name]

    def distribution(self, name: str) -> Distribution:
        """The distribution collector called ``name`` (created on demand)."""
        if name not in self._distributions:
            self._distributions[name] = Distribution()
        return self._distributions[name]

    def series(self, name: str) -> TimeSeries:
        """The time series called ``name`` (created on demand)."""
        if name not in self._series:
            self._series[name] = TimeSeries()
        return self._series[name]
