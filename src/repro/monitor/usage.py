"""Sliding-window block usage monitoring (Aurora's usage monitor).

"The usage monitor in Aurora determines block popularity by recording the
number of accesses of a block within a sliding time window W (i.e. the
number of recent accesses in W hours)."  :class:`UsageMonitor` implements
that contract two ways:

* **bucketed** (the default) — per-block counters over ``num_buckets``
  fixed-width time buckets spanning the window.  Memory and snapshot
  cost are O(buckets) per block instead of O(accesses), which is what
  makes full-scale multi-seed sweeps tractable.  Counts are *exact*
  whenever the query time is a multiple of the bucket width — true at
  every reconfiguration-period boundary for the stock period/window
  combinations (the bucket width divides the period) — and overcount by
  at most one bucket width of accesses in between.
* **exact** (``exact=True``) — the original per-block timestamp deques,
  expired lazily.  Every query is exact at any time; memory is
  O(in-window accesses).  The equivalence of the two modes at bucket
  boundaries is pinned by a hypothesis property test.

Eviction semantics are shared: an access at exactly ``now - window``
is still inside the window (timestamps strictly below the cutoff age
out).
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Deque, Dict, Iterable

from repro.errors import InvalidProblemError
from repro.obs.registry import get_registry

__all__ = ["UsageMonitor", "DEFAULT_MONITOR_BUCKETS"]

_LOG = logging.getLogger(__name__)

# 64 buckets keeps per-block state tiny while the bucket width
# (window / 64) still divides the hourly reconfiguration period for
# every stock window setting (0.5 h, 1 h, 2 h, 4 h), preserving
# exact-at-period-boundary counts.
DEFAULT_MONITOR_BUCKETS = 64

_REG = get_registry()
_ACCESSES = _REG.counter(
    "repro_monitor_accesses_total",
    "Block accesses recorded by the usage monitor",
)
_WINDOW_EVICTIONS = _REG.counter(
    "repro_monitor_window_evictions_total",
    "Access timestamps aged out of the sliding window",
)
_TRACKED_BLOCKS = _REG.gauge(
    "repro_monitor_tracked_blocks",
    "Blocks with at least one in-window access at the last snapshot",
)


class UsageMonitor:
    """Counts block accesses inside a sliding window of ``window`` seconds.

    ``num_buckets`` controls the bucketed mode's time resolution (the
    bucket width is ``window / num_buckets``); ``exact=True`` switches to
    timestamp deques with exact counts at arbitrary query times.
    """

    def __init__(
        self,
        window: float,
        num_buckets: int = DEFAULT_MONITOR_BUCKETS,
        exact: bool = False,
    ) -> None:
        if window <= 0:
            raise InvalidProblemError("window must be positive")
        if num_buckets < 1:
            raise InvalidProblemError("num_buckets must be >= 1")
        self.window = float(window)
        self.num_buckets = int(num_buckets)
        self.exact = bool(exact)
        self._bucket_width = self.window / self.num_buckets
        # block -> timestamp deque (exact) or {bucket index: count}.
        self._accesses: Dict[int, object] = {}
        self._total_recorded = 0
        self.window_evictions = 0

    @property
    def total_recorded(self) -> int:
        """All accesses ever recorded (not just those inside the window)."""
        return self._total_recorded

    def record_access(self, block_id: int, time: float) -> None:
        """Record that ``block_id`` was read at simulated ``time``."""
        accesses = self._accesses
        if self.exact:
            queue = accesses.get(block_id)
            if queue is None:
                queue = accesses[block_id] = deque()
            queue.append(time)
        else:
            counts = accesses.get(block_id)
            if counts is None:
                counts = accesses[block_id] = {}
            bucket = int(time // self._bucket_width)
            counts[bucket] = counts.get(bucket, 0) + 1
        self._total_recorded += 1
        if _REG.enabled:
            _ACCESSES.inc()

    def record_many(self, block_ids: Iterable[int], time: float) -> None:
        """Record one access at ``time`` for each block in ``block_ids``.

        Batches the bookkeeping: the bucket index is computed once and
        the access metric is incremented once for the whole batch.
        """
        recorded = 0
        accesses = self._accesses
        if self.exact:
            for block_id in block_ids:
                queue = accesses.get(block_id)
                if queue is None:
                    queue = accesses[block_id] = deque()
                queue.append(time)
                recorded += 1
        else:
            bucket = int(time // self._bucket_width)
            for block_id in block_ids:
                counts = accesses.get(block_id)
                if counts is None:
                    counts = accesses[block_id] = {}
                counts[bucket] = counts.get(bucket, 0) + 1
                recorded += 1
        self._total_recorded += recorded
        if recorded and _REG.enabled:
            _ACCESSES.inc(recorded)

    def popularity(self, block_id: int, now: float) -> int:
        """Accesses of ``block_id`` within ``[now - window, now]``.

        Expired state is pruned in place: a block whose last in-window
        access has aged out is dropped entirely, so repeated popularity
        probes never leave empty per-block entries behind.
        """
        state = self._accesses.get(block_id)
        if state is None:
            return 0
        if self.exact:
            count = self._expire_exact(state, now)
        else:
            count = self._expire_buckets(
                state, self._dead_bucket_limit(now - self.window)
            )
        if count == 0:
            del self._accesses[block_id]
        return count

    def snapshot(self, now: float) -> Dict[int, int]:
        """Window popularity of every block with at least one access.

        This is the ``P_i`` vector Aurora's optimizer feeds to
        Algorithm 3 at each reconfiguration period.
        """
        result: Dict[int, int] = {}
        empty = []
        if self.exact:
            for block_id, state in self._accesses.items():
                count = self._expire_exact(state, now)
                if count:
                    result[block_id] = count
                else:
                    empty.append(block_id)
        else:
            # The eviction boundary depends only on ``now``: resolve it
            # to an integer bucket limit once, not per block.
            dead_limit = self._dead_bucket_limit(now - self.window)
            for block_id, state in self._accesses.items():
                count = self._expire_buckets(state, dead_limit)
                if count:
                    result[block_id] = count
                else:
                    empty.append(block_id)
        for block_id in empty:
            del self._accesses[block_id]
        if _REG.enabled:
            _TRACKED_BLOCKS.set(len(result))
        _LOG.debug(
            "usage snapshot t=%.1f tracked=%d evicted_total=%d",
            now, len(result), self.window_evictions,
        )
        return result

    def forget(self, block_id: int) -> None:
        """Drop all state for a deleted block."""
        self._accesses.pop(block_id, None)

    def _dead_bucket_limit(self, cutoff: float) -> int:
        """Largest bucket index fully below ``cutoff``, resolved exactly.

        A bucket is dropped only once *all* its timestamps are strictly
        below the cutoff, i.e. its upper edge ``(b + 1) * width`` is at
        or below it — so an access at exactly the cutoff survives,
        matching the exact mode's strict-< eviction.  The floor-division
        guess can be off by one ulp either way; the exact product
        predicate corrects it.
        """
        width = self._bucket_width
        limit = int(cutoff // width)
        while (limit + 1) * width <= cutoff:
            limit += 1
        while (limit + 1) * width > cutoff:
            limit -= 1
        return limit

    def _expire_exact(self, queue: Deque[float], now: float) -> int:
        """Age out timestamps older than the window; return the live count."""
        cutoff = now - self.window
        evicted = 0
        while queue and queue[0] < cutoff:
            queue.popleft()
            evicted += 1
        if evicted:
            self.window_evictions += evicted
            if _REG.enabled:
                _WINDOW_EVICTIONS.inc(evicted)
        return len(queue)

    def _expire_buckets(self, counts: Dict[int, int], dead_limit: int) -> int:
        """Drop buckets at or below ``dead_limit``; return the live count."""
        dead = [b for b in counts if b <= dead_limit]
        if dead:
            evicted = 0
            for bucket in dead:
                evicted += counts.pop(bucket)
            self.window_evictions += evicted
            if _REG.enabled:
                _WINDOW_EVICTIONS.inc(evicted)
        return sum(counts.values())
