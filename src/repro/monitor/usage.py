"""Sliding-window block usage monitoring (Aurora's usage monitor).

"The usage monitor in Aurora determines block popularity by recording the
number of accesses of a block within a sliding time window W (i.e. the
number of recent accesses in W hours)."  :class:`UsageMonitor` implements
exactly that: per-block access timestamps in deques, expired lazily, with
``W`` configurable by the operator.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Dict, Iterable

from repro.errors import InvalidProblemError
from repro.obs.registry import get_registry

__all__ = ["UsageMonitor"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_ACCESSES = _REG.counter(
    "repro_monitor_accesses_total",
    "Block accesses recorded by the usage monitor",
)
_WINDOW_EVICTIONS = _REG.counter(
    "repro_monitor_window_evictions_total",
    "Access timestamps aged out of the sliding window",
)
_TRACKED_BLOCKS = _REG.gauge(
    "repro_monitor_tracked_blocks",
    "Blocks with at least one in-window access at the last snapshot",
)


class UsageMonitor:
    """Counts block accesses inside a sliding window of ``window`` seconds."""

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise InvalidProblemError("window must be positive")
        self.window = float(window)
        self._accesses: Dict[int, deque] = {}
        self._total_recorded = 0
        self.window_evictions = 0

    @property
    def total_recorded(self) -> int:
        """All accesses ever recorded (not just those inside the window)."""
        return self._total_recorded

    def record_access(self, block_id: int, time: float) -> None:
        """Record that ``block_id`` was read at simulated ``time``."""
        queue = self._accesses.get(block_id)
        if queue is None:
            queue = deque()
            self._accesses[block_id] = queue
        queue.append(time)
        self._total_recorded += 1
        if _REG.enabled:
            _ACCESSES.inc()

    def record_many(self, block_ids: Iterable[int], time: float) -> None:
        """Record one access for each block in ``block_ids``."""
        for block_id in block_ids:
            self.record_access(block_id, time)

    def popularity(self, block_id: int, now: float) -> int:
        """Accesses of ``block_id`` within ``[now - window, now]``."""
        queue = self._accesses.get(block_id)
        if queue is None:
            return 0
        self._expire(queue, now)
        return len(queue)

    def snapshot(self, now: float) -> Dict[int, int]:
        """Window popularity of every block with at least one access.

        This is the ``P_i`` vector Aurora's optimizer feeds to
        Algorithm 3 at each reconfiguration period.
        """
        result: Dict[int, int] = {}
        empty = []
        for block_id, queue in self._accesses.items():
            self._expire(queue, now)
            if queue:
                result[block_id] = len(queue)
            else:
                empty.append(block_id)
        for block_id in empty:
            del self._accesses[block_id]
        if _REG.enabled:
            _TRACKED_BLOCKS.set(len(result))
        _LOG.debug(
            "usage snapshot t=%.1f tracked=%d evicted_total=%d",
            now, len(result), self.window_evictions,
        )
        return result

    def forget(self, block_id: int) -> None:
        """Drop all state for a deleted block."""
        self._accesses.pop(block_id, None)

    def _expire(self, queue: deque, now: float) -> None:
        cutoff = now - self.window
        evicted = 0
        while queue and queue[0] < cutoff:
            queue.popleft()
            evicted += 1
        if evicted:
            self.window_evictions += evicted
            if _REG.enabled:
                _WINDOW_EVICTIONS.inc(evicted)
