"""Sliding-window block usage monitoring (Aurora's usage monitor).

"The usage monitor in Aurora determines block popularity by recording the
number of accesses of a block within a sliding time window W (i.e. the
number of recent accesses in W hours)."  :class:`UsageMonitor` implements
exactly that: per-block access timestamps in deques, expired lazily, with
``W`` configurable by the operator.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable

from repro.errors import InvalidProblemError

__all__ = ["UsageMonitor"]


class UsageMonitor:
    """Counts block accesses inside a sliding window of ``window`` seconds."""

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise InvalidProblemError("window must be positive")
        self.window = float(window)
        self._accesses: Dict[int, deque] = {}
        self._total_recorded = 0

    @property
    def total_recorded(self) -> int:
        """All accesses ever recorded (not just those inside the window)."""
        return self._total_recorded

    def record_access(self, block_id: int, time: float) -> None:
        """Record that ``block_id`` was read at simulated ``time``."""
        queue = self._accesses.get(block_id)
        if queue is None:
            queue = deque()
            self._accesses[block_id] = queue
        queue.append(time)
        self._total_recorded += 1

    def record_many(self, block_ids: Iterable[int], time: float) -> None:
        """Record one access for each block in ``block_ids``."""
        for block_id in block_ids:
            self.record_access(block_id, time)

    def popularity(self, block_id: int, now: float) -> int:
        """Accesses of ``block_id`` within ``[now - window, now]``."""
        queue = self._accesses.get(block_id)
        if queue is None:
            return 0
        self._expire(queue, now)
        return len(queue)

    def snapshot(self, now: float) -> Dict[int, int]:
        """Window popularity of every block with at least one access.

        This is the ``P_i`` vector Aurora's optimizer feeds to
        Algorithm 3 at each reconfiguration period.
        """
        result: Dict[int, int] = {}
        empty = []
        for block_id, queue in self._accesses.items():
            self._expire(queue, now)
            if queue:
                result[block_id] = len(queue)
            else:
                empty.append(block_id)
        for block_id in empty:
            del self._accesses[block_id]
        return result

    def forget(self, block_id: int) -> None:
        """Drop all state for a deleted block."""
        self._accesses.pop(block_id, None)

    def _expire(self, queue: deque, now: float) -> None:
        cutoff = now - self.window
        while queue and queue[0] < cutoff:
            queue.popleft()
