"""Block usage monitoring and popularity forecasting."""

from repro.monitor.forecast import (
    Ar1Predictor,
    EwmaPredictor,
    HistoricalPredictor,
    PopularityPredictor,
)
from repro.monitor.usage import DEFAULT_MONITOR_BUCKETS, UsageMonitor

__all__ = [
    "Ar1Predictor",
    "DEFAULT_MONITOR_BUCKETS",
    "EwmaPredictor",
    "HistoricalPredictor",
    "PopularityPredictor",
    "UsageMonitor",
]
