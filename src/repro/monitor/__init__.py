"""Block usage monitoring and popularity forecasting."""

from repro.monitor.forecast import (
    Ar1Predictor,
    EwmaPredictor,
    HistoricalPredictor,
    PopularityPredictor,
)
from repro.monitor.usage import UsageMonitor

__all__ = [
    "Ar1Predictor",
    "EwmaPredictor",
    "HistoricalPredictor",
    "PopularityPredictor",
    "UsageMonitor",
]
