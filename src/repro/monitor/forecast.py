"""Popularity forecasting for future reconfiguration periods.

The paper notes that "while many algorithms (e.g. ARIMA) may be used to
predict file popularity in future time periods, we found using the
historical value is sufficient".  We therefore ship the paper's choice —
:class:`HistoricalPredictor` — plus two light-weight alternatives used in
the ablation benches: exponentially weighted smoothing and an AR(1)
autoregressive model fitted online (the closest in-library stand-in for
the ARIMA pointer).

All predictors share one interface: feed each period's observed per-block
popularity with :meth:`observe`, read the next-period estimate with
:meth:`predict`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Mapping, Protocol, runtime_checkable

from repro.errors import InvalidProblemError

__all__ = [
    "PopularityPredictor",
    "HistoricalPredictor",
    "EwmaPredictor",
    "Ar1Predictor",
]


@runtime_checkable
class PopularityPredictor(Protocol):
    """Interface for per-block popularity forecasters."""

    def observe(self, popularities: Mapping[int, float]) -> None:
        """Feed one period's observed popularity per block."""
        ...  # pragma: no cover - protocol definition

    def predict(self) -> Dict[int, float]:
        """Estimate each block's popularity for the next period."""
        ...  # pragma: no cover - protocol definition


class HistoricalPredictor:
    """The paper's predictor: next period = last observed period."""

    def __init__(self) -> None:
        self._last: Dict[int, float] = {}

    def observe(self, popularities: Mapping[int, float]) -> None:
        """Replace the estimate with the latest observation."""
        self._last = dict(popularities)

    def predict(self) -> Dict[int, float]:
        """The most recent observation, verbatim."""
        return dict(self._last)


class EwmaPredictor:
    """Exponentially weighted moving average of per-block popularity."""

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0 < alpha <= 1:
            raise InvalidProblemError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._estimate: Dict[int, float] = defaultdict(float)

    def observe(self, popularities: Mapping[int, float]) -> None:
        """Blend the new observation into the running average.

        Blocks absent from the observation decay towards zero.
        """
        seen = set(popularities)
        for block_id, value in popularities.items():
            previous = self._estimate.get(block_id, 0.0)
            self._estimate[block_id] = (
                self.alpha * value + (1 - self.alpha) * previous
            )
        for block_id in list(self._estimate):
            if block_id not in seen:
                self._estimate[block_id] *= 1 - self.alpha
                if self._estimate[block_id] < 1e-9:
                    del self._estimate[block_id]

    def predict(self) -> Dict[int, float]:
        """Current smoothed estimates."""
        return dict(self._estimate)


class Ar1Predictor:
    """Per-block AR(1) model ``x_{t+1} = c + phi * x_t`` fitted online.

    Keeps a short history per block and fits ``phi``/``c`` by least
    squares over consecutive pairs; falls back to the historical value
    until enough history accumulates.  Predictions are clamped to be
    non-negative.
    """

    def __init__(self, history: int = 8) -> None:
        if history < 3:
            raise InvalidProblemError("history must be >= 3")
        self.history = history
        self._series: Dict[int, deque] = {}

    def observe(self, popularities: Mapping[int, float]) -> None:
        """Append one period of observations to each block's history."""
        seen = set(popularities)
        for block_id, value in popularities.items():
            series = self._series.setdefault(
                block_id, deque(maxlen=self.history)
            )
            series.append(float(value))
        # Blocks that vanished observed a zero this period.
        for block_id, series in self._series.items():
            if block_id not in seen:
                series.append(0.0)

    def predict(self) -> Dict[int, float]:
        """One-step-ahead AR(1) forecast per block."""
        result: Dict[int, float] = {}
        for block_id, series in self._series.items():
            values = list(series)
            if not values:
                continue
            if len(values) < 3:
                result[block_id] = values[-1]
                continue
            xs = values[:-1]
            ys = values[1:]
            n = len(xs)
            mean_x = sum(xs) / n
            mean_y = sum(ys) / n
            var_x = sum((x - mean_x) ** 2 for x in xs)
            if var_x < 1e-12:
                result[block_id] = values[-1]
                continue
            phi = sum(
                (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
            ) / var_x
            intercept = mean_y - phi * mean_x
            result[block_id] = max(0.0, intercept + phi * values[-1])
        return result
