"""repro — reproduction of "Aurora: Adaptive Block Replication in
Distributed File Systems" (ICDCS 2015).

The package is organized in layers:

* :mod:`repro.core` — the paper's algorithms: the three block placement
  ILPs, the local-search approximation algorithms (Algorithms 1 and 2),
  the Rep-Factor solver (Algorithm 3), greedy initial placement
  (Algorithm 4) and epsilon-admissibility (Section IV).
* :mod:`repro.cluster` — machines, racks, capacities, failures.
* :mod:`repro.simulation` — a discrete-event simulation engine.
* :mod:`repro.dfs` — an HDFS-like distributed file system simulator
  (namenode, datanodes, block map, replication pipeline, balancer).
* :mod:`repro.scheduler` — a MapReduce-style locality-aware task
  scheduler with a local-vs-remote runtime model.
* :mod:`repro.workload` — long-tail popularity models and synthetic
  Yahoo!/SWIM-style trace generators.
* :mod:`repro.monitor` — sliding-window block usage monitoring.
* :mod:`repro.baselines` — default-HDFS random placement, Scarlett and
  DARE-style baselines.
* :mod:`repro.aurora` — the Aurora system tying everything together
  (Algorithm 5's periodic optimizer).
* :mod:`repro.experiments` — harnesses regenerating every figure of the
  paper's evaluation section.
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
