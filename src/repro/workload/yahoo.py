"""Yahoo!-style long-tail MapReduce workload synthesizer.

The paper's large-scale simulations replay a Yahoo! grid trace (webscope
dataset S3, access-gated).  This synthesizer reproduces the properties the
experiments depend on:

* long-tail file popularity (Zipf rank weights, skew ~1.1);
* a mean of 8 blocks per file (geometric-like spread around the mean);
* Poisson job arrivals at a configurable hourly rate;
* optional popularity drift between hours, so Aurora's periodic
  re-optimization has something to chase.

The output is a plain :class:`~repro.workload.trace.WorkloadTrace`, fully
determined by the config and seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import InvalidProblemError
from repro.workload.popularity import PopularityDrift, WeightedSampler, zipf_weights
from repro.workload.trace import DEFAULT_BLOCK_SIZE, TraceFile, TraceJob, WorkloadTrace

__all__ = ["YahooTraceConfig", "generate_yahoo_trace"]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class YahooTraceConfig:
    """Parameters of the synthetic Yahoo!-like workload.

    Defaults follow Section VI.A: mean 8 blocks per file; jobs arriving
    over a multi-hour horizon; long-tail popularity.
    """

    num_files: int = 200
    mean_blocks_per_file: float = 8.0
    max_blocks_per_file: int = 64
    jobs_per_hour: float = 120.0
    duration_hours: float = 6.0
    popularity_skew: float = 1.1
    drift_swap_fraction: float = 0.05
    drift_promotions: int = 1
    mean_task_duration: float = 30.0
    task_duration_sigma: float = 0.4
    block_size: int = DEFAULT_BLOCK_SIZE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_files <= 0:
            raise InvalidProblemError("num_files must be positive")
        if self.mean_blocks_per_file < 1:
            raise InvalidProblemError("mean_blocks_per_file must be >= 1")
        if self.max_blocks_per_file < 1:
            raise InvalidProblemError("max_blocks_per_file must be >= 1")
        if self.jobs_per_hour <= 0:
            raise InvalidProblemError("jobs_per_hour must be positive")
        if self.duration_hours <= 0:
            raise InvalidProblemError("duration_hours must be positive")
        if self.mean_task_duration <= 0:
            raise InvalidProblemError("mean_task_duration must be positive")


def _sample_block_count(rng: random.Random, config: YahooTraceConfig) -> int:
    """Geometric block count with the configured mean, clamped to the max.

    A geometric distribution matches the observation that most HDFS files
    are written at the maximum block size with a long tail of large
    files; its support starts at 1 so every file has at least one block.
    """
    mean = config.mean_blocks_per_file
    if mean <= 1.0:
        return 1
    success = 1.0 / mean
    count = 1
    while rng.random() > success and count < config.max_blocks_per_file:
        count += 1
    return count


def generate_yahoo_trace(config: Optional[YahooTraceConfig] = None) -> WorkloadTrace:
    """Synthesize a Yahoo!-like workload trace.

    Job arrivals are Poisson; each job draws its input file from the
    Zipf popularity distribution, whose rank-to-file mapping drifts once
    per simulated hour.  Map-task durations are log-normal around the
    configured mean.
    """
    config = config or YahooTraceConfig()
    rng = random.Random(config.seed)

    files: List[TraceFile] = []
    for file_id in range(config.num_files):
        files.append(
            TraceFile(
                file_id=file_id,
                num_blocks=_sample_block_count(rng, config),
                block_size=config.block_size,
            )
        )

    weights = zipf_weights(config.num_files, config.popularity_skew)
    sampler = WeightedSampler(weights)
    drift = PopularityDrift(
        config.num_files,
        swap_fraction=config.drift_swap_fraction,
        promotions=config.drift_promotions,
    )

    horizon = config.duration_hours * _SECONDS_PER_HOUR
    mean_gap = _SECONDS_PER_HOUR / config.jobs_per_hour
    jobs: List[TraceJob] = []
    time = rng.expovariate(1.0 / mean_gap)
    job_id = 0
    current_hour = 0
    while time < horizon:
        hour = int(time // _SECONDS_PER_HOUR)
        while current_hour < hour:
            drift.step(rng)
            current_hour += 1
        rank = sampler.sample(rng)
        file_id = drift.item_at_rank(rank)
        duration = rng.lognormvariate(
            _lognormal_mu(config.mean_task_duration, config.task_duration_sigma),
            config.task_duration_sigma,
        )
        jobs.append(
            TraceJob(
                job_id=job_id,
                submit_time=time,
                file_id=file_id,
                task_duration=max(1.0, duration),
            )
        )
        job_id += 1
        time += rng.expovariate(1.0 / mean_gap)
    return WorkloadTrace.from_records(files, jobs)


def _lognormal_mu(mean: float, sigma: float) -> float:
    """The ``mu`` parameter giving a log-normal the requested mean."""
    return math.log(mean) - sigma * sigma / 2.0
