"""Popularity models: long-tail (Zipf-like) file popularity.

The paper's motivation rests on production observations that "file
popularity in one of Yahoo!'s MapReduce clusters follows a long-tail
distribution" and that a sixth of machines can account for half the
locality contention.  This module provides the Zipf machinery used by the
trace synthesizers, plus popularity *drift* so traces exercise Aurora's
periodic re-optimization.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidProblemError

__all__ = [
    "zipf_weights",
    "WeightedSampler",
    "PopularityDrift",
    "gini_coefficient",
    "top_share",
]


def zipf_weights(num_items: int, skew: float = 1.1) -> np.ndarray:
    """Normalized Zipf weights ``w_r ∝ 1 / r^skew`` for ranks ``1..n``.

    ``skew`` around 1.1 reproduces the long-tail shape reported for the
    Yahoo! trace; larger values concentrate popularity further.
    """
    if num_items <= 0:
        raise InvalidProblemError("num_items must be positive")
    if skew < 0:
        raise InvalidProblemError("skew must be non-negative")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class WeightedSampler:
    """Draw indices proportionally to a fixed weight vector.

    Uses a cumulative table and binary search so sampling is O(log n) and
    driven entirely by the injected :class:`random.Random`.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        weights = list(weights)
        if not weights:
            raise InvalidProblemError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise InvalidProblemError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise InvalidProblemError("weights must not all be zero")
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        # Guard the top end against floating point shortfall.
        self._cdf[-1] = 1.0

    def __len__(self) -> int:
        return len(self._cdf)

    def sample(self, rng: random.Random) -> int:
        """One index drawn proportionally to the weights."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """``count`` independent draws."""
        return [self.sample(rng) for _ in range(count)]


class PopularityDrift:
    """Slowly permute popularity ranks so hotness changes over time.

    Each application swaps a fraction of adjacent ranks and occasionally
    promotes a cold item to the head — the "block popularities can also
    change dynamically" behaviour Aurora must track.  Operates on an index
    permutation so the underlying weight vector stays a clean Zipf.
    """

    def __init__(self, num_items: int, swap_fraction: float = 0.05,
                 promotions: int = 1) -> None:
        if not 0 <= swap_fraction <= 1:
            raise InvalidProblemError("swap_fraction must be in [0, 1]")
        if promotions < 0:
            raise InvalidProblemError("promotions must be non-negative")
        self._perm = list(range(num_items))
        self._swap_fraction = swap_fraction
        self._promotions = promotions

    @property
    def permutation(self) -> List[int]:
        """Current rank permutation (rank position -> item id)."""
        return list(self._perm)

    def item_at_rank(self, rank: int) -> int:
        """The item currently occupying ``rank`` (0 = hottest)."""
        return self._perm[rank]

    def step(self, rng: random.Random) -> None:
        """Advance the drift by one period."""
        n = len(self._perm)
        if n < 2:
            return
        swaps = int(self._swap_fraction * n)
        for _ in range(swaps):
            i = rng.randrange(n - 1)
            self._perm[i], self._perm[i + 1] = self._perm[i + 1], self._perm[i]
        for _ in range(self._promotions):
            source = rng.randrange(n // 2, n)
            item = self._perm.pop(source)
            self._perm.insert(0, item)


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative value vector (0 = equal).

    Used by tests and reports to quantify how skewed a popularity or
    machine-load vector is.
    """
    array = np.sort(np.asarray(list(values), dtype=np.float64))
    if array.size == 0:
        raise InvalidProblemError("values must be non-empty")
    if np.any(array < 0):
        raise InvalidProblemError("values must be non-negative")
    total = array.sum()
    if total == 0:
        return 0.0
    n = array.size
    index = np.arange(1, n + 1)
    return float((2.0 * (index * array).sum() - (n + 1) * total) / (n * total))


def top_share(values: Sequence[float], fraction: float = 1.0 / 6.0) -> float:
    """Share of total mass held by the top ``fraction`` of items.

    Mirrors the paper's "one-sixth of the machines account for half the
    locality contention" observation.
    """
    if not 0 < fraction <= 1:
        raise InvalidProblemError("fraction must be in (0, 1]")
    array = np.sort(np.asarray(list(values), dtype=np.float64))[::-1]
    if array.size == 0:
        raise InvalidProblemError("values must be non-empty")
    total = array.sum()
    if total == 0:
        return 0.0
    head = max(1, int(round(fraction * array.size)))
    return float(array[:head].sum() / total)
