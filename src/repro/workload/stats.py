"""Workload trace statistics and summaries.

Quantifies the properties the paper's motivation rests on — long-tail
popularity, skewed per-file access shares, arrival burstiness — so a
generated trace can be validated against the published characterizations
before it drives an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import TraceFormatError
from repro.workload.popularity import gini_coefficient, top_share
from repro.workload.trace import WorkloadTrace

__all__ = ["TraceStats", "compute_trace_stats", "describe_trace"]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one workload trace."""

    num_files: int
    num_jobs: int
    total_blocks: int
    horizon_hours: float
    mean_blocks_per_file: float
    max_blocks_per_file: int
    jobs_per_hour: float
    access_gini: float
    top_sixth_share: float
    mean_task_duration: float
    arrival_cv: float

    def is_long_tailed(self, threshold: float = 0.45) -> bool:
        """Whether the hottest sixth of files draws >= ``threshold``.

        Mirrors the paper's Microsoft observation that one-sixth of
        machines account for half the locality contention.
        """
        return self.top_sixth_share >= threshold


def compute_trace_stats(trace: WorkloadTrace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    if trace.num_files == 0:
        raise TraceFormatError("cannot summarize a trace with no files")
    blocks = [f.num_blocks for f in trace.files]
    accesses = list(trace.accesses_per_file().values())
    horizon_hours = trace.horizon / _SECONDS_PER_HOUR
    durations = [j.task_duration for j in trace.jobs]
    gaps: List[float] = []
    times = [j.submit_time for j in trace.jobs]
    for earlier, later in zip(times, times[1:]):
        gaps.append(later - earlier)
    if gaps and np.mean(gaps) > 0:
        arrival_cv = float(np.std(gaps) / np.mean(gaps))
    else:
        arrival_cv = float("nan")
    return TraceStats(
        num_files=trace.num_files,
        num_jobs=trace.num_jobs,
        total_blocks=trace.total_blocks,
        horizon_hours=horizon_hours,
        mean_blocks_per_file=float(np.mean(blocks)),
        max_blocks_per_file=int(np.max(blocks)),
        jobs_per_hour=(
            trace.num_jobs / horizon_hours if horizon_hours > 0 else 0.0
        ),
        access_gini=gini_coefficient(accesses) if sum(accesses) else 0.0,
        top_sixth_share=top_share(accesses) if sum(accesses) else 0.0,
        mean_task_duration=float(np.mean(durations)) if durations else 0.0,
        arrival_cv=arrival_cv,
    )


def describe_trace(trace: WorkloadTrace) -> str:
    """Multi-line human-readable trace summary."""
    stats = compute_trace_stats(trace)
    tail = "long-tailed" if stats.is_long_tailed() else "flat"
    return "\n".join([
        f"files: {stats.num_files} ({stats.total_blocks} blocks, "
        f"mean {stats.mean_blocks_per_file:.1f}/file, "
        f"max {stats.max_blocks_per_file})",
        f"jobs: {stats.num_jobs} over {stats.horizon_hours:.1f} h "
        f"({stats.jobs_per_hour:.0f}/h, arrival CV "
        f"{stats.arrival_cv:.2f})",
        f"popularity: gini {stats.access_gini:.2f}, hottest sixth of "
        f"files draws {stats.top_sixth_share * 100:.0f}% of accesses "
        f"({tail})",
        f"mean task duration: {stats.mean_task_duration:.1f} s",
    ])
