"""SWIM-style Facebook workload synthesizer with scale-down.

The paper's testbed evaluation (Section VI.B) uses the Statistical
Workload Injector for MapReduce (SWIM), whose repository contains traces
from a 600-node Facebook cluster, scaled down to the 10-node testbed.
This module reproduces SWIM's methodology on synthetic data:

* job input sizes are heavy-tailed (log-normal body with a Pareto tail):
  most jobs are small, a few scan very large files;
* inter-arrival times are exponential with configurable burstiness
  (arrival rate multipliers per simulated hour);
* :func:`scale_down` shrinks a workload to a smaller cluster the way SWIM
  does — input bytes are scaled by the cluster-size ratio while the job
  count and arrival pattern are preserved.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.errors import InvalidProblemError
from repro.workload.popularity import WeightedSampler, zipf_weights
from repro.workload.trace import DEFAULT_BLOCK_SIZE, TraceFile, TraceJob, WorkloadTrace

__all__ = ["SwimTraceConfig", "generate_swim_trace", "scale_down"]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class SwimTraceConfig:
    """Parameters of the synthetic SWIM/Facebook-like workload."""

    source_cluster_nodes: int = 600
    num_files: int = 80
    jobs_per_hour: float = 60.0
    duration_hours: float = 4.0
    popularity_skew: float = 0.9
    small_job_blocks_mu: float = 1.0   # log of median small-job blocks
    small_job_blocks_sigma: float = 0.8
    large_job_fraction: float = 0.08
    pareto_alpha: float = 1.3
    pareto_min_blocks: int = 16
    max_blocks_per_file: int = 256
    mean_task_duration: float = 25.0
    task_duration_sigma: float = 0.5
    hourly_burstiness: Sequence[float] = (1.0, 1.6, 0.7, 1.2)
    block_size: int = DEFAULT_BLOCK_SIZE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.source_cluster_nodes <= 0:
            raise InvalidProblemError("source_cluster_nodes must be positive")
        if self.num_files <= 0:
            raise InvalidProblemError("num_files must be positive")
        if self.jobs_per_hour <= 0:
            raise InvalidProblemError("jobs_per_hour must be positive")
        if self.duration_hours <= 0:
            raise InvalidProblemError("duration_hours must be positive")
        if not 0 <= self.large_job_fraction <= 1:
            raise InvalidProblemError("large_job_fraction must be in [0, 1]")
        if self.pareto_alpha <= 1.0:
            raise InvalidProblemError(
                "pareto_alpha must exceed 1 for a finite mean"
            )
        if not self.hourly_burstiness:
            raise InvalidProblemError("hourly_burstiness must be non-empty")
        if any(b <= 0 for b in self.hourly_burstiness):
            raise InvalidProblemError("burstiness multipliers must be positive")


def _sample_file_blocks(rng: random.Random, config: SwimTraceConfig) -> int:
    """Heavy-tailed block count: log-normal body, Pareto tail."""
    if rng.random() < config.large_job_fraction:
        u = rng.random()
        blocks = config.pareto_min_blocks / (u ** (1.0 / config.pareto_alpha))
    else:
        blocks = math.exp(rng.gauss(config.small_job_blocks_mu,
                                    config.small_job_blocks_sigma))
    return max(1, min(config.max_blocks_per_file, int(round(blocks))))


def generate_swim_trace(config: Optional[SwimTraceConfig] = None) -> WorkloadTrace:
    """Synthesize a SWIM-like workload for the source cluster size.

    Pair with :func:`scale_down` to shrink it to a testbed, mirroring the
    paper's use of SWIM to "scale-down the workload so it runs in our
    testbed".
    """
    config = config or SwimTraceConfig()
    rng = random.Random(config.seed)

    files = [
        TraceFile(
            file_id=file_id,
            num_blocks=_sample_file_blocks(rng, config),
            block_size=config.block_size,
        )
        for file_id in range(config.num_files)
    ]

    sampler = WeightedSampler(zipf_weights(config.num_files, config.popularity_skew))
    horizon = config.duration_hours * _SECONDS_PER_HOUR
    jobs: List[TraceJob] = []
    job_id = 0
    time = 0.0
    burst = config.hourly_burstiness
    while True:
        hour = int(time // _SECONDS_PER_HOUR)
        rate = config.jobs_per_hour * burst[hour % len(burst)] / _SECONDS_PER_HOUR
        time += rng.expovariate(rate)
        if time >= horizon:
            break
        duration = rng.lognormvariate(
            math.log(config.mean_task_duration)
            - config.task_duration_sigma ** 2 / 2.0,
            config.task_duration_sigma,
        )
        jobs.append(
            TraceJob(
                job_id=job_id,
                submit_time=time,
                file_id=sampler.sample(rng),
                task_duration=max(1.0, duration),
            )
        )
        job_id += 1
    return WorkloadTrace.from_records(files, jobs)


def scale_down(
    trace: WorkloadTrace,
    source_nodes: int,
    target_nodes: int,
    min_blocks: int = 1,
) -> WorkloadTrace:
    """SWIM-style scale-down of a workload to a smaller cluster.

    File sizes (block counts) shrink by the node ratio while the job
    stream — arrival times, popularity, task durations — is preserved, so
    per-node load intensity is comparable on the smaller cluster.
    """
    if source_nodes <= 0 or target_nodes <= 0:
        raise InvalidProblemError("node counts must be positive")
    if target_nodes > source_nodes:
        raise InvalidProblemError(
            "scale_down shrinks traces; target exceeds source"
        )
    ratio = target_nodes / source_nodes
    scaled_files = tuple(
        replace(f, num_blocks=max(min_blocks, int(round(f.num_blocks * ratio))))
        for f in trace.files
    )
    return WorkloadTrace(files=scaled_files, jobs=trace.jobs)
