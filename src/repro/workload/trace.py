"""Workload trace records and (de)serialization.

A trace is the interface between the synthesizers
(:mod:`repro.workload.yahoo`, :mod:`repro.workload.swim`) and the
simulator: a set of files (each split into fixed-size blocks) plus a
time-ordered stream of MapReduce jobs, each reading one input file with
one map task per block.

Traces serialize to JSON-lines so generated workloads can be saved,
inspected and replayed byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.errors import TraceFormatError

__all__ = ["TraceFile", "TraceJob", "WorkloadTrace", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024  # HDFS default: 64 MB


@dataclass(frozen=True)
class TraceFile:
    """One file stored in the DFS before the job stream begins.

    ``num_blocks`` fixed-size blocks (the paper: "the mean number of
    blocks per file is set to 8").
    """

    file_id: int
    num_blocks: int
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.file_id < 0:
            raise TraceFormatError("file_id must be non-negative")
        if self.num_blocks < 1:
            raise TraceFormatError("num_blocks must be >= 1")
        if self.block_size < 1:
            raise TraceFormatError("block_size must be >= 1")

    @property
    def total_bytes(self) -> int:
        """File size in bytes."""
        return self.num_blocks * self.block_size


@dataclass(frozen=True)
class TraceJob:
    """One MapReduce job: reads ``file_id``, one map task per block.

    ``task_duration`` is the *local* map-task runtime in seconds; remote
    tasks are slowed by the scheduler's runtime model (2x by default,
    following the paper's citation of [20]).
    """

    job_id: int
    submit_time: float
    file_id: int
    task_duration: float

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise TraceFormatError("job_id must be non-negative")
        if self.submit_time < 0:
            raise TraceFormatError("submit_time must be non-negative")
        if self.task_duration <= 0:
            raise TraceFormatError("task_duration must be positive")


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete workload: files plus a time-ordered job stream."""

    files: Tuple[TraceFile, ...]
    jobs: Tuple[TraceJob, ...]

    def __post_init__(self) -> None:
        files = tuple(self.files)
        jobs = tuple(self.jobs)
        object.__setattr__(self, "files", files)
        object.__setattr__(self, "jobs", jobs)
        file_ids = {f.file_id for f in files}
        if len(file_ids) != len(files):
            raise TraceFormatError("duplicate file ids in trace")
        job_ids = {j.job_id for j in jobs}
        if len(job_ids) != len(jobs):
            raise TraceFormatError("duplicate job ids in trace")
        for job in jobs:
            if job.file_id not in file_ids:
                raise TraceFormatError(
                    f"job {job.job_id} references unknown file {job.file_id}"
                )
        times = [j.submit_time for j in jobs]
        if times != sorted(times):
            raise TraceFormatError("jobs must be sorted by submit_time")

    # -- stats ---------------------------------------------------------------

    @property
    def num_files(self) -> int:
        """Number of distinct files."""
        return len(self.files)

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the stream."""
        return len(self.jobs)

    @property
    def total_blocks(self) -> int:
        """Total number of blocks across all files."""
        return sum(f.num_blocks for f in self.files)

    @property
    def horizon(self) -> float:
        """Submit time of the last job (0 for an empty stream)."""
        if not self.jobs:
            return 0.0
        return self.jobs[-1].submit_time

    def file(self, file_id: int) -> TraceFile:
        """Look up a file record by id."""
        for f in self.files:
            if f.file_id == file_id:
                return f
        raise TraceFormatError(f"unknown file id {file_id}")

    def accesses_per_file(self) -> dict:
        """Job count per file id — the empirical popularity."""
        counts: dict = {f.file_id: 0 for f in self.files}
        for job in self.jobs:
            counts[job.file_id] += 1
        return counts

    # -- serialization ------------------------------------------------------

    def dump(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines (one record per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for file in self.files:
                record = {"type": "file", **asdict(file)}
                handle.write(json.dumps(record) + "\n")
            for job in self.jobs:
                record = {"type": "job", **asdict(job)}
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        """Read a trace previously written by :meth:`dump`."""
        files: List[TraceFile] = []
        jobs: List[TraceJob] = []
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                kind = record.pop("type", None)
                try:
                    if kind == "file":
                        files.append(TraceFile(**record))
                    elif kind == "job":
                        jobs.append(TraceJob(**record))
                    else:
                        raise TraceFormatError(
                            f"{path}:{line_number}: unknown record type {kind!r}"
                        )
                except TypeError as exc:
                    raise TraceFormatError(
                        f"{path}:{line_number}: malformed record: {exc}"
                    ) from exc
        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        return cls(files=tuple(files), jobs=tuple(jobs))

    @classmethod
    def from_records(
        cls, files: Iterable[TraceFile], jobs: Iterable[TraceJob]
    ) -> "WorkloadTrace":
        """Build a trace, sorting the job stream by submit time."""
        ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        return cls(files=tuple(files), jobs=tuple(ordered))
