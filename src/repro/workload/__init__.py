"""Workload substrate: popularity models and trace synthesizers.

The paper evaluates on a Yahoo! grid trace and SWIM's Facebook traces;
both are access-gated, so this package synthesizes workloads with the
same statistical properties (see DESIGN.md, substitutions table).
"""

from repro.workload.popularity import (
    PopularityDrift,
    WeightedSampler,
    gini_coefficient,
    top_share,
    zipf_weights,
)
from repro.workload.stats import TraceStats, compute_trace_stats, describe_trace
from repro.workload.swim import SwimTraceConfig, generate_swim_trace, scale_down
from repro.workload.trace import (
    DEFAULT_BLOCK_SIZE,
    TraceFile,
    TraceJob,
    WorkloadTrace,
)
from repro.workload.transform import (
    merge_traces,
    scale_arrival_rate,
    slice_trace,
    truncate_jobs,
)
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = [
    "PopularityDrift",
    "WeightedSampler",
    "gini_coefficient",
    "top_share",
    "zipf_weights",
    "TraceStats",
    "compute_trace_stats",
    "describe_trace",
    "SwimTraceConfig",
    "generate_swim_trace",
    "scale_down",
    "DEFAULT_BLOCK_SIZE",
    "TraceFile",
    "TraceJob",
    "WorkloadTrace",
    "merge_traces",
    "scale_arrival_rate",
    "slice_trace",
    "truncate_jobs",
    "YahooTraceConfig",
    "generate_yahoo_trace",
]
