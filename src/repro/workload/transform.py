"""Trace transformations: slice, merge, re-rate.

Utilities for composing experiment workloads out of existing traces —
take one busy hour out of a long trace, overlay two tenants' workloads
on a shared cluster, or stress-test by compressing arrivals — all
without touching the generators.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.errors import TraceFormatError
from repro.workload.trace import TraceFile, TraceJob, WorkloadTrace

__all__ = ["slice_trace", "merge_traces", "scale_arrival_rate",
           "truncate_jobs"]


def slice_trace(
    trace: WorkloadTrace,
    start: float,
    end: float,
    rebase: bool = True,
) -> WorkloadTrace:
    """Keep only the jobs submitted in ``[start, end)``.

    All files are retained (the job slice may touch any of them).  With
    ``rebase`` the remaining submit times shift so the window starts at
    time zero.
    """
    if not 0 <= start < end:
        raise TraceFormatError("need 0 <= start < end")
    offset = start if rebase else 0.0
    jobs = tuple(
        replace(job, submit_time=job.submit_time - offset)
        for job in trace.jobs
        if start <= job.submit_time < end
    )
    return WorkloadTrace(files=trace.files, jobs=jobs)


def merge_traces(first: WorkloadTrace, second: WorkloadTrace) -> WorkloadTrace:
    """Overlay two workloads on one cluster.

    The second trace's file and job ids are shifted past the first's so
    the merged trace stays well-formed; submit times are untouched, so
    the two job streams interleave chronologically.
    """
    file_offset = 1 + max(
        (f.file_id for f in first.files), default=-1
    )
    job_offset = 1 + max((j.job_id for j in first.jobs), default=-1)
    shifted_files = tuple(
        replace(f, file_id=f.file_id + file_offset) for f in second.files
    )
    shifted_jobs = tuple(
        replace(j, job_id=j.job_id + job_offset,
                file_id=j.file_id + file_offset)
        for j in second.jobs
    )
    return WorkloadTrace.from_records(
        files=first.files + shifted_files,
        jobs=first.jobs + shifted_jobs,
    )


def scale_arrival_rate(trace: WorkloadTrace, factor: float) -> WorkloadTrace:
    """Compress (``factor > 1``) or stretch (``< 1``) the arrival process.

    Submit times are divided by ``factor``; file contents and task
    durations are unchanged, so the same work arrives ``factor`` times
    faster.
    """
    if factor <= 0:
        raise TraceFormatError("factor must be positive")
    jobs = tuple(
        replace(job, submit_time=job.submit_time / factor)
        for job in trace.jobs
    )
    return WorkloadTrace(files=trace.files, jobs=jobs)


def truncate_jobs(trace: WorkloadTrace, max_jobs: int) -> WorkloadTrace:
    """Keep only the first ``max_jobs`` jobs (by submit order)."""
    if max_jobs < 0:
        raise TraceFormatError("max_jobs must be non-negative")
    return WorkloadTrace(files=trace.files, jobs=trace.jobs[:max_jobs])
