"""Bridge between the abstract placement model and the DFS simulator.

Aurora's optimizer reasons over :class:`~repro.core.placement.PlacementState`
(the paper's model) but acts on a live :class:`~repro.dfs.namenode.Namenode`.
This module converts between the two:

* :func:`snapshot_placement` builds a placement problem + state from the
  namenode's block map and a popularity snapshot;
* :func:`replay_operations` executes a local-search operation log as
  make-before-break block migrations (a swap is two opposing moves),
  skipping operations the live system can no longer satisfy.

The replay is where the optimizer meets reality: the operation log was
computed against a *snapshot*, and nodes can die between snapshot and
replay (or mid-replay).  An operation whose endpoint is gone makes the
whole log suspect — its cost model no longer matches the cluster — so
the replay aborts cleanly, counts the remainder as skipped, and
reconciles by triggering a replication check; failed individual moves
roll back inside the namenode (make-before-break keeps the source).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.core.instance import BlockSpec, PlacementProblem
from repro.core.operations import MoveOp, Operation, SwapOp
from repro.core.placement import PlacementState
from repro.dfs.namenode import Namenode
from repro.errors import DfsError
from repro.obs.registry import get_registry

__all__ = [
    "snapshot_placement",
    "replay_operations",
    "ReplayReport",
    "PlacementSnapshotCache",
]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_MIGRATIONS = _REG.counter(
    "repro_aurora_migrations_total",
    "Replayed local-search migrations, by live-system outcome",
    ["outcome"],
)
_MIGRATED_BYTES = _REG.counter(
    "repro_aurora_migrated_bytes_total",
    "Bytes of block data scheduled for migration by Aurora replays",
)


class PlacementSnapshotCache:
    """Per-block memo for :func:`snapshot_placement`.

    Between reconfiguration periods most blocks' placement never changes
    — only blocks touched by migrations, replication-factor updates,
    node failures or new writes do.  The block map flags exactly those
    (its dirty set); this cache keeps the previous period's
    :class:`BlockSpec` and location frozenset for every untouched block
    and rebuilds only the dirty ones, turning the per-period snapshot
    from O(blocks x replicas) hashing into O(dirty) plus a dict walk.

    A cached spec is additionally refreshed when the block's popularity
    changed (specs embed the popularity, which moves every window).
    One cache belongs to one namenode; hand it to
    :func:`snapshot_placement` on every call.
    """

    def __init__(self) -> None:
        self._specs: Dict[int, BlockSpec] = {}
        self._locations: Dict[int, FrozenSet[int]] = {}
        self._popularity: Dict[int, float] = {}

    def invalidate(self) -> None:
        """Drop every cached entry (next snapshot rebuilds from scratch)."""
        self._specs.clear()
        self._locations.clear()
        self._popularity.clear()

    def _evict(self, block_id: int) -> None:
        self._specs.pop(block_id, None)
        self._locations.pop(block_id, None)
        self._popularity.pop(block_id, None)


def snapshot_placement(
    namenode: Namenode,
    popularities: Mapping[int, float],
    cache: Optional[PlacementSnapshotCache] = None,
) -> PlacementState:
    """Freeze the namenode's current placement into an abstract state.

    Each block's spec uses the *current* replica count as its (fixed)
    replication factor — the load-balancing phase of Algorithm 5 moves
    replicas but never changes their number — and the popularity from
    the monitor snapshot (0 for blocks never accessed in the window).

    With a :class:`PlacementSnapshotCache`, specs and location sets of
    blocks untouched since the previous snapshot are reused instead of
    rebuilt; the result is identical to a from-scratch snapshot.
    """
    blockmap = namenode.blockmap
    if cache is not None:
        for block_id in blockmap.drain_dirty():
            cache._evict(block_id)
        cached_specs = cache._specs
        cached_locations = cache._locations
        cached_popularity = cache._popularity
    else:
        cached_specs = {}
        cached_locations = {}
        cached_popularity = {}
    specs = []
    assignment = {}
    for block_id in blockmap.block_ids():
        locations = cached_locations.get(block_id)
        if locations is None:
            locations = blockmap.locations(block_id)
            if cache is not None:
                cached_locations[block_id] = locations
        if not locations:
            continue
        popularity = float(popularities.get(block_id, 0.0))
        spec = cached_specs.get(block_id)
        if spec is None or cached_popularity.get(block_id) != popularity:
            meta = blockmap.meta(block_id)
            count = len(locations)
            spec = BlockSpec(
                block_id=block_id,
                popularity=popularity,
                replication_factor=count,
                rack_spread=min(meta.rack_spread, count),
            )
            if cache is not None:
                cached_specs[block_id] = spec
                cached_popularity[block_id] = popularity
        specs.append(spec)
        assignment[block_id] = locations
    problem = PlacementProblem(
        topology=namenode.topology, blocks=tuple(specs)
    )
    return PlacementState.from_assignment(problem, assignment)


@dataclass
class ReplayReport:
    """Outcome of replaying a local-search log on the live system.

    ``bytes_transferred`` sums the sizes of the blocks whose migration
    was issued (the reconfiguration traffic Theorem 9 trades against
    epsilon); ``elapsed_seconds`` is the wall-clock time spent issuing.
    ``moves_failed`` counts operations the live system rejected with an
    error (e.g. a block deleted mid-replay); when a replay endpoint node
    died since the snapshot, ``aborted`` is set, the rest of the log is
    counted as skipped, and the namenode reconciles.  ``moves_deferred``
    counts operations not attempted because the replay's ``max_moves``
    budget ran out — under Aurora brownout the budget is 0, so a whole
    planned log can be deferred to a later, calmer period.
    """

    moves_issued: int = 0
    moves_skipped: int = 0
    moves_failed: int = 0
    moves_deferred: int = 0
    blocks_transferred: int = 0
    bytes_transferred: int = 0
    elapsed_seconds: float = 0.0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def attempted(self) -> int:
        """Total migrations attempted."""
        return self.moves_issued + self.moves_skipped + self.moves_failed


def _issue_move(
    namenode: Namenode, report: ReplayReport, block: int, src: int, dst: int
) -> bool:
    started = False
    try:
        if (block in namenode.blockmap
                and src in namenode.blockmap.locations_view(block)):
            started = namenode.move_block(block, src, dst)
    except DfsError as exc:
        # The live system refused outright (block deleted mid-replay,
        # capacity race, ...).  Make-before-break means nothing moved.
        report.moves_failed += 1
        _LOG.warning("migration of block %d %d->%d failed: %s",
                     block, src, dst, exc)
        return False
    if started:
        report.moves_issued += 1
        report.blocks_transferred += 1
        report.bytes_transferred += namenode.blockmap.meta(block).size
    else:
        report.moves_skipped += 1
    return started


def _op_endpoints(op: Operation) -> Tuple[int, ...]:
    """The machine ids an operation touches."""
    return (op.src, op.dst)


def replay_operations(
    namenode: Namenode,
    operations: Iterable[Operation],
    abort_on_lost_nodes: bool = True,
    max_moves: Optional[int] = None,
) -> ReplayReport:
    """Execute an operation log against the live namenode.

    Moves become ``move_block`` migrations; swaps become two opposing
    migrations.  Operations that the live system rejects (node died,
    disk filled, replica already moved by a concurrent mechanism) are
    counted as skipped rather than failing the period.

    With ``abort_on_lost_nodes`` (the default), hitting an operation
    whose endpoint node has died since the snapshot aborts the rest of
    the log — the optimizer planned against a cluster that no longer
    exists — and triggers a replication check so the block map is
    repaired before the next period re-plans.

    ``max_moves`` bounds how many migrations this replay may *issue*;
    the rest of the log is counted as deferred.  Aurora brownout passes
    0 to compute-but-not-move an overloaded period.
    """
    started = time.perf_counter()
    report = ReplayReport()
    ops = list(operations)
    # Dead-node set hoisted out of the per-op loop: it is rebuilt only
    # when the namenode's membership epoch moves (a liveness flip mid-
    # replay still bumps it), so the common all-alive case costs one
    # integer compare per operation instead of per-op set construction
    # and `.alive` probes.
    dead_epoch: Optional[int] = None
    dead: FrozenSet[int] = frozenset()
    for index, op in enumerate(ops):
        if max_moves is not None and report.moves_issued >= max_moves:
            report.moves_deferred += len(ops) - index
            _LOG.info(
                "replay deferred %d of %d migrations (move budget %d "
                "spent)", report.moves_deferred, len(ops), max_moves,
            )
            break
        if abort_on_lost_nodes:
            epoch = namenode.membership_epoch
            if epoch != dead_epoch:
                dead_epoch = epoch
                dead = frozenset(
                    dn.node_id for dn in namenode.datanodes if not dn.alive
                )
            lost = (
                sorted(node for node in set(_op_endpoints(op))
                       if node in dead)
                if dead else ()
            )
            if lost:
                report.aborted = True
                report.abort_reason = (
                    f"node(s) {lost} lost since the placement snapshot"
                )
                report.moves_skipped += len(ops) - index
                _LOG.warning(
                    "replay aborted at op %d/%d (%s); reconciling",
                    index, len(ops), report.abort_reason,
                )
                namenode.check_replication()
                break
        if isinstance(op, MoveOp):
            _issue_move(namenode, report, op.block, op.src, op.dst)
        elif isinstance(op, SwapOp):
            _issue_move(namenode, report, op.block_i, op.src, op.dst)
            _issue_move(namenode, report, op.block_j, op.dst, op.src)
    report.elapsed_seconds = time.perf_counter() - started
    if _REG.enabled:
        if report.moves_issued:
            _MIGRATIONS.labels(outcome="issued").inc(report.moves_issued)
        if report.moves_skipped:
            _MIGRATIONS.labels(outcome="skipped").inc(report.moves_skipped)
        if report.moves_failed:
            _MIGRATIONS.labels(outcome="failed").inc(report.moves_failed)
        if report.moves_deferred:
            _MIGRATIONS.labels(outcome="deferred").inc(report.moves_deferred)
        if report.aborted:
            _MIGRATIONS.labels(outcome="aborted").inc()
        if report.bytes_transferred:
            _MIGRATED_BYTES.inc(report.bytes_transferred)
    if report.moves_skipped:
        _LOG.debug(
            "replay skipped %d of %d migrations",
            report.moves_skipped, report.attempted,
        )
    return report
