"""Aurora configuration.

Gathers every knob of Sections IV-V in one dataclass, with defaults
matching the paper's simulation setup: reconfiguration period of 1 hour,
usage window ``W = 2`` hours, replication-iteration cap ``K`` and the
epsilon admissibility threshold (the testbed uses ``epsilon = 0.8`` "as
suggested by our simulations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidProblemError
from repro.monitor.usage import DEFAULT_MONITOR_BUCKETS

__all__ = ["AuroraConfig"]


@dataclass(frozen=True)
class AuroraConfig:
    """All Aurora knobs.

    Parameters
    ----------
    epsilon:
        Admissibility threshold of Section IV.  0 accepts every
        improving operation; values near 1 only allow operations that
        nearly close a load gap, minimizing block movement.
    window:
        Usage-monitor sliding window ``W`` in seconds (paper: 2 hours).
    monitor_buckets:
        Number of fixed-width buckets the usage monitor splits ``W``
        into.  The default keeps counts exact at period boundaries for
        the stock window settings; higher values tighten the
        between-boundary overcount at O(buckets) memory per block.
    monitor_exact:
        Keep per-access timestamps instead of buckets, so popularity is
        exact at *every* query time, not just bucket-aligned ones.
        O(accesses) memory; meant for tests and offline analysis.
    period:
        Reconfiguration period in seconds (paper: 1 hour).
    max_replication_ops:
        ``K`` — cap on Algorithm 3 iterations per period (paper: 20000).
    replication_budget:
        ``beta`` — total replica budget for Algorithm 3, or ``None`` to
        disable dynamic replication (cases 1 and 2 of Section III).
    min_replication:
        ``k_low`` — reliability floor on every block's factor.
    rack_spread:
        ``rho`` — rack-level fault-tolerance requirement.
    max_move_ops:
        Optional cap on load-balancing operations per period.
    use_cost_admissibility:
        Switch to the literal Theorem 9 cost semantics instead of the
        default gap-closing interpretation (see DESIGN.md).
    replicate_on_read_probability:
        The paper's future-work extension borrowed from DARE [9]: after
        a remote read, keep a copy on the reader with this probability
        (0 disables).  The bytes already crossed the network, so these
        replicas are nearly free.
    replicate_on_read_budget:
        Cap on extra replicas created by replicate-on-read; least
        recently used ones are evicted beyond it.
    movement_compression:
        Compression ratio applied to Aurora's replication/migration
        traffic (the paper cites 27x from [10]); write pipelines are
        unaffected.
    brownout_epsilon:
        Epsilon used while the cluster is overloaded (brownout mode).
        The paper's testbed value 0.8 admits only operations that nearly
        close a load gap, so reconfiguration traffic all but stops.
    brownout_enter_threshold / brownout_exit_threshold:
        Hysteresis bounds on the cluster saturation signal (mean
        bounded-queue occupancy): brownout starts at or above the enter
        threshold and only ends at or below the exit threshold.
    brownout_defer_migrations:
        While browned out, defer the period's migration replay entirely
        (the plan is computed and reported but no blocks move).
    """

    epsilon: float = 0.1
    window: float = 2 * 3600.0
    monitor_buckets: int = DEFAULT_MONITOR_BUCKETS
    monitor_exact: bool = False
    period: float = 3600.0
    max_replication_ops: int = 20_000
    replication_budget: Optional[int] = None
    min_replication: int = 3
    rack_spread: int = 2
    max_move_ops: Optional[int] = None
    use_cost_admissibility: bool = False
    replicate_on_read_probability: float = 0.0
    replicate_on_read_budget: int = 500
    movement_compression: float = 1.0
    brownout_epsilon: float = 0.8
    brownout_enter_threshold: float = 0.7
    brownout_exit_threshold: float = 0.4
    brownout_defer_migrations: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 1.0:
            raise InvalidProblemError("epsilon must be in [0, 1)")
        if self.window <= 0:
            raise InvalidProblemError("window must be positive")
        if self.monitor_buckets < 1:
            raise InvalidProblemError("monitor_buckets must be >= 1")
        if self.period <= 0:
            raise InvalidProblemError("period must be positive")
        if self.max_replication_ops < 0:
            raise InvalidProblemError("max_replication_ops must be >= 0")
        if self.min_replication < 1:
            raise InvalidProblemError("min_replication must be >= 1")
        if not 1 <= self.rack_spread <= self.min_replication:
            raise InvalidProblemError(
                "rack_spread must be in [1, min_replication]"
            )
        if self.replication_budget is not None and self.replication_budget < 0:
            raise InvalidProblemError("replication_budget must be >= 0")
        if self.max_move_ops is not None and self.max_move_ops < 0:
            raise InvalidProblemError("max_move_ops must be >= 0")
        if not 0.0 <= self.replicate_on_read_probability <= 1.0:
            raise InvalidProblemError(
                "replicate_on_read_probability must be in [0, 1]"
            )
        if self.replicate_on_read_budget < 0:
            raise InvalidProblemError(
                "replicate_on_read_budget must be >= 0"
            )
        if self.movement_compression < 1.0:
            raise InvalidProblemError("movement_compression must be >= 1")
        if not 0.0 <= self.brownout_epsilon < 1.0:
            raise InvalidProblemError("brownout_epsilon must be in [0, 1)")
        if not 0.0 < self.brownout_enter_threshold <= 1.0:
            raise InvalidProblemError(
                "brownout_enter_threshold must be in (0, 1]"
            )
        if not (0.0 <= self.brownout_exit_threshold
                < self.brownout_enter_threshold):
            raise InvalidProblemError(
                "brownout_exit_threshold must be in "
                "[0, brownout_enter_threshold)"
            )
