"""Aurora: the dynamic block placement and replication framework.

Ties the paper's Section V components together over the DFS simulator:

* **usage monitor** — every namenode read lands in a sliding-window
  :class:`~repro.monitor.usage.UsageMonitor` (window ``W``);
* **block placement controller** — a
  :class:`~repro.dfs.policies.LoadAwarePolicy` (Algorithm 4) wired into
  the namenode, fed a popularity-based machine load metric;
* **placement optimizer** (Algorithm 5) — each period: snapshot window
  popularity, recompute replication factors with Algorithm 3 (capped at
  ``K`` operations, lazy deletion on decreases), then run the
  epsilon-admissible rack-aware local search (Algorithm 2) and replay
  the resulting moves/swaps as block migrations.

The same object exposes :meth:`optimize` for offline single-shot use and
:meth:`run_periodic` to ride a simulation clock.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.aurora.bridge import (
    PlacementSnapshotCache,
    ReplayReport,
    replay_operations,
    snapshot_placement,
)
from repro.aurora.config import AuroraConfig
from repro.core.admissibility import (
    AdmissibilityPolicy,
    AlwaysAdmissible,
    RelativeCostPolicy,
    RelativeGapPolicy,
)
from repro.core.local_search import SearchStats, balance_rack_aware
from repro.core.rep_factor import compute_replication_factors
from repro.dfs.namenode import Namenode
from repro.dfs.policies import LoadAwarePolicy
from repro.monitor.forecast import HistoricalPredictor, PopularityPredictor
from repro.monitor.usage import UsageMonitor
from repro.obs.registry import get_registry
from repro.obs.tracer import trace
from repro.overload.brownout import BrownoutController
from repro.simulation.engine import Simulation

__all__ = ["AuroraSystem", "PeriodReport"]

_DISK_TIEBREAK_WEIGHT = 1e-6

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_PERIODS = _REG.counter(
    "repro_aurora_periods_total",
    "Completed Algorithm 5 reconfiguration periods",
)
_PERIOD_SECONDS = _REG.histogram(
    "repro_aurora_period_seconds",
    "Wall-clock duration of one full reconfiguration period",
)
_PHASE_SECONDS = _REG.histogram(
    "repro_aurora_phase_seconds",
    "Wall-clock duration of one Algorithm 5 phase",
    ["phase"],
)
_COST = _REG.gauge(
    "repro_aurora_cost",
    "Max per-machine load before/after the latest balancing phase",
    ["stage"],
)
_REPLICATION_CHANGES = _REG.counter(
    "repro_aurora_replication_changes_total",
    "Replica-count deltas applied by the replication phase",
    ["direction"],
)
_OP_CAP_SATURATION = _REG.gauge(
    "repro_aurora_op_cap_saturation_ratio",
    "Fraction of the per-period operation cap K the last period used",
)
_ABORTED_PERIODS = _REG.counter(
    "repro_aurora_aborted_replays_total",
    "Periods whose migration replay aborted after losing a target node",
)
_EFFECTIVE_EPSILON = _REG.gauge(
    "repro_aurora_effective_epsilon",
    "Epsilon actually used by the latest period (raised under brownout)",
)


@dataclass
class PeriodReport:
    """What one Algorithm 5 period did.

    ``elapsed_seconds`` is the period's wall-clock duration;
    ``phase_seconds`` breaks it down by phase (``snapshot``,
    ``rep_factor``, ``local_search``, ``replay``).  ``brownout``,
    ``saturation`` and ``effective_epsilon`` record the overload
    decision this period ran under: during brownout epsilon is raised
    to the config's ``brownout_epsilon`` and (when configured) the
    migration replay is deferred entirely.
    """

    time: float
    cost_before: float = 0.0
    cost_after: float = 0.0
    replication_increases: int = 0
    replication_decreases: int = 0
    replication_rejections: int = 0
    search: Optional[SearchStats] = None
    replay: ReplayReport = field(default_factory=ReplayReport)
    elapsed_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    brownout: bool = False
    saturation: float = 0.0
    effective_epsilon: float = 0.0

    @property
    def aborted(self) -> bool:
        """Whether this period's migration replay aborted mid-way."""
        return self.replay.aborted

    @property
    def deferred_moves(self) -> int:
        """Migrations planned but deferred (brownout move budget)."""
        return self.replay.moves_deferred

    @property
    def improvement(self) -> float:
        """Relative reduction of the max machine load this period."""
        if self.cost_before <= 0:
            return 0.0
        return (self.cost_before - self.cost_after) / self.cost_before

    @property
    def operations_by_kind(self) -> Dict[str, int]:
        """The search phase's applied operations by kind (empty if none)."""
        if self.search is None:
            return {}
        return self.search.operations_by_kind


class AuroraSystem:
    """The Aurora framework bound to one namenode."""

    def __init__(
        self,
        namenode: Namenode,
        config: Optional[AuroraConfig] = None,
        predictor: Optional[PopularityPredictor] = None,
    ) -> None:
        self.namenode = namenode
        self.config = config or AuroraConfig()
        self.predictor = predictor or HistoricalPredictor()
        self.monitor = UsageMonitor(
            window=self.config.window,
            num_buckets=self.config.monitor_buckets,
            exact=self.config.monitor_exact,
        )
        namenode.access_listeners.append(self.monitor.record_access)
        # Incremental placement snapshots: blocks untouched since the
        # previous period reuse their cached BlockSpec/locations.
        self._snapshot_cache = PlacementSnapshotCache()
        namenode.placement_policy = LoadAwarePolicy()
        namenode.load_provider = self.node_load
        if self.config.movement_compression > 1.0:
            namenode.movement_compression = self.config.movement_compression
        self._node_load: List[float] = [0.0] * namenode.topology.num_machines
        # Brownout mode: hysteresis over the cluster saturation signal.
        # The default signal is the namenode's view of its bounded
        # service queues; experiments can inject their own provider
        # (e.g. demand/capacity derived from the usage monitor).
        self.brownout = BrownoutController(
            enter_threshold=self.config.brownout_enter_threshold,
            exit_threshold=self.config.brownout_exit_threshold,
        )
        self.saturation_provider: Optional[Callable[[], float]] = None
        # Optional TimeSeriesRecorder sampled at every period boundary,
        # so untimed runs (no DES periodic event) still get telemetry
        # points exactly where the system reconfigures.
        self.telemetry = None
        self.reports: List[PeriodReport] = []
        self.replicate_on_read = None
        if self.config.replicate_on_read_probability > 0:
            # The paper's future-work extension: adopt DARE's
            # replicate-on-read inside Aurora.
            from repro.baselines.dare import DareConfig, DareSystem

            self.replicate_on_read = DareSystem(
                namenode,
                DareConfig(
                    probability=self.config.replicate_on_read_probability,
                    budget_blocks=self.config.replicate_on_read_budget,
                ),
            )
            namenode.read_listeners.append(
                lambda block, reader, source, _time:
                self.replicate_on_read.on_read(block, reader, source)
            )

    # -- load metric --------------------------------------------------------

    def node_load(self, node: int) -> float:
        """Popularity load of ``node`` plus a tiny disk-usage tie-breaker.

        The popularity component is refreshed from the monitor each
        period (:meth:`refresh_loads`); the live disk term spreads the
        placement of brand-new (zero-popularity) blocks across equally
        loaded machines.
        """
        return (
            self._node_load[node]
            + _DISK_TIEBREAK_WEIGHT * self.namenode.datanodes[node].used_blocks
        )

    def refresh_loads(self, popularities: Dict[int, float]) -> None:
        """Recompute the per-node popularity load vector."""
        loads = [0.0] * self.namenode.topology.num_machines
        blockmap = self.namenode.blockmap
        for block_id, popularity in popularities.items():
            if popularity <= 0 or block_id not in blockmap:
                continue
            locations = blockmap.locations(block_id)
            if not locations:
                continue
            share = popularity / len(locations)
            for node in locations:
                loads[node] += share
        self._node_load = loads

    def predicted_popularities(self, now: float) -> Dict[int, float]:
        """Per-block popularity estimate for the coming period.

        Feeds the window snapshot into the predictor (the paper found the
        historical value sufficient, so the default predictor returns the
        snapshot unchanged).
        """
        snapshot = {
            block: float(count)
            for block, count in self.monitor.snapshot(now).items()
        }
        self.predictor.observe(snapshot)
        return self.predictor.predict()

    # -- Algorithm 5 -----------------------------------------------------------

    def admissibility_policy(
        self, epsilon: Optional[float] = None
    ) -> AdmissibilityPolicy:
        """The epsilon policy configured for this system.

        ``epsilon`` overrides the configured value — brownout periods
        pass the raised ``brownout_epsilon`` here.
        """
        if epsilon is None:
            epsilon = self.config.epsilon
        if epsilon == 0.0:
            return AlwaysAdmissible()
        if self.config.use_cost_admissibility:
            return RelativeCostPolicy(epsilon)
        return RelativeGapPolicy(epsilon)

    def observe_saturation(self, now: float) -> float:
        """One brownout-controller update from the saturation signal."""
        saturation = (
            self.saturation_provider()
            if self.saturation_provider is not None
            else self.namenode.cluster_saturation()
        )
        self.brownout.update(now, saturation)
        return saturation

    def optimize(self, now: Optional[float] = None) -> PeriodReport:
        """Run one reconfiguration period (Algorithm 5)."""
        now = self.namenode.now if now is None else now
        period_start = time.perf_counter()
        report = PeriodReport(time=now)
        report.saturation = self.observe_saturation(now)
        report.brownout = self.brownout.active
        report.effective_epsilon = (
            self.config.brownout_epsilon if report.brownout
            else self.config.epsilon
        )
        if report.brownout:
            holding = report.saturation < self.config.brownout_enter_threshold
            _LOG.warning(
                "aurora brownout%s: saturation %.2f (enter >= %.2f, "
                "exit <= %.2f); epsilon %.2f -> %.2f, defer_migrations=%s",
                " held by hysteresis" if holding else "",
                report.saturation, self.config.brownout_enter_threshold,
                self.config.brownout_exit_threshold,
                self.config.epsilon, report.effective_epsilon,
                self.config.brownout_defer_migrations,
            )
        with trace("aurora.period", sim_time=now) as span:
            with trace("aurora.snapshot", sim_time=now) as phase:
                phase_start = time.perf_counter()
                popularities = self.predicted_popularities(now)
                self.refresh_loads(popularities)
                phase.set(tracked_blocks=len(popularities))
                report.phase_seconds["snapshot"] = (
                    time.perf_counter() - phase_start
                )
            if self.config.replication_budget is not None:
                with trace("aurora.rep_factor", sim_time=now) as phase:
                    phase_start = time.perf_counter()
                    self._replication_phase(popularities, report)
                    self.refresh_loads(popularities)
                    phase.set(
                        increases=report.replication_increases,
                        decreases=report.replication_decreases,
                    )
                    report.phase_seconds["rep_factor"] = (
                        time.perf_counter() - phase_start
                    )
            self._balancing_phase(popularities, report, now)
            report.elapsed_seconds = time.perf_counter() - period_start
            span.set(
                cost_before=report.cost_before,
                cost_after=report.cost_after,
                migrations_issued=report.replay.moves_issued,
                bytes_transferred=report.replay.bytes_transferred,
                aborted=report.aborted,
                brownout=report.brownout,
            )
        self._flush_period_metrics(report)
        if self.telemetry is not None:
            self.telemetry.sample(now)
        if report.aborted:
            _LOG.warning(
                "aurora period aborted its replay (%s); block map "
                "reconciled, next period will re-plan",
                report.replay.abort_reason,
            )
        _LOG.info(
            "aurora period done sim_time=%.0f cost=%.6g->%.6g k+=%d k-=%d "
            "migrations=%d deferred=%d brownout=%s elapsed=%.4fs",
            now, report.cost_before, report.cost_after,
            report.replication_increases, report.replication_decreases,
            report.replay.moves_issued, report.deferred_moves,
            report.brownout, report.elapsed_seconds,
        )
        self.reports.append(report)
        return report

    def _flush_period_metrics(self, report: PeriodReport) -> None:
        """Publish one period's outcome to the metrics registry."""
        if not _REG.enabled:
            return
        _PERIODS.inc()
        _PERIOD_SECONDS.observe(report.elapsed_seconds)
        for phase, seconds in report.phase_seconds.items():
            _PHASE_SECONDS.labels(phase=phase).observe(seconds)
        _COST.labels(stage="before").set(report.cost_before)
        _COST.labels(stage="after").set(report.cost_after)
        if report.replication_increases:
            _REPLICATION_CHANGES.labels(direction="increase").inc(
                report.replication_increases
            )
        if report.replication_decreases:
            _REPLICATION_CHANGES.labels(direction="decrease").inc(
                report.replication_decreases
            )
        if report.replication_rejections:
            _REPLICATION_CHANGES.labels(direction="rejected").inc(
                report.replication_rejections
            )
        if report.aborted:
            _ABORTED_PERIODS.inc()
        _EFFECTIVE_EPSILON.set(report.effective_epsilon)
        cap = self.config.max_replication_ops
        if cap > 0:
            used = report.replication_increases + report.replication_decreases
            _OP_CAP_SATURATION.set(min(1.0, used / cap))

    def run_periodic(self, sim: Simulation) -> None:
        """Schedule :meth:`optimize` every ``period`` seconds."""
        sim.schedule_periodic(self.config.period, self.optimize)

    def reports_table(self) -> str:
        """All periods as a rendered table (for logs and reports)."""
        from repro.experiments.report import render_period_reports

        return render_period_reports(self.reports)

    def _replication_phase(
        self, popularities: Dict[int, float], report: PeriodReport
    ) -> None:
        """Recompute factors with Algorithm 3 and apply the deltas."""
        blockmap = self.namenode.blockmap
        block_ids = [b for b in blockmap.block_ids()]
        if not block_ids:
            return
        pops = {b: float(popularities.get(b, 0.0)) for b in block_ids}
        mins = {b: self.config.min_replication for b in block_ids}
        current = {
            b: max(blockmap.meta(b).replication_factor,
                   self.config.min_replication)
            for b in block_ids
        }
        budget = self.config.replication_budget
        assert budget is not None
        budget = max(budget, sum(mins.values()))
        result = compute_replication_factors(
            pops,
            mins,
            budget=budget,
            num_machines=self.namenode.topology.num_machines,
            initial_factors=current,
            max_iterations=self.config.max_replication_ops,
        )
        # Apply decreases first so lazy replicas free budget and space
        # before the increases copy data.  Per-block rejections (e.g. a
        # tenant's directory quota) are tolerated: the period continues
        # with the remaining blocks.
        from repro.errors import DfsError

        increases = []
        remaining_ops = self.config.max_replication_ops
        for block_id, target in result.factors.items():
            if target < current[block_id]:
                try:
                    self.namenode.set_replication(block_id, target)
                except DfsError:
                    report.replication_rejections += 1
                    continue
                report.replication_decreases += current[block_id] - target
            elif target > current[block_id]:
                increases.append((block_id, target))
        for block_id, target in increases:
            grant = target - current[block_id]
            if remaining_ops <= 0:
                break
            grant = min(grant, remaining_ops)
            try:
                self.namenode.set_replication(
                    block_id, current[block_id] + grant
                )
            except DfsError:
                report.replication_rejections += 1
                continue
            report.replication_increases += grant
            remaining_ops -= grant

    def _balancing_phase(
        self,
        popularities: Dict[int, float],
        report: PeriodReport,
        now: float = 0.0,
    ) -> None:
        """Epsilon-admissible rack-aware local search + live replay."""
        with trace("aurora.local_search", sim_time=now) as phase:
            phase_start = time.perf_counter()
            state = snapshot_placement(
                self.namenode, popularities, cache=self._snapshot_cache
            )
            report.cost_before = state.cost()
            stats = balance_rack_aware(
                state,
                policy=self.admissibility_policy(report.effective_epsilon),
                max_operations=self.config.max_move_ops,
                log_operations=True,
            )
            report.search = stats
            report.cost_after = stats.final_cost
            phase.set(
                operations=stats.total_operations,
                converged=stats.converged,
                pairs_probed=stats.pairs_probed,
                pairs_pruned=stats.pairs_pruned,
            )
            report.phase_seconds["local_search"] = (
                time.perf_counter() - phase_start
            )
        with trace("aurora.replay", sim_time=now) as phase:
            phase_start = time.perf_counter()
            max_moves = (
                0 if (report.brownout
                      and self.config.brownout_defer_migrations)
                else None
            )
            report.replay = replay_operations(
                self.namenode, stats.operations, max_moves=max_moves
            )
            phase.set(
                issued=report.replay.moves_issued,
                skipped=report.replay.moves_skipped,
                deferred=report.replay.moves_deferred,
            )
            report.phase_seconds["replay"] = time.perf_counter() - phase_start
