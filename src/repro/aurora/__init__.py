"""Aurora: dynamic block placement and replication for the DFS simulator."""

from repro.aurora.bridge import ReplayReport, replay_operations, snapshot_placement
from repro.aurora.config import AuroraConfig
from repro.aurora.system import AuroraSystem, PeriodReport

__all__ = [
    "ReplayReport",
    "replay_operations",
    "snapshot_placement",
    "AuroraConfig",
    "AuroraSystem",
    "PeriodReport",
]
