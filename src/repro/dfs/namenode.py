"""The namenode: namespace, block map, replication management.

This is the metadata brain of the HDFS simulator.  It owns the file
namespace, the :class:`~repro.dfs.blockmap.BlockMap`, the datanode
registry, and implements the behaviours Aurora builds on:

* writes through a pluggable
  :class:`~repro.dfs.policies.BlockPlacementPolicy`;
* reads that prefer node-local, then rack-local, then remote replicas;
* a run-time ``set_replication`` API (the paper: "The current HDFS
  already provides the API to control the number of replicas of each
  block at run-time");
* **lazy replica deletion**: when a block's target factor drops, excess
  replicas stay on disk serving reads and are only evicted when their
  node needs the space — "deletion of local block replicas is done lazily
  when disk space is needed ... allowing Aurora to reclaim the block if
  the replication factor needs to be increased again";
* failure handling: dead nodes lose their locations and under-replicated
  blocks are re-replicated from surviving copies;
* block migration (``move_block``) with make-before-break semantics.

All data movement goes through a :class:`~repro.dfs.replication.TransferService`,
so it costs simulated time and network bytes when a simulator is attached.
"""

from __future__ import annotations

import heapq
import logging
import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import DEFAULT_MAX_BLOCK_SIZE, BlockMeta, FileMeta
from repro.dfs.blockmap import BlockMap, ShardedBlockMap
from repro.dfs.datanode import Datanode
from repro.dfs.integrity import CorruptionLedger
from repro.dfs.namespace import NamespaceTree
from repro.dfs.policies import BlockPlacementPolicy, DefaultHdfsPolicy
from repro.dfs.replication import TransferService
from repro.errors import (
    CapacityExceededError,
    ChecksumError,
    DatanodeUnavailableError,
    DfsError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
    SafeModeError,
)
from repro.faults.retry import RetryPolicy
from repro.obs.registry import get_registry
from repro.obs.tracer import get_tracer
from repro.overload.queueing import Priority
from repro.simulation.engine import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overload.admission import AdmissionController

__all__ = ["Namenode"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_TRACER = get_tracer()
_READS = _REG.counter(
    "repro_dfs_reads_total",
    "Block reads routed by the namenode, by replica locality",
    ["locality"],
)
_REPLICATIONS = _REG.counter(
    "repro_dfs_replications_total",
    "Replica copies completed (re-replication and factor increases)",
)
_MIGRATIONS = _REG.counter(
    "repro_dfs_migrations_total",
    "Make-before-break block migrations completed",
)
_LAZY_EVICTIONS = _REG.counter(
    "repro_dfs_lazy_evictions_total",
    "Lazily deletable replicas evicted to reclaim disk space",
)
_RECLAIMED = _REG.counter(
    "repro_dfs_reclaimed_replicas_total",
    "Lazy replicas reclaimed for free when a factor rose again",
)
_NODE_EVENTS = _REG.counter(
    "repro_dfs_node_events_total",
    "Datanode lifecycle events seen by the namenode",
    ["event"],
)
_UNDER_REPLICATED = _REG.gauge(
    "repro_dfs_under_replicated_blocks",
    "Blocks below their target factor at the last replication check",
)
_UNDER_SPREAD = _REG.gauge(
    "repro_dfs_under_spread_blocks",
    "Blocks below their rack-spread target at the last replication check",
)
_TRANSFER_RETRIES = _REG.counter(
    "repro_dfs_transfer_retries_total",
    "Replication/migration transfers retried after a mid-flight failure",
)
_MIGRATION_ROLLBACKS = _REG.counter(
    "repro_dfs_migration_rollbacks_total",
    "Failed migrations rolled back (source replica kept, copy discarded)",
)
_MIGRATION_RETARGETS = _REG.counter(
    "repro_dfs_migration_retargets_total",
    "Failed migrations re-issued towards a different destination",
)
_REPL_REQUEUED = _REG.counter(
    "repro_dfs_replications_requeued_total",
    "Replications pushed back onto the priority queue after retry exhaustion",
)
_REPL_QUEUE_DEPTH = _REG.gauge(
    "repro_dfs_replication_queue_depth",
    "Blocks waiting in the prioritized re-replication queue",
)
_RECOVERY_SECONDS = _REG.histogram(
    "repro_dfs_recovery_seconds",
    "Simulated seconds from first under-replication to full replication",
)
_DEGRADED_READS = _REG.counter(
    "repro_dfs_degraded_reads_total",
    "Block reads served by a gray (slow) datanode",
)
_CORRUPT_REPORTED = _REG.counter(
    "repro_dfs_integrity_corrupt_replicas_total",
    "Corrupt replicas reported to the namenode, by detector",
    ["detector"],
)
_DETECTION_SECONDS = _REG.histogram(
    "repro_dfs_integrity_detection_seconds",
    "Simulated seconds from replica corruption to its detection",
    ["detector"],
)
_REPAIR_SECONDS = _REG.histogram(
    "repro_dfs_integrity_repair_seconds",
    "Simulated seconds from detection to full verified replication",
)
_PURGED = _REG.counter(
    "repro_dfs_integrity_replicas_purged_total",
    "Quarantined replicas deleted after the block was repaired",
)
_QUARANTINED = _REG.gauge(
    "repro_dfs_integrity_quarantined_replicas",
    "Replicas currently quarantined as corrupt",
)


class Namenode:
    """Metadata server of the simulated distributed file system."""

    def __init__(
        self,
        topology: ClusterTopology,
        placement_policy: Optional[BlockPlacementPolicy] = None,
        sim: Optional[Simulation] = None,
        transfer_service: Optional[TransferService] = None,
        default_replication: int = 3,
        default_rack_spread: int = 2,
        rng: Optional[random.Random] = None,
        retry_policy: Optional[RetryPolicy] = None,
        replication_throttle: Optional[int] = None,
        blockmap_shards: Optional[int] = None,
    ) -> None:
        if default_rack_spread > topology.num_racks:
            default_rack_spread = topology.num_racks
        if replication_throttle is not None and replication_throttle < 1:
            raise DfsError("replication_throttle must be >= 1")
        if blockmap_shards is not None and blockmap_shards < 1:
            raise DfsError("blockmap_shards must be >= 1")
        self.topology = topology
        self.sim = sim
        self.placement_policy = placement_policy or DefaultHdfsPolicy()
        self.transfers = transfer_service or TransferService(topology, sim=sim)
        # Gray datanodes stretch every transfer that touches them.
        self.transfers.node_slowdown = lambda node: self.datanodes[node].slowdown
        # Governs retry-on-alternate-source for failed transfers.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=5.0, max_delay=60.0, jitter=0.1
        )
        # Max concurrent re-replication transfers (None = unlimited);
        # excess work waits in a most-under-replicated-first queue.
        self.replication_throttle = replication_throttle
        self.default_replication = default_replication
        self.default_rack_spread = default_rack_spread
        # ``blockmap_shards`` selects the sharded block map (hash-sharded
        # block indexes, doubling growth) sized for 10k-machine clusters;
        # the default flat map is unchanged for small simulations.
        self.blockmap = (
            BlockMap(topology)
            if blockmap_shards is None
            else ShardedBlockMap(topology, num_shards=blockmap_shards)
        )
        self.datanodes: List[Datanode] = [
            Datanode(node, topology.capacity_of(node)) for node in topology.machines
        ]
        # Membership epoch: bumped every time any datanode's liveness
        # flips, including "silent" crashes injected directly on the
        # datanode object.  Lets membership-derived caches (the live-node
        # set here, the migration-replay dead set in repro.aurora.bridge)
        # revalidate with one integer compare instead of scanning every
        # node.
        self._membership_epoch = 0
        for dn in self.datanodes:
            dn.on_liveness_change = self._bump_membership_epoch
        self._live_cache: Set[int] = {
            dn.node_id for dn in self.datanodes if dn.alive
        }
        self._live_cache_epoch = 0
        self._rng = rng or random.Random(0)
        self.namespace = NamespaceTree()
        self._files_by_id: Dict[int, FileMeta] = {}
        self._next_file_id = 0
        self._next_block_id = 0
        # Lazily deletable replicas: (block_id, node) pairs above target.
        self._lazy: Set[Tuple[int, int]] = set()
        # Corrupt-replica quarantine and integrity statistics.  A
        # quarantined replica keeps its block-map location (the bytes
        # are physically there) but leaves the readable set, is never a
        # replication source, and is purged only after the block is
        # back to full verified replication — never when it is the last
        # remaining replica.
        self.integrity = CorruptionLedger()
        self._inflight: Set[Tuple[int, int]] = set()
        self._decommissioning: Set[int] = set()
        # Safe mode: mutations rejected until enough blocks have
        # reported a replica (see repro.dfs.safemode).
        self.safe_mode = False
        # Fencing hook (installed by repro.dfs.ha): called before every
        # mutation; raises FencedError when this namenode's leadership
        # term has been superseded, so a deposed leader cannot write.
        self.fence_check: Optional[Callable[[], None]] = None
        # Listeners notified on every block access: fn(block_id, time).
        self.access_listeners: List[Callable[[int, float], None]] = []
        # Richer read listeners: fn(block_id, reader, source, time) —
        # used by replicate-on-read mechanisms that need to know where
        # the bytes landed.
        self.read_listeners: List[Callable[[int, int, int, float], None]] = []
        # Optional popularity-load metric for load-aware policies; defaults
        # to disk usage when unset.
        self.load_provider: Optional[Callable[[int], float]] = None
        # Compression applied to replication/migration traffic only
        # (the paper cites a 27x ratio making movement overhead
        # acceptable); None defers to the transfer service's default.
        self.movement_compression: Optional[float] = None
        # Prioritized re-replication queue: (live replicas, seq, block).
        self._repl_queue: List[Tuple[int, int, int]] = []
        self._queued: Set[int] = set()
        # Retry chains waiting out a backoff hold no _inflight entry but
        # still promise a copy; counting them stops a concurrent
        # replication check from over-replicating the block.
        self._retry_pending: Dict[int, int] = {}
        self._queue_seq = 0
        self._repl_inflight = 0
        self._draining = False
        # Recovery-time tracking: when the current under-replication
        # episode began, and the durations of completed episodes.
        self._under_since: Optional[float] = None
        self.recovery_times: List[float] = []
        # Open "dfs.recovery" span for the current episode (tracing on).
        self._recovery_span = None
        # Admission gate for background traffic (installed by
        # repro.overload.protection; None admits everything).
        self.admission: Optional["AdmissionController"] = None
        # Latest queue saturation each datanode reported via heartbeat.
        self.node_saturation: Dict[int, float] = {}
        # Counters.
        self.replications_completed = 0
        self.moves_completed = 0
        self.lazy_evictions = 0
        self.reclaimed_replicas = 0
        self.transfer_retries = 0
        self.migration_rollbacks = 0
        self.migration_retargets = 0
        self.replications_requeued = 0
        self.degraded_reads = 0
        # Background work held back by overload protection.
        self.replications_deferred = 0
        self.replications_shed = 0
        self.migrations_deferred = 0
        self.migrations_shed = 0

    # -- time & liveness -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (0 without a simulator)."""
        return self.sim.now if self.sim is not None else 0.0

    def datanode(self, node: int) -> Datanode:
        """The datanode object for machine ``node``."""
        self.topology.check_machine(node)
        return self.datanodes[node]

    @property
    def membership_epoch(self) -> int:
        """Counter incremented whenever any datanode's liveness flips."""
        return self._membership_epoch

    def _bump_membership_epoch(self) -> None:
        self._membership_epoch += 1

    def live_nodes(self) -> Set[int]:
        """Ids of datanodes currently alive.

        The set is rebuilt only when the membership epoch moved; callers
        must treat it as read-only.
        """
        if self._live_cache_epoch != self._membership_epoch:
            self._live_cache = {
                dn.node_id for dn in self.datanodes if dn.alive
            }
            self._live_cache_epoch = self._membership_epoch
        return self._live_cache

    def cluster_saturation(self) -> float:
        """Mean bounded-queue occupancy across live datanodes.

        Reads installed service queues directly when present, else falls
        back to the latest heartbeat-reported values; 0 when the cluster
        runs without overload protection.  This is the signal Aurora's
        brownout controller and the admission gate's pressure function
        consume.
        """
        values = []
        for dn in self.datanodes:
            if not dn.alive:
                continue
            if dn.service_queue is not None:
                values.append(dn.service_queue.saturation(self.now))
            elif dn.node_id in self.node_saturation:
                values.append(self.node_saturation[dn.node_id])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def fail_node(
        self, node: int, re_replicate: bool = True, crash: bool = True
    ) -> None:
        """Take a datanode out of service; optionally repair replication.

        With ``crash=True`` (the default) the node's ground-truth
        liveness flips too.  ``crash=False`` only updates the namenode's
        *belief* — the heartbeat service uses it when an expiry may be a
        false suspicion (the node could merely have lost its beats), so
        a healthy node keeps serving in-flight reads while the namenode
        re-replicates around it.

        The node's replicas are removed from the block map (the namenode
        no longer routes to them) but stay on the node's disk, so a later
        block report (:meth:`register_block_report`) re-registers them.
        """
        dn = self.datanode(node)
        was_alive = dn.alive
        if crash:
            dn.crash()
        if was_alive:
            if _REG.enabled:
                _NODE_EVENTS.labels(event="fail" if crash else "suspect").inc()
            _LOG.warning(
                "datanode %d %s re_replicate=%s",
                node, "failed" if crash else "suspected dead", re_replicate,
            )
        # Idempotent: a node already processed has no locations left, so
        # the loop below is a no-op on repeat calls (e.g. when the
        # heartbeat service confirms a crash injected directly).
        for block_id in list(self.blockmap.blocks_on(node)):
            self.blockmap.remove_location(block_id, node)
            self._lazy.discard((block_id, node))
        if re_replicate:
            self.check_replication()

    def register_block_report(self, node: int) -> None:
        """Process a block report: re-register the node's replicas.

        Idempotent — locations already known are left alone.  Used when
        a node recovers and when a falsely suspected node's heartbeats
        resume.  Replication that happened in the interim may leave
        blocks above their target factor; the excess is marked lazily
        deletable, reclaimable if the factor rises again.
        """
        dn = self.datanode(node)
        if not dn.alive:
            return
        for block_id in dn.blocks():
            if block_id not in self.blockmap:
                dn.erase(block_id)
                continue
            if node not in self.blockmap.locations(block_id):
                self.blockmap.add_location(block_id, node)
            meta = self.blockmap.meta(block_id)
            excess = (
                self._active_replica_count(block_id) - meta.replication_factor
            )
            if excess > 0:
                self._mark_excess_lazy(block_id, excess)
        self._note_recovery_progress()

    def recover_node(self, node: int) -> None:
        """Bring a datanode back; its block report restores locations."""
        dn = self.datanode(node)
        if dn.alive:
            return
        dn.recover()
        if _REG.enabled:
            _NODE_EVENTS.labels(event="recover").inc()
        _LOG.info("datanode %d recovered blocks=%d", node, len(dn.blocks()))
        self.register_block_report(node)

    def wipe_node(self, node: int) -> int:
        """Replace a node's disk: retract locations, wipe, rejoin empty.

        The consistent way to model a hardware swap — a bare
        :meth:`Datanode.wipe` empties the disk but leaves the namenode
        mapping blocks at it (an fsck ``unreported-replica`` /
        ``dead-location`` window).  This retracts every location,
        forgets quarantine entries for the destroyed replicas, wipes
        the disk, rejoins the node, and starts repair.  Returns the
        number of replicas lost with the disk.
        """
        dn = self.datanode(node)
        lost = len(dn.blocks())
        for block_id in list(self.blockmap.blocks_on(node)):
            self.blockmap.remove_location(block_id, node)
            self._lazy.discard((block_id, node))
        for block_id in dn.blocks():
            self.integrity.release(block_id, node)
        dn.wipe()
        if _REG.enabled:
            _NODE_EVENTS.labels(event="wipe").inc()
            _QUARANTINED.set(self.integrity.quarantined_count)
        _LOG.warning("datanode %d wiped: %d replicas lost", node, lost)
        if not dn.alive:
            self.recover_node(node)  # rejoins with an empty block report
        self.check_replication()
        return lost

    # -- data integrity ---------------------------------------------------------

    def report_corrupt_replica(
        self, block_id: int, node: int, detector: str = "client"
    ) -> bool:
        """Quarantine a replica that failed checksum verification.

        Idempotent — repeated reports of the same replica return False.
        The replica leaves the readable set immediately, the block is
        pushed onto the prioritized re-replication queue (repair copies
        only from verified sources), and once the block is back to full
        verified replication the corrupt replica is purged — unless it
        is the last remaining replica, which is never deleted (fsck
        surfaces it as ``corrupt-last-replica`` instead).
        """
        if block_id not in self.blockmap:
            return False
        dn = self.datanode(node)
        if not dn.holds(block_id):
            return False
        if not self.integrity.quarantine(block_id, node):
            return False
        corrupted_at = dn.integrity(block_id).corrupted_at
        self.integrity.note_detection(
            block_id, detector, self.now, corrupted_at
        )
        # A corrupt replica is not reclaimable spare capacity.
        self._lazy.discard((block_id, node))
        if _REG.enabled:
            _CORRUPT_REPORTED.labels(detector=detector).inc()
            _QUARANTINED.set(self.integrity.quarantined_count)
            if corrupted_at is not None:
                _DETECTION_SECONDS.labels(detector=detector).observe(
                    max(0.0, self.now - corrupted_at)
                )
        _LOG.info(
            "corrupt replica of block %d on datanode %d reported by %s",
            block_id, node, detector,
        )
        self._enqueue_replication(block_id)
        self._drain_replication_queue()
        # A repair may already have landed (scrub finding old rot after
        # the block healed); sweep so the quarantine cannot go stale.
        self._sweep_corrupt(block_id)
        return True

    def verified_locations(self, block_id: int) -> List[int]:
        """Live replica holders not quarantined as corrupt — the
        readable set."""
        live = self.live_nodes()
        return [
            n for n in self.blockmap.live_locations(block_id, live)
            if not self.integrity.is_quarantined(block_id, n)
        ]

    def _sweep_corrupt(self, block_id: int) -> None:
        """Purge quarantined replicas once the block is safely repaired.

        A quarantined replica is deleted only when the block has at
        least ``replication_factor`` verified live replicas *and* more
        than one replica in total — the last remaining replica of a
        block is never deleted, even corrupt, because damaged bytes
        beat no bytes for offline recovery.
        """
        if block_id not in self.blockmap:
            return
        purged_any = False
        quarantined = self.integrity.nodes_for(block_id)
        if quarantined:
            meta = self.blockmap.meta(block_id)
            for node in sorted(quarantined):
                if len(self.verified_locations(block_id)) \
                        < meta.replication_factor:
                    break
                if self.blockmap.replica_count(block_id) <= 1:
                    break  # corrupt-last-replica: keep it, fsck flags it
                dn = self.datanodes[node]
                if not dn.alive:
                    # Cannot erase an unreachable disk; the quarantine
                    # entry persists so a recovery cannot silently
                    # return the corrupt replica to the readable set.
                    continue
                if node in self.blockmap.locations(block_id):
                    self.blockmap.remove_location(block_id, node)
                if dn.holds(block_id):
                    dn.erase(block_id)
                self.integrity.release(block_id, node)
                self.integrity.replicas_purged += 1
                purged_any = True
                if _REG.enabled:
                    _PURGED.inc()
                _LOG.info(
                    "purged corrupt replica of block %d from datanode %d",
                    block_id, node,
                )
        if (not self.integrity.nodes_for(block_id)
                and self.integrity.has_open_episode(block_id)
                and self._replication_deficit(
                    block_id, self.live_nodes()) == 0):
            elapsed = self.integrity.note_repaired(block_id, self.now)
            if elapsed is not None and _REG.enabled:
                _REPAIR_SECONDS.observe(elapsed)
        elif (purged_any and block_id in self.blockmap
                and self._replication_deficit(
                    block_id, self.live_nodes()) > 0):
            # Purging can shrink the replica set below the rack-spread
            # target (the corrupt copies may have been the only
            # cross-rack replicas); requeue the follow-up repair rather
            # than waiting for the next periodic check.
            self._enqueue_replication(block_id)
        if _REG.enabled:
            _QUARANTINED.set(self.integrity.quarantined_count)

    def fail_rack(self, rack: int, re_replicate: bool = True) -> None:
        """Fail every datanode in ``rack`` (ToR switch outage)."""
        for node in self.topology.machines_in_rack(rack):
            self.fail_node(node, re_replicate=False)
        if re_replicate:
            self.check_replication()

    def recover_rack(self, rack: int) -> None:
        """Recover every datanode in ``rack``."""
        for node in self.topology.machines_in_rack(rack):
            self.recover_node(node)

    # -- capacity & lazy deletion ----------------------------------------------

    def can_store(self, node: int, block_id: int) -> bool:
        """Whether ``node`` can accept a replica of ``block_id``.

        Lazily deletable replicas count as reclaimable space.
        """
        dn = self.datanodes[node]
        if not dn.alive or dn.holds(block_id):
            return False
        if node in self._decommissioning:
            return False
        if dn.free_blocks > 0:
            return True
        return any(pair[1] == node for pair in self._lazy)

    def node_load(self, node: int) -> float:
        """Load metric exposed to placement policies.

        Defaults to disk usage; Aurora installs a popularity-based
        provider via :attr:`load_provider`.
        """
        if self.load_provider is not None:
            return self.load_provider(node)
        return float(self.datanodes[node].used_blocks)

    def lazy_replicas(self) -> Set[Tuple[int, int]]:
        """Snapshot of (block, node) pairs pending lazy deletion."""
        return set(self._lazy)

    def _ensure_space(self, node: int) -> None:
        """Evict lazily deletable replicas until ``node`` has a free slot."""
        dn = self.datanodes[node]
        if dn.free_blocks > 0:
            return
        evictable = [pair for pair in self._lazy if pair[1] == node]
        for block_id, holder in evictable:
            self._lazy.discard((block_id, holder))
            self.blockmap.remove_location(block_id, holder)
            dn.erase(block_id)
            self.lazy_evictions += 1
            if _REG.enabled:
                _LAZY_EVICTIONS.inc()
            if dn.free_blocks > 0:
                return
        raise CapacityExceededError(f"datanode {node} disk full")

    def _check_writable(self) -> None:
        """Raise :class:`SafeModeError` while safe mode or fencing is on."""
        if self.fence_check is not None:
            self.fence_check()
        if self.safe_mode:
            raise SafeModeError("namenode is in safe mode")

    # -- namespace --------------------------------------------------------------

    def create_file(
        self,
        path: str,
        num_blocks: int,
        block_size: int = DEFAULT_MAX_BLOCK_SIZE,
        writer: Optional[int] = None,
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileMeta:
        """Create a file and write all its blocks through the policy.

        ``writer`` is the machine of the producing task (enables the
        local-write rule).  Each block's replicas are written through the
        transfer service as a pipeline: first replica, then each
        subsequent replica copied from the previous one.
        """
        self._check_writable()
        if self.namespace.exists(path):
            raise FileExistsInDfsError(f"path exists: {path}")
        if num_blocks < 1:
            raise DfsError("a file needs at least one block")
        replication = replication or self.default_replication
        rack_spread = rack_spread or min(self.default_rack_spread, replication)
        block_ids = []
        for _ in range(num_blocks):
            meta = BlockMeta(
                block_id=self._next_block_id,
                file_id=self._next_file_id,
                size=block_size,
                replication_factor=replication,
                rack_spread=min(rack_spread, replication),
            )
            self._next_block_id += 1
            self.blockmap.register(meta)
            targets = self.placement_policy.choose_targets(self, meta, writer)
            previous: Optional[int] = None
            for node in targets:
                self._write_replica(meta, node, source=previous)
                previous = node
            block_ids.append(meta.block_id)
        file_meta = FileMeta(
            file_id=self._next_file_id,
            path=path,
            block_ids=tuple(block_ids),
            block_size=block_size,
        )
        self._next_file_id += 1
        self.namespace.add_file(path, file_meta.file_id)
        self._files_by_id[file_meta.file_id] = file_meta
        return file_meta

    def delete_file(self, path: str) -> None:
        """Remove a file, its blocks and their replicas."""
        self._check_writable()
        meta = self.file(path)
        self.namespace.remove_file(path)
        self._drop_file_blocks(meta)

    def _drop_file_blocks(self, meta: FileMeta) -> None:
        for block_id in meta.block_ids:
            for node in self.blockmap.locations(block_id):
                dn = self.datanodes[node]
                # A dead node cannot serve the delete; its stale replica
                # is erased by the block report when it comes back.
                if dn.alive and dn.holds(block_id):
                    dn.erase(block_id)
                self._lazy.discard((block_id, node))
            self.integrity.clear_block(block_id)
            self.blockmap.unregister(block_id)
        del self._files_by_id[meta.file_id]

    def mkdir(self, path: str) -> None:
        """Create a directory (with parents, like ``hdfs dfs -mkdir -p``)."""
        self.namespace.mkdir(path)

    def list_directory(self, path: str) -> List[str]:
        """Names directly under the directory at ``path``."""
        return self.namespace.list_directory(path)

    def rename(self, source: str, destination: str) -> None:
        """Move a file or directory — pure metadata, no data movement."""
        self.namespace.rename(source, destination)
        for new_path, file_id in self.namespace.walk_files(destination):
            meta = self._files_by_id[file_id]
            if meta.path != new_path:
                self._files_by_id[file_id] = FileMeta(
                    file_id=meta.file_id,
                    path=new_path,
                    block_ids=meta.block_ids,
                    block_size=meta.block_size,
                )

    def delete_directory(self, path: str) -> int:
        """Recursively delete a directory; returns files removed."""
        removed = self.namespace.remove_directory(path)
        for file_id in removed:
            self._drop_file_blocks(self._files_by_id[file_id])
        return len(removed)

    def file(self, path: str) -> FileMeta:
        """Look up a file by path."""
        return self._files_by_id[self.namespace.file_id(path)]

    def file_by_id(self, file_id: int) -> FileMeta:
        """Look up a file by id."""
        try:
            return self._files_by_id[file_id]
        except KeyError:
            raise FileNotFoundInDfsError(f"no such file id: {file_id}") from None

    def list_files(self) -> List[str]:
        """All file paths, sorted."""
        return sorted(path for path, _ in self.namespace.walk_files("/"))

    # -- reads -------------------------------------------------------------------

    def choose_read_replica(self, block_id: int, reader: int) -> int:
        """The replica a client on ``reader`` should fetch.

        Preference: node-local, then rack-local, then a uniformly random
        remote replica — mirroring HDFS's network-distance ordering.
        Within the rack-local and remote tiers, gray (slow) nodes are
        avoided when a healthy replica exists.
        """
        live = self.live_nodes()
        if not self.blockmap.live_locations(block_id, live):
            raise DatanodeUnavailableError(
                f"block {block_id} has no live replica"
            )
        locations = self.verified_locations(block_id)
        if not locations:
            raise ChecksumError(
                f"every live replica of block {block_id} is quarantined "
                f"as corrupt"
            )
        if reader in locations:
            return reader
        reader_rack = self.topology.rack_of[reader]
        rack_local = [
            node for node in locations
            if self.topology.rack_of[node] == reader_rack
        ]
        if rack_local:
            return self._rng.choice(sorted(self._prefer_healthy(rack_local)))
        return self._rng.choice(sorted(self._prefer_healthy(locations)))

    def _prefer_healthy(self, nodes: List[int]) -> List[int]:
        """Drop gray nodes from a candidate pool unless all are gray."""
        healthy = [n for n in nodes if not self.datanodes[n].degraded]
        return healthy or list(nodes)

    def replica_preference(
        self, block_id: int, reader: int,
        exclude: FrozenSet[int] = frozenset(),
    ) -> List[int]:
        """All *believed* replica holders of ``block_id``, best first.

        The failover order a client walks when reads fail: node-local,
        then rack-local, then remote, healthy before gray within each
        tier, ties broken by a deterministic per-(block, reader) hash.
        Hashing (rather than node id) matters under load: an id
        tie-break would aim every remote-rack reader at the same
        replica and manufacture a hotspot the replicas could absorb.
        Unlike :meth:`choose_read_replica` this does **not** intersect
        with the live set — the namenode's metadata can be stale (a
        node can die between heartbeats), and the client discovers
        staleness by trying.  Quarantined replicas *are* excluded:
        known-corrupt bytes are never worth a round trip.  ``exclude``
        removes sources that already failed.
        """
        reader_rack = self.topology.rack_of[reader]

        def rank(node: int) -> Tuple[int, int, int, int]:
            if node == reader:
                tier = 0
            elif self.topology.rack_of[node] == reader_rack:
                tier = 1
            else:
                tier = 2
            spread = ((block_id * 40503 + reader) * 2654435761
                      + node * 2246822519) & 0xFFFFFFFF
            return (tier, 1 if self.datanodes[node].degraded else 0,
                    spread, node)

        candidates = [
            node for node in self.blockmap.locations(block_id)
            if node not in exclude
            and not self.integrity.is_quarantined(block_id, node)
        ]
        return sorted(candidates, key=rank)

    def record_access(
        self, block_id: int, reader: int, source: Optional[int] = None,
    ) -> int:
        """Read a block: pick a replica, account it, notify listeners.

        ``source`` lets a client that already chose (and possibly failed
        over to) a replica record the read it actually performed instead
        of re-routing.  Returns the node that served the read.
        """
        if source is None:
            source = self.choose_read_replica(block_id, reader)
        meta = self.blockmap.meta(block_id)
        self.datanodes[source].read(block_id, meta.size)
        if self.datanodes[source].degraded:
            self.degraded_reads += 1
            if _REG.enabled:
                _DEGRADED_READS.inc()
        if _REG.enabled:
            if source == reader:
                locality = "node_local"
            elif self.topology.rack_of[source] == self.topology.rack_of[reader]:
                locality = "rack_local"
            else:
                locality = "remote"
            _READS.labels(locality=locality).inc()
        for listener in self.access_listeners:
            listener(block_id, self.now)
        for listener in self.read_listeners:
            listener(block_id, reader, source, self.now)
        return source

    def is_file_available(self, path: str) -> bool:
        """Whether every block of ``path`` has a live replica."""
        live = self.live_nodes()
        return all(
            self.blockmap.is_available(block_id, live)
            for block_id in self.file(path).block_ids
        )

    # -- replication management ---------------------------------------------------

    def set_replication(self, block_id: int, factor: int) -> None:
        """Change a block's target replication factor at run time.

        Raising the factor first *reclaims* lazily deletable replicas
        (free — the bytes are still on disk), then copies new replicas.
        Lowering it marks the excess replicas lazily deletable.
        """
        self._check_writable()
        meta = self.blockmap.meta(block_id)
        if factor < 1:
            raise DfsError("replication factor must be >= 1")
        if factor > self.topology.num_machines:
            raise DfsError("replication factor exceeds cluster size")
        meta.replication_factor = factor
        meta.rack_spread = min(meta.rack_spread, factor)
        # rack_spread feeds the placement snapshot's BlockSpec, so the
        # mutation must invalidate the block's cached spec.
        self.blockmap.mark_dirty(block_id)
        current = self._active_replica_count(block_id)
        if factor > current:
            deficit = factor - current
            deficit -= self._reclaim_lazy(block_id, deficit)
            for _ in range(deficit):
                if not self.replicate_block(block_id):
                    break
        elif factor < current:
            self._mark_excess_lazy(block_id, current - factor)

    def _active_replica_count(self, block_id: int) -> int:
        """Replicas not marked for lazy deletion or quarantined."""
        lazy_here = sum(1 for pair in self._lazy if pair[0] == block_id)
        locations = self.blockmap.locations(block_id)
        quarantined_here = sum(
            1 for node in self.integrity.nodes_for(block_id)
            if node in locations
        )
        return (self.blockmap.replica_count(block_id)
                - lazy_here - quarantined_here)

    def _reclaim_lazy(self, block_id: int, want: int) -> int:
        """Un-mark up to ``want`` lazy replicas of ``block_id``; free."""
        reclaimed = 0
        for pair in sorted(p for p in self._lazy if p[0] == block_id):
            if reclaimed >= want:
                break
            self._lazy.discard(pair)
            reclaimed += 1
            self.reclaimed_replicas += 1
            if _REG.enabled:
                _RECLAIMED.inc()
        return reclaimed

    def _mark_excess_lazy(self, block_id: int, count: int) -> None:
        """Mark ``count`` replicas of ``block_id`` lazily deletable.

        Replicas on the most loaded nodes go first, and the block's rack
        spread (over non-lazy replicas) is preserved.
        """
        meta = self.blockmap.meta(block_id)
        active = [
            node for node in self.blockmap.locations(block_id)
            if (block_id, node) not in self._lazy
            and not self.integrity.is_quarantined(block_id, node)
        ]
        active.sort(key=self.node_load, reverse=True)
        for node in active:
            if count <= 0:
                return
            remaining = [n for n in active if n != node
                         and (block_id, n) not in self._lazy]
            racks = {self.topology.rack_of[n] for n in remaining}
            if len(racks) < meta.rack_spread:
                continue
            self._lazy.add((block_id, node))
            count -= 1

    def replicate_block(
        self, block_id: int, target: Optional[int] = None,
        on_done: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Copy one more replica of ``block_id`` from a live source.

        The target defaults to the least-loaded feasible node, preferring
        a new rack while the block is under its rack-spread target.
        Returns False when no source or target exists.

        A transfer that fails mid-flight (or lands on a node that died
        or filled up meanwhile) is retried under :attr:`retry_policy`
        with exponential backoff, preferring a source not yet tried and
        re-picking the target; once the policy is exhausted the block is
        pushed back onto the re-replication queue for the next check.
        """
        meta = self.blockmap.meta(block_id)
        live = self.live_nodes()
        # Copy-from-verified-source: a quarantined replica would clone
        # its corruption into the new copy.
        sources = sorted(self.verified_locations(block_id))
        if not sources:
            return False
        if target is None:
            target = self._pick_replication_target(block_id, meta, live)
            if target is None:
                return False
        if (block_id, target) in self._inflight:
            return False
        source = min(sources, key=self.transfers.active_transfers)
        src_queue = self.datanodes[source].service_queue
        if (src_queue is not None and src_queue.offer(
                self.now, Priority.RE_REPLICATION) is None):
            # The source's queue is saturated with higher-priority work
            # (client reads outrank re-replication); the next
            # replication check re-detects the deficit and retries.
            self.replications_shed += 1
            return False
        self._repl_inflight += 1
        self._start_replica_copy(
            block_id, source, target, on_done,
            attempt=1, tried=set(), waited=0.0,
        )
        return True

    def _start_replica_copy(
        self, block_id: int, source: int, target: int,
        on_done: Optional[Callable[[], None]],
        attempt: int, tried: Set[int], waited: float,
    ) -> None:
        """Issue one replication transfer attempt with retry wiring."""
        meta = self.blockmap.meta(block_id)
        self._inflight.add((block_id, target))
        copy_span = None
        if _TRACER.enabled:
            # Child of the open recovery episode, when there is one;
            # the transfer below links under this copy span in turn.
            copy_span = _TRACER.begin(
                "dfs.replica_copy", sim_time=self.now,
                parent=(
                    self._recovery_span.context
                    if self._recovery_span is not None else None
                ),
                block=block_id, source=source, target=target,
                attempt=attempt,
            )

        def _finish_copy(outcome: str) -> None:
            if copy_span is not None:
                copy_span.set(outcome=outcome)
                _TRACER.finish(copy_span, end_sim=self.now)

        def handle_failure() -> None:
            tried.add(source)
            if (block_id not in self.blockmap
                    or not self.retry_policy.admits(attempt, waited)):
                self._abandon_replication(block_id)
                return
            delay = self.retry_policy.delay(attempt, self._rng)
            self.transfer_retries += 1
            if _REG.enabled:
                _TRANSFER_RETRIES.inc()
            _LOG.info(
                "replication of block %d from %d to %d failed "
                "(attempt %d); retrying in %.1fs",
                block_id, source, target, attempt, delay,
            )
            self._retry_pending[block_id] = (
                self._retry_pending.get(block_id, 0) + 1
            )
            self._defer(delay, lambda: self._retry_replica_copy(
                block_id, on_done, attempt + 1, tried, waited + delay,
            ))

        def failed() -> None:
            self._inflight.discard((block_id, target))
            _finish_copy("failed")
            handle_failure()

        def complete() -> None:
            self._inflight.discard((block_id, target))
            if block_id not in self.blockmap:
                _finish_copy("block_deleted")
                self._end_replication()
                return
            dn = self.datanodes[target]
            if dn.holds(block_id):
                _finish_copy("duplicate")
                self._end_replication()
                return
            if not dn.alive:
                # The bytes landed on a node that died mid-transfer.
                _finish_copy("target_died")
                handle_failure()
                return
            try:
                self._ensure_space(target)
            except CapacityExceededError:
                _finish_copy("target_full")
                handle_failure()
                return
            src_dn = self.datanodes[source]
            if (src_dn.holds(block_id)
                    and not src_dn.verify_replica(block_id)):
                # In-flight checksum verification caught a rotten
                # source (corrupted after it was chosen, or never yet
                # detected): the copy is discarded rather than cloning
                # the damage, and the report below quarantines the
                # source and requeues the repair from a verified one.
                _finish_copy("source_corrupt")
                self._end_replication()
                self.report_corrupt_replica(
                    block_id, source, detector="transfer"
                )
                return
            dn.store(block_id, meta.size)
            self.blockmap.add_location(block_id, target)
            self.replications_completed += 1
            if _REG.enabled:
                _REPLICATIONS.inc()
            _finish_copy("ok")
            self._end_replication()
            self._note_recovery_progress()
            self._sweep_corrupt(block_id)
            if on_done is not None:
                on_done()

        self.transfers.transfer(
            meta.size, source, target, complete,
            compression_ratio=self.movement_compression,
            on_failure=failed,
            kind="replication",
            parent=(
                copy_span.context if copy_span is not None else None
            ),
        )

    def _retry_replica_copy(
        self, block_id: int, on_done: Optional[Callable[[], None]],
        attempt: int, tried: Set[int], waited: float,
    ) -> None:
        """Retry a failed replication from a fresh source/target pair."""
        pending = self._retry_pending.get(block_id, 0)
        if pending <= 1:
            self._retry_pending.pop(block_id, None)
        else:
            self._retry_pending[block_id] = pending - 1
        if block_id not in self.blockmap:
            self._end_replication()
            return
        meta = self.blockmap.meta(block_id)
        live = self.live_nodes()
        sources = sorted(self.verified_locations(block_id))
        if not sources:
            self._abandon_replication(block_id)
            return
        fresh = [s for s in sources if s not in tried]
        source = min(fresh or sources, key=self.transfers.active_transfers)
        target = self._pick_replication_target(block_id, meta, live)
        if target is None:
            self._abandon_replication(block_id)
            return
        self._start_replica_copy(
            block_id, source, target, on_done, attempt, tried, waited,
        )

    def _abandon_replication(self, block_id: int) -> None:
        """Give up on this retry chain; requeue for the next check."""
        self.replications_requeued += 1
        if _REG.enabled:
            _REPL_REQUEUED.inc()
        _LOG.warning("replication of block %d abandoned; requeued", block_id)
        if block_id in self.blockmap:
            self._enqueue_replication(block_id)
        self._end_replication()

    def _end_replication(self) -> None:
        """A replication chain finished; free its throttle slot."""
        self._repl_inflight = max(0, self._repl_inflight - 1)
        self._drain_replication_queue()

    def _defer(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` sim-seconds (immediately untimed)."""
        if self.sim is None:
            fn()
        else:
            self.sim.schedule(delay, fn)

    def _pick_replication_target(
        self, block_id: int, meta: BlockMeta, live: Set[int]
    ) -> Optional[int]:
        holders = self.blockmap.locations(block_id)
        holder_racks = {self.topology.rack_of[n] for n in holders}
        inflight_targets = {t for (b, t) in self._inflight if b == block_id}
        candidates = [
            node for node in live
            if node not in holders
            and node not in inflight_targets
            and self.can_store(node, block_id)
        ]
        if not candidates:
            return None
        if len(holder_racks) < meta.rack_spread:
            fresh = [
                node for node in candidates
                if self.topology.rack_of[node] not in holder_racks
            ]
            if fresh:
                candidates = fresh
        return min(candidates, key=self.node_load)

    def move_block(
        self, block_id: int, src: int, dst: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Migrate a replica from ``src`` to ``dst`` (make-before-break).

        The block is first copied to ``dst``; only after the copy lands is
        the ``src`` replica deleted, so availability never dips.  Rack
        spread is validated before starting.

        When the copy fails mid-flight (or ``dst`` dies or fills up
        before the bytes land), the migration *rolls back*: the source
        replica was never touched, the partial copy is discarded, and —
        while :attr:`retry_policy` admits it — the move is *re-targeted*
        at the best alternate destination after a backoff.
        """
        meta = self.blockmap.meta(block_id)
        locations = self.blockmap.locations(block_id)
        if src not in locations:
            raise DfsError(f"block {block_id} has no replica on {src}")
        if self.integrity.is_quarantined(block_id, src):
            # Migrating a corrupt replica would clone its corruption.
            return False
        if dst in locations or not self.can_store(dst, block_id):
            return False
        if (block_id, dst) in self._inflight:
            return False
        if not self._spread_ok_after_move(block_id, meta, src, dst):
            return False
        if (self.admission is not None
                and not self.admission.admit("migration", self.now)):
            # Token bucket empty (scaled by client pressure): migration
            # traffic yields; the caller may retry next period.
            self.migrations_deferred += 1
            return False
        src_queue = self.datanodes[src].service_queue
        if (src_queue is not None and src_queue.offer(
                self.now, Priority.MIGRATION) is None):
            self.migrations_shed += 1
            return False
        self._start_migration(
            block_id, src, dst, on_done,
            attempt=1, failed_dsts=set(), waited=0.0,
        )
        return True

    def _spread_ok_after_move(
        self, block_id: int, meta: BlockMeta, src: int, dst: int
    ) -> bool:
        """Whether moving ``src`` -> ``dst`` keeps the rack spread."""
        locations = self.blockmap.locations(block_id)
        racks_after = {
            self.topology.rack_of[n] for n in locations if n != src
        }
        racks_after.add(self.topology.rack_of[dst])
        return len(racks_after) >= meta.rack_spread

    def _start_migration(
        self, block_id: int, src: int, dst: int,
        on_done: Optional[Callable[[], None]],
        attempt: int, failed_dsts: Set[int], waited: float,
    ) -> None:
        """Issue one migration copy attempt with rollback/retarget wiring."""
        meta = self.blockmap.meta(block_id)
        self._inflight.add((block_id, dst))

        def handle_failure() -> None:
            # Make-before-break means rollback is free: the source
            # replica was never removed; only the copy is discarded.
            failed_dsts.add(dst)
            self.migration_rollbacks += 1
            if _REG.enabled:
                _MIGRATION_ROLLBACKS.inc()
            _LOG.warning(
                "migration of block %d from %d to %d failed (attempt %d); "
                "rolled back",
                block_id, src, dst, attempt,
            )
            if (block_id not in self.blockmap
                    or not self.retry_policy.admits(attempt, waited)):
                return
            delay = self.retry_policy.delay(attempt, self._rng)
            self.transfer_retries += 1
            if _REG.enabled:
                _TRANSFER_RETRIES.inc()
            self._defer(delay, lambda: self._retry_migration(
                block_id, src, on_done, attempt + 1, failed_dsts,
                waited + delay,
            ))

        def failed() -> None:
            self._inflight.discard((block_id, dst))
            handle_failure()

        def complete() -> None:
            self._inflight.discard((block_id, dst))
            if block_id not in self.blockmap:
                return
            dn = self.datanodes[dst]
            if dn.holds(block_id):
                return
            if not dn.alive:
                # Destination died while the bytes were in flight.
                handle_failure()
                return
            try:
                self._ensure_space(dst)
            except CapacityExceededError:
                handle_failure()
                return
            src_dn = self.datanodes[src]
            if (src_dn.holds(block_id)
                    and not src_dn.verify_replica(block_id)):
                # The in-flight checksum caught a rotten source.  Make-
                # before-break means nothing to roll back — the copy is
                # discarded, the source quarantined, and re-replication
                # from a verified replica owns the block from here.
                self.report_corrupt_replica(
                    block_id, src, detector="transfer"
                )
                return
            dn.store(block_id, meta.size)
            self.blockmap.add_location(block_id, dst)
            if src in self.blockmap.locations(block_id):
                self.blockmap.remove_location(block_id, src)
                self._lazy.discard((block_id, src))
                src_dn = self.datanodes[src]
                if src_dn.alive and src_dn.holds(block_id):
                    src_dn.erase(block_id)
            self.moves_completed += 1
            if _REG.enabled:
                _MIGRATIONS.inc()
            if on_done is not None:
                on_done()

        self.transfers.transfer(
            meta.size, src, dst, complete,
            compression_ratio=self.movement_compression,
            on_failure=failed,
            kind="migration",
        )

    def _retry_migration(
        self, block_id: int, src: int,
        on_done: Optional[Callable[[], None]],
        attempt: int, failed_dsts: Set[int], waited: float,
    ) -> None:
        """Re-target a rolled-back migration at an alternate destination."""
        if (block_id not in self.blockmap
                or src not in self.blockmap.locations(block_id)
                or not self.datanodes[src].alive):
            return  # the move is moot; replication repair owns the block
        meta = self.blockmap.meta(block_id)
        inflight_targets = {t for (b, t) in self._inflight if b == block_id}
        candidates = [
            node for node in self.live_nodes()
            if node not in self.blockmap.locations(block_id)
            and node not in failed_dsts
            and node not in inflight_targets
            and self.can_store(node, block_id)
            and self._spread_ok_after_move(block_id, meta, src, node)
        ]
        if not candidates:
            _LOG.warning(
                "migration of block %d off %d abandoned: "
                "no alternate destination", block_id, src,
            )
            return
        dst = min(candidates, key=self.node_load)
        self.migration_retargets += 1
        if _REG.enabled:
            _MIGRATION_RETARGETS.inc()
        self._start_migration(
            block_id, src, dst, on_done, attempt, failed_dsts, waited,
        )

    def decommission_node(self, node: int) -> int:
        """Gracefully drain ``node``: migrate all its replicas elsewhere.

        The node stops accepting new replicas immediately; existing
        replicas are migrated make-before-break (lazily deletable ones
        are simply evicted).  Returns the number of migrations started;
        in timed mode call again until :meth:`is_decommissioned` reports
        completion, mirroring HDFS's iterative decommission monitor.
        """
        self.topology.check_machine(node)
        if node not in self._decommissioning:
            if _REG.enabled:
                _NODE_EVENTS.labels(event="decommission").inc()
            _LOG.info("decommissioning datanode %d", node)
        self._decommissioning.add(node)
        started = 0
        for block_id in list(self.blockmap.blocks_on(node)):
            if (block_id, node) in self._lazy:
                self._lazy.discard((block_id, node))
                self.blockmap.remove_location(block_id, node)
                if self.datanodes[node].alive:
                    self.datanodes[node].erase(block_id)
                self.lazy_evictions += 1
                if _REG.enabled:
                    _LAZY_EVICTIONS.inc()
                continue
            meta = self.blockmap.meta(block_id)
            target = self._pick_replication_target(
                block_id, meta, self.live_nodes()
            )
            if target is not None and self.move_block(block_id, node, target):
                started += 1
                continue
            # The global pick may break the rack spread (the draining
            # node can be its rack's sole holder); retry within-rack.
            rack = self.topology.rack_of[node]
            rack_targets = [
                m for m in self.topology.machines_in_rack(rack)
                if m != node and self.can_store(m, block_id)
            ]
            for candidate in sorted(rack_targets, key=self.node_load):
                if self.move_block(block_id, node, candidate):
                    started += 1
                    break
        return started

    def is_decommissioned(self, node: int) -> bool:
        """Whether a draining node no longer stores any replica."""
        return (
            node in self._decommissioning
            and not self.blockmap.blocks_on(node)
        )

    def recommission_node(self, node: int) -> None:
        """Return a draining or drained node to normal service."""
        self._decommissioning.discard(node)

    def check_replication(self) -> int:
        """Queue and start repair for under-replicated / -spread blocks.

        Blocks are pushed onto a priority queue keyed by live replica
        count (most-under-replicated first — the blocks closest to data
        loss recover first) and the queue is drained up to
        :attr:`replication_throttle` concurrent transfers.  Returns the
        number of replication transfers started.  Called after failures
        and periodically by the heartbeat service.
        """
        live = self.live_nodes()
        under_replicated = list(self.blockmap.under_replicated(live))
        for block_id in under_replicated:
            self._enqueue_replication(block_id)
        # Blocks with quarantined replicas look fully replicated to the
        # block map; their verified deficit queues them here, and blocks
        # already repaired get their corrupt replicas purged.
        for block_id in sorted(self.integrity.open_blocks()):
            self._sweep_corrupt(block_id)
            if (block_id in self.blockmap
                    and self._replication_deficit(block_id, live) > 0):
                self._enqueue_replication(block_id)
        under_spread = list(self.blockmap.under_spread(live))
        for block_id in under_spread:
            meta = self.blockmap.meta(block_id)
            if self.blockmap.rack_spread(block_id) >= meta.rack_spread:
                continue
            self._enqueue_replication(block_id)
        if under_replicated and self._under_since is None:
            self._under_since = self.now
            if _TRACER.enabled:
                # The episode outlives this event; closed by whichever
                # callback restores full replication.
                self._recovery_span = _TRACER.begin(
                    "dfs.recovery", sim_time=self.now,
                    under_replicated=len(under_replicated),
                )
        elif not under_replicated and self._under_since is not None:
            self._close_recovery_episode()
        if _REG.enabled:
            _UNDER_REPLICATED.set(len(under_replicated))
            _UNDER_SPREAD.set(len(under_spread))
        started = self._drain_replication_queue()
        if started:
            _LOG.info(
                "replication check started=%d under_replicated=%d "
                "under_spread=%d queued=%d",
                started, len(under_replicated), len(under_spread),
                len(self._queued),
            )
        return started

    def _enqueue_replication(self, block_id: int) -> None:
        """Queue a block for repair, keyed by how exposed it is."""
        if block_id in self._queued or block_id not in self.blockmap:
            return
        live_count = len(self.verified_locations(block_id))
        self._queue_seq += 1
        heapq.heappush(
            self._repl_queue, (live_count, self._queue_seq, block_id)
        )
        self._queued.add(block_id)

    def _throttled(self) -> bool:
        """Whether the re-replication concurrency budget is spent."""
        return (
            self.replication_throttle is not None
            and self._repl_inflight >= self.replication_throttle
        )

    def _replication_deficit(self, block_id: int, live: Set[int]) -> int:
        """Copies still needed, counting in-flight transfers as made."""
        meta = self.blockmap.meta(block_id)
        # Only verified live replicas count towards the target: a
        # quarantined replica is physically present but must be
        # replaced, so it contributes to the deficit instead.
        live_count = sum(
            1 for n in self.blockmap.live_locations(block_id, live)
            if not self.integrity.is_quarantined(block_id, n)
        )
        inflight = sum(1 for (b, _t) in self._inflight if b == block_id)
        inflight += self._retry_pending.get(block_id, 0)
        missing = meta.replication_factor - live_count - inflight
        if (missing <= 0 and inflight == 0
                and self.blockmap.rack_spread(block_id) < meta.rack_spread):
            missing = 1
        return max(0, missing)

    def _drain_replication_queue(self) -> int:
        """Start queued repairs while the throttle has headroom."""
        if self._draining:
            return 0  # re-entrant call (a sync transfer completed)
        self._draining = True
        started = 0
        seen: Set[int] = set()
        try:
            while self._repl_queue and not self._throttled():
                if (self.admission is not None
                        and not self.admission.admit(
                            "replication", self.now)):
                    # Out of background tokens: stop draining; queued
                    # blocks keep their place for the next drain.
                    self.replications_deferred += 1
                    break
                _, _, block_id = heapq.heappop(self._repl_queue)
                self._queued.discard(block_id)
                if block_id in seen or block_id not in self.blockmap:
                    continue
                seen.add(block_id)
                missing = self._replication_deficit(
                    block_id, self.live_nodes()
                )
                for _ in range(missing):
                    if self._throttled():
                        break
                    if not self.replicate_block(block_id):
                        break
                    started += 1
                if (self._throttled()
                        and block_id in self.blockmap
                        and self._replication_deficit(
                            block_id, self.live_nodes()) > 0):
                    self._enqueue_replication(block_id)
        finally:
            self._draining = False
        if _REG.enabled:
            _REPL_QUEUE_DEPTH.set(len(self._queued))
        return started

    def _note_recovery_progress(self) -> None:
        """Close the under-replication episode once repair is done."""
        if self._under_since is None:
            return
        for _ in self.blockmap.under_replicated(self.live_nodes()):
            return  # still exposed
        self._close_recovery_episode()

    def _close_recovery_episode(self) -> None:
        if self._under_since is None:
            return
        elapsed = self.now - self._under_since
        self._under_since = None
        self.recovery_times.append(elapsed)
        if _REG.enabled:
            _RECOVERY_SECONDS.observe(elapsed)
        if self._recovery_span is not None:
            self._recovery_span.set(recovery_seconds=elapsed)
            _TRACER.finish(self._recovery_span, end_sim=self.now)
            self._recovery_span = None
        _LOG.info("cluster fully replicated again after %.1fs", elapsed)

    def audit(self) -> None:
        """Cross-check every piece of namenode state; raise on drift.

        Verifies that the block map, the datanode disks, the lazy set
        and the namespace agree.  Used by the fuzz tests after every
        random operation batch.
        """
        for block_id in self.blockmap.block_ids():
            meta = self.blockmap.meta(block_id)
            assert meta.file_id in self._files_by_id, (
                f"block {block_id} references unknown file {meta.file_id}"
            )
            for node in self.blockmap.locations(block_id):
                assert self.datanodes[node].holds(block_id), (
                    f"location drift: block {block_id} on node {node}"
                )
        for dn in self.datanodes:
            assert dn.used_blocks <= dn.capacity_blocks, (
                f"node {dn.node_id} over capacity"
            )
            if not dn.alive:
                continue
            for block_id in dn.blocks():
                if block_id in self.blockmap:
                    assert dn.node_id in self.blockmap.locations(block_id), (
                        f"unreported replica: block {block_id} on "
                        f"{dn.node_id}"
                    )
        for block_id, node in self._lazy:
            assert block_id in self.blockmap, (
                f"lazy entry for deleted block {block_id}"
            )
            assert node in self.blockmap.locations(block_id), (
                f"lazy entry without a location: {block_id}@{node}"
            )
            assert not self.integrity.is_quarantined(block_id, node), (
                f"quarantined replica marked lazy: {block_id}@{node}"
            )
        for block_id, node in self.integrity.quarantined():
            assert block_id in self.blockmap, (
                f"quarantine entry for deleted block {block_id}"
            )
            assert self.datanodes[node].holds(block_id), (
                f"quarantine entry without a replica: {block_id}@{node}"
            )
        seen_ids = set()
        for path, file_id in self.namespace.walk_files("/"):
            assert file_id in self._files_by_id, (
                f"namespace references unknown file id {file_id}"
            )
            assert self._files_by_id[file_id].path == path, (
                f"stale path for file {file_id}: "
                f"{self._files_by_id[file_id].path} != {path}"
            )
            seen_ids.add(file_id)
        assert seen_ids == set(self._files_by_id), (
            "files_by_id and namespace disagree"
        )
        for meta in self._files_by_id.values():
            for block_id in meta.block_ids:
                assert block_id in self.blockmap, (
                    f"file {meta.path} references unregistered block "
                    f"{block_id}"
                )

    def _write_replica(
        self, meta: BlockMeta, node: int, source: Optional[int]
    ) -> None:
        """Write one replica during file creation (pipeline hop)."""
        dn = self.datanodes[node]
        if not dn.alive:
            raise DatanodeUnavailableError(f"datanode {node} is down")
        self._ensure_space(node)
        dn.store(meta.block_id, meta.size)
        self.blockmap.add_location(meta.block_id, node)
        if source is not None:
            # The pipeline hop costs network time but the metadata commit
            # is synchronous (the paper's write path: the client blocks
            # until all replicas are written).
            self.transfers.transfer(meta.size, source, node, lambda: None)
