"""Namenode edit log: metadata durability and crash recovery.

Real HDFS journals every namespace mutation to an edit log so a restarted
namenode can reconstruct its metadata (helped along by datanode block
reports).  This module reproduces that mechanism for the simulator:

* :class:`EditLog` records namespace and replication-target mutations as
  plain dict entries (JSON-serializable, so logs can be persisted and
  inspected);
* :func:`attach_edit_log` wires a namenode to journal into a log;
* :func:`recover_namenode` replays a log into a fresh namenode and then
  applies the surviving datanodes' block reports — exactly HDFS's
  restart sequence (namespace from the journal, block locations from
  reports).

Block *locations* are deliberately not journaled: like HDFS, the
namenode treats them as soft state owned by the datanodes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.dfs.datanode import Datanode
from repro.dfs.namenode import Namenode
from repro.errors import DfsError

__all__ = ["EditLog", "attach_edit_log", "recover_namenode"]


class EditLog:
    """Append-only journal of namenode metadata mutations."""

    def __init__(self) -> None:
        self._entries: List[Dict] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[Dict]:
        """Copy of the journal, oldest first."""
        return list(self._entries)

    def append(self, op: str, **fields) -> None:
        """Record one mutation."""
        entry = {"op": op}
        entry.update(fields)
        self._entries.append(entry)

    def dump(self, path: Union[str, Path]) -> None:
        """Persist the journal as JSON lines."""
        with Path(path).open("w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EditLog":
        """Read a journal written by :meth:`dump`."""
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log._entries.append(json.loads(line))
        return log


def attach_edit_log(namenode: Namenode, log: Optional[EditLog] = None) -> EditLog:
    """Journal every metadata mutation of ``namenode`` into ``log``.

    Wraps the namenode's mutating methods; the wrappers journal *after*
    the operation succeeds, so failed operations leave no trace.
    """
    log = log or EditLog()

    original_create = namenode.create_file
    original_delete = namenode.delete_file
    original_delete_dir = namenode.delete_directory
    original_mkdir = namenode.mkdir
    original_rename = namenode.rename
    original_set_replication = namenode.set_replication

    def create_file(path, num_blocks, **kwargs):
        meta = original_create(path, num_blocks, **kwargs)
        first_block = namenode.blockmap.meta(meta.block_ids[0])
        log.append(
            "create_file",
            path=path,
            file_id=meta.file_id,
            block_ids=list(meta.block_ids),
            block_size=meta.block_size,
            replication=first_block.replication_factor,
            rack_spread=first_block.rack_spread,
        )
        return meta

    def delete_file(path):
        file_id = namenode.file(path).file_id
        original_delete(path)
        log.append("delete_file", path=path, file_id=file_id)

    def delete_directory(path):
        removed = original_delete_dir(path)
        log.append("delete_directory", path=path)
        return removed

    def mkdir(path):
        original_mkdir(path)
        log.append("mkdir", path=path)

    def rename(source, destination):
        original_rename(source, destination)
        log.append("rename", source=source, destination=destination)

    def set_replication(block_id, factor):
        original_set_replication(block_id, factor)
        log.append("set_replication", block_id=block_id, factor=factor)

    namenode.create_file = create_file  # type: ignore[method-assign]
    namenode.delete_file = delete_file  # type: ignore[method-assign]
    namenode.delete_directory = delete_directory  # type: ignore[method-assign]
    namenode.mkdir = mkdir  # type: ignore[method-assign]
    namenode.rename = rename  # type: ignore[method-assign]
    namenode.set_replication = set_replication  # type: ignore[method-assign]
    return log


def recover_namenode(
    fresh: Namenode,
    log: EditLog,
    surviving_datanodes: Iterable[Datanode],
) -> Namenode:
    """Rebuild namenode metadata from a journal plus block reports.

    ``fresh`` must be a newly constructed namenode over the same
    topology — or a partially recovered one: every step is applied
    idempotently (already-applied journal entries and already-known
    replicas are skipped), so a recovery that itself crashed can simply
    be re-run.  The journal restores the namespace, block metadata and
    replication targets; the surviving datanodes' block reports restore
    replica locations.  After recovery, :meth:`Namenode.check_replication`
    repairs whatever the crash lost.
    """
    from repro.dfs.block import BlockMeta, FileMeta

    for entry in log.entries:
        op = entry["op"]
        if op == "create_file":
            if entry["file_id"] in fresh._files_by_id:
                continue  # already applied by an interrupted recovery
            block_ids = entry["block_ids"]
            for block_id in block_ids:
                fresh.blockmap.register(BlockMeta(
                    block_id=block_id,
                    file_id=entry["file_id"],
                    size=entry["block_size"],
                    replication_factor=entry["replication"],
                    rack_spread=entry["rack_spread"],
                ))
            meta = FileMeta(
                file_id=entry["file_id"],
                path=entry["path"],
                block_ids=tuple(block_ids),
                block_size=entry["block_size"],
            )
            fresh.namespace.add_file(entry["path"], entry["file_id"])
            fresh._files_by_id[entry["file_id"]] = meta
            fresh._next_file_id = max(fresh._next_file_id, entry["file_id"] + 1)
            if block_ids:
                fresh._next_block_id = max(
                    fresh._next_block_id, max(block_ids) + 1
                )
        elif op == "delete_file":
            if entry["file_id"] not in fresh._files_by_id:
                continue  # already applied
            meta = fresh.file(entry["path"])
            fresh.namespace.remove_file(entry["path"])
            for block_id in meta.block_ids:
                fresh.blockmap.unregister(block_id)
            del fresh._files_by_id[meta.file_id]
        elif op == "delete_directory":
            if not fresh.namespace.is_directory(entry["path"]):
                continue  # already applied
            removed = fresh.namespace.remove_directory(entry["path"])
            for file_id in removed:
                meta = fresh._files_by_id.pop(file_id)
                for block_id in meta.block_ids:
                    fresh.blockmap.unregister(block_id)
        elif op == "mkdir":
            if not fresh.namespace.is_directory(entry["path"]):
                fresh.namespace.mkdir(entry["path"])
        elif op == "rename":
            if fresh.namespace.exists(entry["source"]):
                fresh.rename(entry["source"], entry["destination"])
        elif op == "set_replication":
            if entry["block_id"] in fresh.blockmap:
                meta_block = fresh.blockmap.meta(entry["block_id"])
                meta_block.replication_factor = entry["factor"]
                meta_block.rack_spread = min(
                    meta_block.rack_spread, entry["factor"]
                )
                fresh.blockmap.mark_dirty(entry["block_id"])
        else:
            raise DfsError(f"unknown edit log op {op!r}")

    # Block reports from the surviving datanodes restore locations.
    # Applied idempotently so recovery itself can crash and be re-run
    # over the same survivors without tripping duplicate-replica errors.
    # A survivor that died *during* recovery still gets its disk
    # contents restored — the bytes survive a reboot, and its eventual
    # :meth:`Namenode.recover_node` block report re-registers them —
    # but contributes no block-map locations: the map must only
    # reference replicas a live datanode has confirmed, or safe-mode
    # progress and the post-recovery replication check would count
    # replicas nobody can serve.
    for survivor in surviving_datanodes:
        node = survivor.node_id
        target = fresh.datanodes[node]
        target.alive = True  # restoring the disk needs a writable node
        for block_id in survivor.blocks():
            if block_id not in fresh.blockmap:
                continue
            if not target.holds(block_id):
                target.store(block_id, fresh.blockmap.meta(block_id).size)
            if (survivor.alive
                    and node not in fresh.blockmap.locations(block_id)):
                fresh.blockmap.add_location(block_id, node)
        if not survivor.alive:
            # Drop anything an earlier, interrupted recovery pass
            # registered before this node crashed.
            for block_id in fresh.blockmap.blocks_on(node):
                fresh.blockmap.remove_location(block_id, node)
        target.alive = survivor.alive
    return fresh
