"""Namenode edit log: metadata durability and crash recovery.

Real HDFS journals every namespace mutation to an edit log so a restarted
namenode can reconstruct its metadata (helped along by datanode block
reports).  This module reproduces that mechanism for the simulator:

* :class:`EditLog` records namespace and replication-target mutations as
  plain dict entries (JSON-serializable, so logs can be persisted and
  inspected); every entry carries a monotonically increasing ``seq``
  number so replicated followers can tail the journal and checkpoints
  can truncate it (:meth:`EditLog.entries_after`,
  :meth:`EditLog.truncate_through`);
* :func:`attach_edit_log` wires a namenode (and optionally its
  :class:`~repro.dfs.quota.QuotaManager`) to journal into a log;
* :func:`recover_namenode` replays a log into a fresh namenode and then
  applies the surviving datanodes' block reports — exactly HDFS's
  restart sequence (namespace from the journal, block locations from
  reports);
* :func:`build_checkpoint` / :func:`restore_checkpoint` snapshot the
  full namespace (files, block metadata, directories, quotas, id
  counters) so recovery replays only the journal *tail* past the last
  checkpoint instead of the whole history.

Block *locations* are deliberately not journaled or checkpointed: like
HDFS, the namenode treats them as soft state owned by the datanodes.

The module also declares which public mutators are journaled
(:data:`JOURNALED_MUTATORS`, :data:`QUOTA_JOURNALED_MUTATORS`) and why
the rest are exempt (:data:`EXEMPT_NAMENODE_METHODS`,
:data:`EXEMPT_QUOTA_METHODS`); a guard test diffs these registries
against the live classes so a future mutator cannot ship unjournaled by
accident.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Union,
)

from repro.dfs.datanode import Datanode
from repro.dfs.namenode import Namenode
from repro.errors import DfsError, EditLogCorruptError

__all__ = [
    "EditLog",
    "attach_edit_log",
    "recover_namenode",
    "replay_entries",
    "build_checkpoint",
    "restore_checkpoint",
    "JOURNALED_MUTATORS",
    "QUOTA_JOURNALED_MUTATORS",
    "EXEMPT_NAMENODE_METHODS",
    "EXEMPT_QUOTA_METHODS",
]


#: Namenode mutators wrapped by :func:`attach_edit_log`.  Durable
#: namespace state flows through exactly these.
JOURNALED_MUTATORS: FrozenSet[str] = frozenset({
    "create_file",
    "delete_file",
    "delete_directory",
    "mkdir",
    "rename",
    "set_replication",
})

#: QuotaManager mutators wrapped by :func:`attach_edit_log`.
QUOTA_JOURNALED_MUTATORS: FrozenSet[str] = frozenset({
    "set_quota",
    "clear_quota",
})

#: Public Namenode methods that are deliberately *not* journaled.
#: Queries return state without changing it; the rest mutate only soft
#: state (block locations, liveness, load) that block reports rebuild,
#: or operator state (decommission marks) that is re-issued, never
#: replayed.  A new public method must be added either here or to
#: :data:`JOURNALED_MUTATORS` or the coverage guard test fails.
EXEMPT_NAMENODE_METHODS: FrozenSet[str] = frozenset({
    # pure queries
    "audit",
    "can_store",
    "choose_read_replica",
    "cluster_saturation",
    "datanode",
    "file",
    "file_by_id",
    "is_decommissioned",
    "is_file_available",
    "lazy_replicas",
    "list_directory",
    "list_files",
    "live_nodes",
    "node_load",
    "replica_preference",
    "verified_locations",
    # soft state: block locations live on datanodes and are rebuilt
    # from block reports, never from the journal (HDFS semantics)
    "move_block",
    "replicate_block",
    "register_block_report",
    "check_replication",
    # liveness / membership: failure-detector beliefs, not metadata
    "fail_node",
    "recover_node",
    "fail_rack",
    "recover_rack",
    "wipe_node",
    # integrity quarantine: derived from on-disk checksums; after a
    # failover the scrubber/clients re-detect any still-corrupt replica,
    # so replaying reports would only duplicate soft state
    "report_corrupt_replica",
    # operator / workload state re-issued by its owner after restart
    "decommission_node",
    "recommission_node",
    "record_access",
})

#: Public QuotaManager methods that are deliberately not journaled
#: (queries only — both mutators are journaled).
EXEMPT_QUOTA_METHODS: FrozenSet[str] = frozenset({
    "quota_of",
    "usage",
})


class EditLog:
    """Append-only journal of namenode metadata mutations.

    Entries carry a monotonically increasing ``seq`` starting at 1.
    :meth:`truncate_through` drops a checkpointed prefix without
    disturbing the numbering, so followers tailing the log via
    :meth:`entries_after` never see a seq reused.
    """

    def __init__(self) -> None:
        self._entries: List[Dict] = []
        self._next_seq = 1
        #: Raw text of a torn trailing line found by :meth:`load` (the
        #: partially written entry a crash mid-append left behind), or
        #: ``None`` when the journal was clean.
        self.torn_line: Optional[str] = None
        #: Optional hook called with each appended entry — the HA layer
        #: points this at a :class:`~repro.dfs.store.MetadataStore` so
        #: the durable backend sees every mutation as it happens.
        self.sink: Optional[Callable[[Dict], None]] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[Dict]:
        """Copy of the retained journal, oldest first."""
        return list(self._entries)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent append (0 if none yet)."""
        return self._next_seq - 1

    @property
    def first_retained_seq(self) -> int:
        """Seq of the oldest retained entry (``last_seq + 1`` if empty)."""
        if self._entries:
            return self._entries[0]["seq"]
        return self._next_seq

    def entries_after(self, seq: int) -> List[Dict]:
        """Entries with sequence number strictly greater than ``seq``.

        Raises :class:`~repro.errors.DfsError` when ``seq`` predates the
        retained prefix (the caller must restore a checkpoint first).
        """
        if seq + 1 < self.first_retained_seq and seq < self.last_seq:
            raise DfsError(
                f"entries after seq {seq} were truncated "
                f"(oldest retained is {self.first_retained_seq})"
            )
        return [entry for entry in self._entries if entry["seq"] > seq]

    def append(self, op: str, **fields) -> Dict:
        """Record one mutation; returns the entry (with its ``seq``)."""
        entry = {"op": op, "seq": self._next_seq}
        entry.update(fields)
        self._next_seq += 1
        self._entries.append(entry)
        if self.sink is not None:
            self.sink(entry)
        return entry

    def resume_from(self, seq: int) -> None:
        """Continue numbering after ``seq`` (a promoted leader's log).

        The new leader's journal starts empty — history lives in its
        :class:`~repro.dfs.store.MetadataStore` — but its appends must
        extend the cluster-wide sequence, not restart it.
        """
        if self._entries:
            raise DfsError("resume_from requires an empty journal")
        self._next_seq = max(self._next_seq, seq + 1)

    def truncate_through(self, seq: int) -> int:
        """Drop entries with ``seq`` <= the given value; returns count.

        Called after a checkpoint at ``seq`` — the snapshot now covers
        the dropped prefix, so the journal stops growing without bound.
        """
        keep = [entry for entry in self._entries if entry["seq"] > seq]
        dropped = len(self._entries) - len(keep)
        self._entries = keep
        return dropped

    def dump(self, path: Union[str, Path]) -> None:
        """Persist the journal as JSON lines, atomically.

        The journal is written to a sibling temp file and moved into
        place with :func:`os.replace`, so a crash mid-dump leaves the
        previous journal intact rather than a truncated one.
        """
        path = Path(path)
        tmp = path.parent / (path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EditLog":
        """Read a journal written by :meth:`dump`.

        A torn *trailing* line (a crash mid-append) is tolerated: the
        partial entry is dropped and kept in :attr:`torn_line` for the
        caller to report.  Corruption anywhere else raises
        :class:`~repro.errors.EditLogCorruptError` — the journal is not
        trustworthy past a mid-file tear.
        """
        log = cls()
        raw_lines = Path(path).read_text(encoding="utf-8").splitlines()
        lines = [(i + 1, line) for i, line in enumerate(raw_lines)
                 if line.strip()]
        for position, (lineno, line) in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if position == len(lines) - 1:
                    log.torn_line = line
                    break
                raise EditLogCorruptError(
                    f"{path}: corrupt journal entry at line {lineno}: "
                    f"{exc}"
                ) from exc
            if "seq" not in entry:  # journals from before seq numbers
                entry["seq"] = log._next_seq
            log._entries.append(entry)
            log._next_seq = max(log._next_seq, entry["seq"] + 1)
        return log


def attach_edit_log(
    namenode: Namenode,
    log: Optional[EditLog] = None,
    quota: Optional["QuotaManager"] = None,
) -> EditLog:
    """Journal every metadata mutation of ``namenode`` into ``log``.

    Wraps the namenode's mutating methods; the wrappers journal *after*
    the operation succeeds, so failed operations leave no trace.  Pass
    the namenode's :class:`~repro.dfs.quota.QuotaManager` to journal
    quota mutations too — without it, quotas silently vanish on
    recovery.
    """
    # Not `log or EditLog()`: an empty EditLog is falsy (len 0), and
    # replacing it would silently drop its sink and resumed seq.
    log = EditLog() if log is None else log

    original_create = namenode.create_file
    original_delete = namenode.delete_file
    original_delete_dir = namenode.delete_directory
    original_mkdir = namenode.mkdir
    original_rename = namenode.rename
    original_set_replication = namenode.set_replication

    def create_file(path, num_blocks, **kwargs):
        meta = original_create(path, num_blocks, **kwargs)
        first_block = namenode.blockmap.meta(meta.block_ids[0])
        log.append(
            "create_file",
            path=path,
            file_id=meta.file_id,
            block_ids=list(meta.block_ids),
            block_size=meta.block_size,
            replication=first_block.replication_factor,
            rack_spread=first_block.rack_spread,
        )
        return meta

    def delete_file(path):
        file_id = namenode.file(path).file_id
        original_delete(path)
        log.append("delete_file", path=path, file_id=file_id)

    def delete_directory(path):
        removed = original_delete_dir(path)
        log.append("delete_directory", path=path)
        return removed

    def mkdir(path):
        original_mkdir(path)
        log.append("mkdir", path=path)

    def rename(source, destination):
        original_rename(source, destination)
        log.append("rename", source=source, destination=destination)

    def set_replication(block_id, factor):
        original_set_replication(block_id, factor)
        log.append("set_replication", block_id=block_id, factor=factor)

    namenode.create_file = create_file  # type: ignore[method-assign]
    namenode.delete_file = delete_file  # type: ignore[method-assign]
    namenode.delete_directory = delete_directory  # type: ignore[method-assign]
    namenode.mkdir = mkdir  # type: ignore[method-assign]
    namenode.rename = rename  # type: ignore[method-assign]
    namenode.set_replication = set_replication  # type: ignore[method-assign]

    if quota is not None:
        original_set_quota = quota.set_quota
        original_clear_quota = quota.clear_quota

        def set_quota(path, max_files=None, max_replicated_blocks=None):
            original_set_quota(
                path,
                max_files=max_files,
                max_replicated_blocks=max_replicated_blocks,
            )
            log.append(
                "set_quota",
                path=path,
                max_files=max_files,
                max_replicated_blocks=max_replicated_blocks,
            )

        def clear_quota(path):
            original_clear_quota(path)
            log.append("clear_quota", path=path)

        quota.set_quota = set_quota  # type: ignore[method-assign]
        quota.clear_quota = clear_quota  # type: ignore[method-assign]
    return log


def replay_entries(
    fresh: Namenode,
    entries: Iterable[Dict],
    quota: Optional["QuotaManager"] = None,
) -> int:
    """Apply journal ``entries`` to ``fresh`` idempotently.

    The workhorse behind :func:`recover_namenode` and follower catch-up
    in :mod:`repro.dfs.ha`.  Already-applied entries are skipped, so an
    interrupted replay can simply be re-run.  Returns the number of
    entries processed.
    """
    from repro.dfs.block import BlockMeta, FileMeta
    from repro.dfs.quota import QuotaManager

    replayed = 0
    for entry in entries:
        replayed += 1
        op = entry["op"]
        if op == "create_file":
            if entry["file_id"] in fresh._files_by_id:
                continue  # already applied by an interrupted recovery
            block_ids = entry["block_ids"]
            for block_id in block_ids:
                fresh.blockmap.register(BlockMeta(
                    block_id=block_id,
                    file_id=entry["file_id"],
                    size=entry["block_size"],
                    replication_factor=entry["replication"],
                    rack_spread=entry["rack_spread"],
                ))
            meta = FileMeta(
                file_id=entry["file_id"],
                path=entry["path"],
                block_ids=tuple(block_ids),
                block_size=entry["block_size"],
            )
            fresh.namespace.add_file(entry["path"], entry["file_id"])
            fresh._files_by_id[entry["file_id"]] = meta
            fresh._next_file_id = max(fresh._next_file_id, entry["file_id"] + 1)
            if block_ids:
                fresh._next_block_id = max(
                    fresh._next_block_id, max(block_ids) + 1
                )
        elif op == "delete_file":
            if entry["file_id"] not in fresh._files_by_id:
                continue  # already applied
            meta = fresh.file(entry["path"])
            fresh.namespace.remove_file(entry["path"])
            for block_id in meta.block_ids:
                fresh.blockmap.unregister(block_id)
            del fresh._files_by_id[meta.file_id]
        elif op == "delete_directory":
            if not fresh.namespace.is_directory(entry["path"]):
                continue  # already applied
            removed = fresh.namespace.remove_directory(entry["path"])
            for file_id in removed:
                meta = fresh._files_by_id.pop(file_id)
                for block_id in meta.block_ids:
                    fresh.blockmap.unregister(block_id)
        elif op == "mkdir":
            if not fresh.namespace.is_directory(entry["path"]):
                fresh.namespace.mkdir(entry["path"])
        elif op == "rename":
            if fresh.namespace.exists(entry["source"]):
                fresh.rename(entry["source"], entry["destination"])
        elif op == "set_replication":
            if entry["block_id"] in fresh.blockmap:
                meta_block = fresh.blockmap.meta(entry["block_id"])
                meta_block.replication_factor = entry["factor"]
                meta_block.rack_spread = min(
                    meta_block.rack_spread, entry["factor"]
                )
                fresh.blockmap.mark_dirty(entry["block_id"])
        elif op in ("set_quota", "clear_quota"):
            if quota is None:
                raise DfsError(
                    "journal contains quota mutations; pass the fresh "
                    "namenode's QuotaManager to replay them"
                )
            # Call the originals through the class so replay never
            # re-journals via an already-attached wrapper.
            if op == "set_quota":
                if fresh.namespace.is_directory(entry["path"]):
                    QuotaManager.set_quota(
                        quota,
                        entry["path"],
                        max_files=entry["max_files"],
                        max_replicated_blocks=entry["max_replicated_blocks"],
                    )
            else:
                QuotaManager.clear_quota(quota, entry["path"])
        else:
            raise DfsError(f"unknown edit log op {op!r}")
    return replayed


def recover_namenode(
    fresh: Namenode,
    log: EditLog,
    surviving_datanodes: Iterable[Datanode],
    quota: Optional["QuotaManager"] = None,
) -> Namenode:
    """Rebuild namenode metadata from a journal plus block reports.

    ``fresh`` must be a newly constructed namenode over the same
    topology — or a partially recovered one: every step is applied
    idempotently (already-applied journal entries and already-known
    replicas are skipped), so a recovery that itself crashed can simply
    be re-run.  The journal restores the namespace, block metadata and
    replication targets; the surviving datanodes' block reports restore
    replica locations.  After recovery, :meth:`Namenode.check_replication`
    repairs whatever the crash lost.
    """
    replay_entries(fresh, log.entries, quota=quota)

    # Block reports from the surviving datanodes restore locations.
    # Applied idempotently so recovery itself can crash and be re-run
    # over the same survivors without tripping duplicate-replica errors.
    # A survivor that died *during* recovery still gets its disk
    # contents restored — the bytes survive a reboot, and its eventual
    # :meth:`Namenode.recover_node` block report re-registers them —
    # but contributes no block-map locations: the map must only
    # reference replicas a live datanode has confirmed, or safe-mode
    # progress and the post-recovery replication check would count
    # replicas nobody can serve.
    for survivor in surviving_datanodes:
        node = survivor.node_id
        target = fresh.datanodes[node]
        target.alive = True  # restoring the disk needs a writable node
        for block_id in survivor.blocks():
            if block_id not in fresh.blockmap:
                continue
            if not target.holds(block_id):
                target.store(block_id, fresh.blockmap.meta(block_id).size)
            if (survivor.alive
                    and node not in fresh.blockmap.locations(block_id)):
                fresh.blockmap.add_location(block_id, node)
        if not survivor.alive:
            # Drop anything an earlier, interrupted recovery pass
            # registered before this node crashed.
            for block_id in fresh.blockmap.blocks_on(node):
                fresh.blockmap.remove_location(block_id, node)
        target.alive = survivor.alive
    return fresh


def build_checkpoint(
    namenode: Namenode,
    quota: Optional["QuotaManager"] = None,
    seq: int = 0,
    term: int = 0,
) -> Dict:
    """Snapshot durable namenode metadata as a JSON-serializable dict.

    Captures files, block metadata (sizes, replication targets),
    directories (including empty ones), quotas and the id counters —
    everything the journal would rebuild, so the journal prefix up to
    ``seq`` can be truncated.  Block locations are soft state and are
    *not* captured (block reports rebuild them).
    """
    files = []
    blocks = []
    for path, file_id in namenode.namespace.walk_files("/"):
        meta = namenode.file_by_id(file_id)
        files.append({
            "file_id": meta.file_id,
            "path": path,
            "block_ids": list(meta.block_ids),
            "block_size": meta.block_size,
        })
        for block_id in meta.block_ids:
            block = namenode.blockmap.meta(block_id)
            blocks.append({
                "block_id": block.block_id,
                "file_id": block.file_id,
                "size": block.size,
                "replication": block.replication_factor,
                "rack_spread": block.rack_spread,
            })
    quotas = {}
    if quota is not None:
        for path, limits in sorted(quota._quotas.items()):
            quotas[path] = {
                "max_files": limits.max_files,
                "max_replicated_blocks": limits.max_replicated_blocks,
            }
    return {
        "format": 1,
        "seq": seq,
        "term": term,
        "directories": list(namenode.namespace.walk_directories("/")),
        "files": files,
        "blocks": blocks,
        "quotas": quotas,
        "next_file_id": namenode._next_file_id,
        "next_block_id": namenode._next_block_id,
    }


def restore_checkpoint(
    fresh: Namenode,
    checkpoint: Dict,
    quota: Optional["QuotaManager"] = None,
) -> None:
    """Load a :func:`build_checkpoint` snapshot into a namenode.

    Idempotent, like journal replay: already-present directories, blocks
    and files are skipped, so an interrupted restore can be re-run.
    Journal entries after ``checkpoint["seq"]`` are applied on top via
    :func:`replay_entries`.
    """
    from repro.dfs.block import BlockMeta, FileMeta
    from repro.dfs.quota import QuotaManager

    for directory in checkpoint["directories"]:
        fresh.namespace.mkdir(directory)
    for block in checkpoint["blocks"]:
        if block["block_id"] in fresh.blockmap:
            continue
        fresh.blockmap.register(BlockMeta(
            block_id=block["block_id"],
            file_id=block["file_id"],
            size=block["size"],
            replication_factor=block["replication"],
            rack_spread=block["rack_spread"],
        ))
    for record in checkpoint["files"]:
        if record["file_id"] in fresh._files_by_id:
            continue
        fresh.namespace.add_file(record["path"], record["file_id"])
        fresh._files_by_id[record["file_id"]] = FileMeta(
            file_id=record["file_id"],
            path=record["path"],
            block_ids=tuple(record["block_ids"]),
            block_size=record["block_size"],
        )
    fresh._next_file_id = max(fresh._next_file_id, checkpoint["next_file_id"])
    fresh._next_block_id = max(
        fresh._next_block_id, checkpoint["next_block_id"]
    )
    if checkpoint["quotas"] and quota is None:
        raise DfsError(
            "checkpoint contains quotas; pass the fresh namenode's "
            "QuotaManager to restore them"
        )
    for path, limits in checkpoint["quotas"].items():
        QuotaManager.set_quota(
            quota,
            path,
            max_files=limits["max_files"],
            max_replicated_blocks=limits["max_replicated_blocks"],
        )
