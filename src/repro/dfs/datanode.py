"""Datanode: per-machine block storage and liveness.

"Each datanode is responsible for storing the actual data blocks on each
machine, and handling incoming read and write requests.  Each datanode
also periodically sends a heartbeat message to the namenode to report
machine and block status."  The heartbeat protocol itself lives in
:mod:`repro.dfs.heartbeat`; this class is the storage container with
capacity accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, FrozenSet, Optional, Set

from repro.errors import CapacityExceededError, DfsError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overload.queueing import BoundedServiceQueue

__all__ = ["Datanode"]


class Datanode:
    """Storage state of one datanode."""

    def __init__(self, node_id: int, capacity_blocks: int) -> None:
        if capacity_blocks < 0:
            raise DfsError("capacity must be non-negative")
        self.node_id = node_id
        self.capacity_blocks = capacity_blocks
        self.alive = True
        self.last_heartbeat = 0.0
        # Gray-failure service-rate multiplier: 1.0 = healthy, > 1 means
        # the node still beats and serves but everything takes longer.
        self.slowdown = 1.0
        # Bounded service queue installed by the overload-protection
        # wiring; None means requests are served without queueing.
        self.service_queue: Optional["BoundedServiceQueue"] = None
        # Invoked whenever ``alive`` actually flips.  The namenode
        # installs its membership-epoch bump here so even "silent"
        # crashes (fault injection flipping liveness directly on the
        # datanode) invalidate membership-derived caches.
        self.on_liveness_change: Optional[Callable[[], None]] = None
        self._blocks: Set[int] = set()
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def used_blocks(self) -> int:
        """Replicas currently stored."""
        return len(self._blocks)

    @property
    def free_blocks(self) -> int:
        """Remaining block slots."""
        return self.capacity_blocks - len(self._blocks)

    @property
    def degraded(self) -> bool:
        """Whether the node is in a gray state (slow but alive)."""
        return self.alive and self.slowdown > 1.0

    def queue_saturation(self, now: float) -> float:
        """Occupancy of the bounded service queue (0 without one)."""
        if self.service_queue is None:
            return 0.0
        return self.service_queue.saturation(now)

    @property
    def disk_utilization(self) -> float:
        """Fraction of capacity in use (what the HDFS balancer equalizes)."""
        if self.capacity_blocks == 0:
            return 1.0
        return len(self._blocks) / self.capacity_blocks

    def blocks(self) -> FrozenSet[int]:
        """Snapshot of stored block ids (the heartbeat block report)."""
        return frozenset(self._blocks)

    def holds(self, block_id: int) -> bool:
        """Whether this node stores a replica of ``block_id``."""
        return block_id in self._blocks

    def store(self, block_id: int, size: int = 0) -> None:
        """Write a replica onto local disk."""
        if not self.alive:
            raise DfsError(f"datanode {self.node_id} is down")
        if block_id in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} already stores block {block_id}"
            )
        if len(self._blocks) >= self.capacity_blocks:
            raise CapacityExceededError(f"datanode {self.node_id} disk full")
        self._blocks.add(block_id)
        self.bytes_written += size

    def erase(self, block_id: int) -> None:
        """Delete a replica from local disk."""
        if block_id not in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} does not store block {block_id}"
            )
        self._blocks.discard(block_id)

    def read(self, block_id: int, size: int = 0) -> None:
        """Serve a read of a stored replica (accounting only)."""
        if not self.alive:
            raise DfsError(f"datanode {self.node_id} is down")
        if block_id not in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} does not store block {block_id}"
            )
        self.bytes_read += size

    def crash(self) -> None:
        """Simulate a failure: the node stops serving but keeps its disk.

        HDFS datanodes that come back after a failure re-report their
        blocks, so stored replicas survive a crash/recover cycle.
        """
        if self.alive:
            self.alive = False
            if self.on_liveness_change is not None:
                self.on_liveness_change()

    def recover(self) -> None:
        """Bring the node back online with its disk contents intact."""
        self.slowdown = 1.0
        if not self.alive:
            self.alive = True
            if self.on_liveness_change is not None:
                self.on_liveness_change()

    def wipe(self) -> None:
        """Permanently lose the disk (e.g. hardware replacement)."""
        self._blocks.clear()
        self.slowdown = 1.0
        if not self.alive:
            self.alive = True
            if self.on_liveness_change is not None:
                self.on_liveness_change()
