"""Datanode: per-machine block storage and liveness.

"Each datanode is responsible for storing the actual data blocks on each
machine, and handling incoming read and write requests.  Each datanode
also periodically sends a heartbeat message to the namenode to report
machine and block status."  The heartbeat protocol itself lives in
:mod:`repro.dfs.heartbeat`; this class is the storage container with
capacity accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Optional, Set

from repro.dfs.integrity import (
    ReplicaIntegrity,
    corruption_mask,
    replica_checksum,
)
from repro.errors import CapacityExceededError, ChecksumError, DfsError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overload.queueing import BoundedServiceQueue

__all__ = ["Datanode"]


class Datanode:
    """Storage state of one datanode."""

    def __init__(self, node_id: int, capacity_blocks: int) -> None:
        if capacity_blocks < 0:
            raise DfsError("capacity must be non-negative")
        self.node_id = node_id
        self.capacity_blocks = capacity_blocks
        self.alive = True
        self.last_heartbeat = 0.0
        # Gray-failure service-rate multiplier: 1.0 = healthy, > 1 means
        # the node still beats and serves but everything takes longer.
        self.slowdown = 1.0
        # Bounded service queue installed by the overload-protection
        # wiring; None means requests are served without queueing.
        self.service_queue: Optional["BoundedServiceQueue"] = None
        # Invoked whenever ``alive`` actually flips.  The namenode
        # installs its membership-epoch bump here so even "silent"
        # crashes (fault injection flipping liveness directly on the
        # datanode) invalidate membership-derived caches.
        self.on_liveness_change: Optional[Callable[[], None]] = None
        self._blocks: Set[int] = set()
        # Per-replica checksum state; every stored block has an entry.
        self._integrity: Dict[int, ReplicaIntegrity] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def used_blocks(self) -> int:
        """Replicas currently stored."""
        return len(self._blocks)

    @property
    def free_blocks(self) -> int:
        """Remaining block slots."""
        return self.capacity_blocks - len(self._blocks)

    @property
    def degraded(self) -> bool:
        """Whether the node is in a gray state (slow but alive)."""
        return self.alive and self.slowdown > 1.0

    def queue_saturation(self, now: float) -> float:
        """Occupancy of the bounded service queue (0 without one)."""
        if self.service_queue is None:
            return 0.0
        return self.service_queue.saturation(now)

    @property
    def disk_utilization(self) -> float:
        """Fraction of capacity in use (what the HDFS balancer equalizes)."""
        if self.capacity_blocks == 0:
            return 1.0
        return len(self._blocks) / self.capacity_blocks

    def blocks(self) -> FrozenSet[int]:
        """Snapshot of stored block ids (the heartbeat block report)."""
        return frozenset(self._blocks)

    def holds(self, block_id: int) -> bool:
        """Whether this node stores a replica of ``block_id``."""
        return block_id in self._blocks

    def store(
        self,
        block_id: int,
        size: int = 0,
        generation: int = 0,
        checksum: Optional[int] = None,
    ) -> None:
        """Write a replica onto local disk.

        The stored checksum defaults to the correct one for
        ``(block_id, generation)``; passing ``checksum`` explicitly
        models a write that was already damaged in flight.
        """
        if not self.alive:
            raise DfsError(f"datanode {self.node_id} is down")
        if block_id in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} already stores block {block_id}"
            )
        if len(self._blocks) >= self.capacity_blocks:
            raise CapacityExceededError(f"datanode {self.node_id} disk full")
        self._blocks.add(block_id)
        if checksum is None:
            checksum = replica_checksum(block_id, generation)
        self._integrity[block_id] = ReplicaIntegrity(
            generation=generation, checksum=checksum
        )
        self.bytes_written += size

    def erase(self, block_id: int) -> None:
        """Delete a replica from local disk."""
        if not self.alive:
            raise DfsError(f"datanode {self.node_id} is down")
        if block_id not in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} does not store block {block_id}"
            )
        self._blocks.discard(block_id)
        self._integrity.pop(block_id, None)

    def read(self, block_id: int, size: int = 0, verify: bool = False) -> None:
        """Serve a read of a stored replica (accounting only).

        With ``verify=True`` the read checks the stored checksum and
        raises :class:`~repro.errors.ChecksumError` on a mismatch —
        corrupt bytes are never silently returned.
        """
        if not self.alive:
            raise DfsError(f"datanode {self.node_id} is down")
        if block_id not in self._blocks:
            raise DfsError(
                f"datanode {self.node_id} does not store block {block_id}"
            )
        if verify and not self.verify_replica(block_id):
            raise ChecksumError(
                f"datanode {self.node_id} replica of block {block_id} "
                f"failed checksum verification"
            )
        self.bytes_read += size

    # -- integrity ------------------------------------------------------------

    def integrity(self, block_id: int) -> ReplicaIntegrity:
        """The integrity record of a stored replica."""
        try:
            return self._integrity[block_id]
        except KeyError:
            raise DfsError(
                f"datanode {self.node_id} does not store block {block_id}"
            ) from None

    def verify_replica(self, block_id: int) -> bool:
        """Whether the stored checksum matches the expected one."""
        rec = self.integrity(block_id)
        return rec.checksum == replica_checksum(block_id, rec.generation)

    def corrupt_replica(
        self, block_id: int, at: float = 0.0, kind: str = "bit-rot"
    ) -> None:
        """Silently damage a stored replica in place.

        Disk rot does not care whether the node is serving, so this
        works on dead nodes too.  ``at`` stamps when the damage
        happened (sim time) for detection-latency accounting; the first
        corruption of a replica wins, repeated hits just rot further.
        """
        rec = self.integrity(block_id)
        # Absolute assignment, not an XOR of the current value: rotting
        # an already-rotten replica must keep it rotten, never restore
        # the expected checksum by accident.
        rec.checksum = (
            replica_checksum(block_id, rec.generation)
            ^ corruption_mask(kind)
        )
        if rec.corrupted_at is None:
            rec.corrupted_at = at
            rec.corruption = kind

    def torn_write(self, block_id: int, at: float = 0.0) -> None:
        """Model a torn write: a partially persisted replica update.

        The generation stamp advances (the write "happened") but the
        stored checksum stays at the old generation's value, so
        verification against the new generation fails.
        """
        rec = self.integrity(block_id)
        rec.generation += 1
        if rec.corrupted_at is None:
            rec.corrupted_at = at
            rec.corruption = "torn-write"

    def crash(self) -> None:
        """Simulate a failure: the node stops serving but keeps its disk.

        HDFS datanodes that come back after a failure re-report their
        blocks, so stored replicas survive a crash/recover cycle.
        """
        if self.alive:
            self.alive = False
            if self.on_liveness_change is not None:
                self.on_liveness_change()

    def recover(self) -> None:
        """Bring the node back online with its disk contents intact."""
        self.slowdown = 1.0
        if not self.alive:
            self.alive = True
            if self.on_liveness_change is not None:
                self.on_liveness_change()

    def wipe(self) -> None:
        """Permanently lose the disk contents (hardware replacement).

        Wiping only empties the disk — it deliberately does *not*
        change liveness.  A dead node stays dead until :meth:`recover`;
        resurrecting here would bring a node back while the namenode
        still maps blocks to it (use
        :meth:`repro.dfs.namenode.Namenode.wipe_node` to wipe, retract
        locations, and rejoin in one consistent step).
        """
        self._blocks.clear()
        self._integrity.clear()
        self.slowdown = 1.0
