"""Pluggable block placement policies for the namenode.

Two policies ship with the simulator:

* :class:`DefaultHdfsPolicy` — stock HDFS behaviour per the paper's
  footnote 1: a task-written block keeps its first replica local and
  places the remaining replicas on random machines in one different
  rack; other blocks land on random machines across the required number
  of racks.
* :class:`LoadAwarePolicy` — Aurora's block placement controller
  (Algorithm 4): first replica writer-local or on the least-loaded
  machine of the least-loaded rack; one replica per next least-loaded
  rack up to ``rho_i``; remaining replicas on the least-loaded machines
  within the chosen racks.

Policies see the namenode through the narrow :class:`PlacementContext`
protocol so they can be unit-tested against fakes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol, runtime_checkable

from repro.dfs.block import BlockMeta
from repro.errors import CapacityExceededError

__all__ = ["PlacementContext", "BlockPlacementPolicy", "DefaultHdfsPolicy",
           "LoadAwarePolicy"]


@runtime_checkable
class PlacementContext(Protocol):
    """What a placement policy may ask of the namenode."""

    @property
    def topology(self):  # -> ClusterTopology
        """The cluster topology."""
        ...  # pragma: no cover - protocol definition

    def can_store(self, node: int, block_id: int) -> bool:
        """Whether ``node`` is live and can accept a replica of the block."""
        ...  # pragma: no cover - protocol definition

    def node_load(self, node: int) -> float:
        """The load metric the load-aware policy minimizes."""
        ...  # pragma: no cover - protocol definition


@runtime_checkable
class BlockPlacementPolicy(Protocol):
    """Chooses replica targets for a new block."""

    def choose_targets(
        self,
        context: PlacementContext,
        meta: BlockMeta,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Target datanodes for all ``replication_factor`` replicas."""
        ...  # pragma: no cover - protocol definition


def _rack_load(context: PlacementContext, rack: int) -> float:
    """Total node load of a rack under the context's load metric."""
    return sum(
        context.node_load(node)
        for node in context.topology.machines_in_rack(rack)
    )


class DefaultHdfsPolicy:
    """Stock HDFS random placement (footnote 1 of the paper).

    For ``k`` replicas over ``rho`` racks: the first replica is
    writer-local when possible (else a random feasible machine); the
    remaining racks are drawn uniformly at random; replicas fill the
    chosen racks randomly, each rack receiving at least one.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)

    def choose_targets(
        self,
        context: PlacementContext,
        meta: BlockMeta,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Random targets honouring the rack-spread requirement."""
        topo = context.topology
        chosen: List[int] = []
        chosen_racks: List[int] = []

        def feasible_in_rack(rack: int) -> List[int]:
            return [
                node
                for node in topo.machines_in_rack(rack)
                if node not in chosen and context.can_store(node, meta.block_id)
            ]

        first: Optional[int] = None
        if writer is not None and context.can_store(writer, meta.block_id):
            first = writer
        if first is None:
            candidates = [
                node for node in topo.machines
                if context.can_store(node, meta.block_id)
            ]
            if not candidates:
                raise CapacityExceededError(
                    f"no datanode can host block {meta.block_id}"
                )
            first = self._rng.choice(candidates)
        chosen.append(first)
        chosen_racks.append(topo.rack_of[first])

        # Draw the remaining racks uniformly among those with space.
        while len(chosen_racks) < meta.rack_spread:
            options = [
                rack for rack in topo.racks
                if rack not in chosen_racks and feasible_in_rack(rack)
            ]
            if not options:
                raise CapacityExceededError(
                    f"cannot spread block {meta.block_id} over "
                    f"{meta.rack_spread} racks"
                )
            rack = self._rng.choice(options)
            chosen.append(self._rng.choice(feasible_in_rack(rack)))
            chosen_racks.append(rack)

        # Fill the rest randomly inside the chosen racks (HDFS keeps all
        # replicas within the selected racks), spilling over if full.
        while len(chosen) < meta.replication_factor:
            pool = [
                node
                for rack in chosen_racks
                for node in feasible_in_rack(rack)
            ]
            if not pool:
                pool = [
                    node for node in topo.machines
                    if node not in chosen
                    and context.can_store(node, meta.block_id)
                ]
            if not pool:
                raise CapacityExceededError(
                    f"cluster cannot host {meta.replication_factor} replicas "
                    f"of block {meta.block_id}"
                )
            pick = self._rng.choice(pool)
            chosen.append(pick)
            if topo.rack_of[pick] not in chosen_racks:
                chosen_racks.append(topo.rack_of[pick])
        return chosen


class LoadAwarePolicy:
    """Aurora's greedy initial placement (Algorithm 4).

    Identical structure to :func:`repro.core.initial_placement.place_block`
    but driven by the namenode's live load metric instead of a
    :class:`~repro.core.placement.PlacementState`.
    """

    def choose_targets(
        self,
        context: PlacementContext,
        meta: BlockMeta,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Greedy lowest-load targets honouring the rack spread."""
        topo = context.topology
        chosen: List[int] = []
        chosen_racks: List[int] = []

        def best_in_rack(rack: int) -> Optional[int]:
            candidates = [
                node
                for node in topo.machines_in_rack(rack)
                if node not in chosen and context.can_store(node, meta.block_id)
            ]
            if not candidates:
                return None
            return min(candidates, key=context.node_load)

        def racks_by_load(exclude: List[int]) -> List[int]:
            racks = [rack for rack in topo.racks if rack not in exclude]
            racks.sort(key=lambda rack: _rack_load(context, rack))
            return racks

        first: Optional[int] = None
        if writer is not None and context.can_store(writer, meta.block_id):
            first = writer
        if first is None:
            for rack in racks_by_load([]):
                first = best_in_rack(rack)
                if first is not None:
                    break
        if first is None:
            raise CapacityExceededError(
                f"no datanode can host block {meta.block_id}"
            )
        chosen.append(first)
        chosen_racks.append(topo.rack_of[first])

        while len(chosen_racks) < meta.rack_spread:
            placed = False
            for rack in racks_by_load(chosen_racks):
                node = best_in_rack(rack)
                if node is None:
                    continue
                chosen.append(node)
                chosen_racks.append(rack)
                placed = True
                break
            if not placed:
                raise CapacityExceededError(
                    f"cannot spread block {meta.block_id} over "
                    f"{meta.rack_spread} racks"
                )

        while len(chosen) < meta.replication_factor:
            candidates = [
                node for rack in chosen_racks
                for node in [best_in_rack(rack)] if node is not None
            ]
            if not candidates:
                for rack in racks_by_load(chosen_racks):
                    node = best_in_rack(rack)
                    if node is not None:
                        candidates.append(node)
                        chosen_racks.append(rack)
                        break
            if not candidates:
                raise CapacityExceededError(
                    f"cluster cannot host {meta.replication_factor} replicas "
                    f"of block {meta.block_id}"
                )
            chosen.append(min(candidates, key=context.node_load))
        return chosen
