"""Directory quotas: bounding namespace and storage consumption.

HDFS lets operators cap a directory's item count (namespace quota) and
its replicated storage footprint (space quota, which — importantly for
Aurora — counts *replicas*, so raising a block's replication factor
consumes quota).  :class:`QuotaManager` reproduces both, wrapping the
namenode's mutators the same way the edit log does:

* ``create_file`` is rejected when it would push any ancestor directory
  over its file-count or replicated-block quota;
* ``set_replication`` increases are rejected when the extra replicas
  would not fit the space quota — which means a quota on a tenant's
  directory also caps how much replication budget Aurora may spend on
  that tenant's hot data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dfs.namenode import Namenode
from repro.dfs.namespace import split_path
from repro.errors import FileNotFoundInDfsError, QuotaExceededError

__all__ = ["DirectoryQuota", "QuotaManager"]


@dataclass(frozen=True)
class DirectoryQuota:
    """Limits for one directory (None = unlimited)."""

    max_files: Optional[int] = None
    max_replicated_blocks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_files is not None and self.max_files < 0:
            raise QuotaExceededError("max_files must be non-negative")
        if (self.max_replicated_blocks is not None
                and self.max_replicated_blocks < 0):
            raise QuotaExceededError(
                "max_replicated_blocks must be non-negative"
            )


def _ancestors(path: str):
    """Yield '/', then every ancestor directory of ``path``."""
    parts = split_path(path)
    yield "/"
    for depth in range(1, len(parts)):
        yield "/" + "/".join(parts[:depth])


class QuotaManager:
    """Tracks and enforces directory quotas on one namenode."""

    def __init__(self, namenode: Namenode) -> None:
        self.namenode = namenode
        self._quotas: Dict[str, DirectoryQuota] = {}
        self.rejections = 0
        self._install()

    # -- quota administration ------------------------------------------------

    def set_quota(
        self,
        path: str,
        max_files: Optional[int] = None,
        max_replicated_blocks: Optional[int] = None,
    ) -> None:
        """Set (or replace) the quota of a directory.

        The directory must exist; the quota may be set below current
        usage (as in HDFS), in which case only *new* consumption is
        blocked.
        """
        if not self.namenode.namespace.is_directory(path):
            raise FileNotFoundInDfsError(f"no such directory: {path}")
        self._quotas["/" + "/".join(split_path(path))] = DirectoryQuota(
            max_files=max_files,
            max_replicated_blocks=max_replicated_blocks,
        )

    def clear_quota(self, path: str) -> None:
        """Remove a directory's quota."""
        self._quotas.pop("/" + "/".join(split_path(path)), None)

    def quota_of(self, path: str) -> Optional[DirectoryQuota]:
        """The quota set on ``path``, if any."""
        return self._quotas.get("/" + "/".join(split_path(path)))

    # -- usage accounting ------------------------------------------------------

    def usage(self, path: str) -> Tuple[int, int]:
        """(files, replicated blocks) currently under ``path``.

        Replicated blocks count each block times its *target* factor,
        matching HDFS's space quota semantics (lazily deletable excess
        replicas do not count — they are reclaimable).
        """
        files = 0
        replicated = 0
        for _file_path, file_id in self.namenode.namespace.walk_files(path):
            files += 1
            meta = self.namenode.file_by_id(file_id)
            for block_id in meta.block_ids:
                block = self.namenode.blockmap.meta(block_id)
                replicated += block.replication_factor
        return files, replicated

    # -- enforcement -------------------------------------------------------------

    def _governing_quotas(self, path: str):
        for directory in _ancestors(path):
            quota = self._quotas.get(directory)
            if quota is not None:
                yield directory, quota

    def _check_create(self, path: str, num_blocks: int, replication: int) -> None:
        for directory, quota in self._governing_quotas(path):
            files, replicated = self.usage(directory)
            if quota.max_files is not None and files + 1 > quota.max_files:
                self.rejections += 1
                raise QuotaExceededError(
                    f"{directory}: file-count quota {quota.max_files} "
                    "exceeded"
                )
            if quota.max_replicated_blocks is not None:
                wanted = replicated + num_blocks * replication
                if wanted > quota.max_replicated_blocks:
                    self.rejections += 1
                    raise QuotaExceededError(
                        f"{directory}: space quota "
                        f"{quota.max_replicated_blocks} replicated blocks "
                        "exceeded"
                    )

    def _check_set_replication(self, block_id: int, factor: int) -> None:
        block = self.namenode.blockmap.meta(block_id)
        delta = factor - block.replication_factor
        if delta <= 0:
            return
        path = self.namenode.file_by_id(block.file_id).path
        for directory, quota in self._governing_quotas(path):
            if quota.max_replicated_blocks is None:
                continue
            _files, replicated = self.usage(directory)
            if replicated + delta > quota.max_replicated_blocks:
                self.rejections += 1
                raise QuotaExceededError(
                    f"{directory}: space quota "
                    f"{quota.max_replicated_blocks} replicated blocks "
                    "exceeded"
                )

    def _install(self) -> None:
        original_create = self.namenode.create_file
        original_set_replication = self.namenode.set_replication
        namenode = self.namenode

        def create_file(path, num_blocks, **kwargs):
            replication = kwargs.get("replication") \
                or namenode.default_replication
            self._check_create(path, num_blocks, replication)
            return original_create(path, num_blocks, **kwargs)

        def set_replication(block_id, factor):
            self._check_set_replication(block_id, factor)
            original_set_replication(block_id, factor)

        namenode.create_file = create_file  # type: ignore[method-assign]
        namenode.set_replication = set_replication  # type: ignore[method-assign]
