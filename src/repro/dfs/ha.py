"""High-availability metadata plane: replicated namenodes with failover.

A single namenode caps every availability claim: one crash means a full
stop-the-world :func:`~repro.dfs.editlog.recover_namenode` replay.  This
module runs 2-3 namenode **replicas** over one physical cluster and
keeps the metadata plane writable across leader death:

* **Leader election** — a deterministic, sim-clock lease protocol with
  Raft-style term numbers.  The leader renews every follower's lease
  each ``heartbeat_interval``; a follower whose lease is older than its
  seed-randomized election timeout starts an election for ``term + 1``
  and wins with a majority of votes.  A voter grants its vote only to a
  candidate whose journal is at least as complete as its own, so the
  winner always holds every acknowledged mutation.
* **Fencing** — each leader's namenode gets a
  :attr:`~repro.dfs.namenode.Namenode.fence_check` bound to its replica
  and term; once deposed, every write through the stale handle raises
  :class:`~repro.errors.FencedError` (a
  :class:`~repro.errors.SafeModeError`, so existing retry paths treat it
  as "metadata plane temporarily unwritable").
* **Journal shipping + checkpoints** — every mutation is appended
  synchronously to a write quorum of replica
  :class:`~repro.dfs.store.MetadataStore` backends (HDFS-QJM style, so
  an acknowledged write survives any single failure); replicas outside
  the quorum tail the journal each ``ship_interval``.  The leader
  periodically snapshots its namespace
  (:func:`~repro.dfs.editlog.build_checkpoint`) into every store and
  truncates the shipped prefix, so follower replay time and journal
  size are bounded by ``checkpoint_every`` — not by history length.
* **Failover** — on leader death a follower wins the next election,
  restores its store's checkpoint into a fresh namenode, replays only
  the journal tail past it, adopts the *physical* datanodes, and sits
  in safe mode until block reports restore enough locations; the
  :class:`~repro.dfs.safemode.SafeModeMonitor` exit marks the plane
  writable again.  ``on_failover`` callbacks let the heartbeat service,
  clients and an Aurora optimizer re-point at the new leader
  (:func:`rebind_aurora`).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dfs.editlog import (
    EditLog,
    attach_edit_log,
    build_checkpoint,
    replay_entries,
    restore_checkpoint,
)
from repro.dfs.namenode import Namenode
from repro.dfs.quota import QuotaManager
from repro.dfs.safemode import SafeModeMonitor
from repro.dfs.store import InMemoryMetadataStore, MetadataStore
from repro.errors import DfsError, FencedError, NoLeaderError
from repro.obs.registry import get_registry
from repro.simulation.engine import EventToken, Simulation

__all__ = ["HaConfig", "NamenodeReplica", "HaCluster", "rebind_aurora"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_ELECTIONS = _REG.counter(
    "repro_ha_elections_total",
    "Leader elections started, by outcome",
    ["outcome"],
)
_FAILOVERS = _REG.counter(
    "repro_ha_failovers_total",
    "Completed leader failovers (a new leader finished promotion)",
)
_TERM = _REG.gauge(
    "repro_ha_term",
    "Current leadership term of the metadata plane",
)
_FENCED_WRITES = _REG.counter(
    "repro_ha_fenced_writes_total",
    "Writes rejected because they reached a deposed leader",
)
_TIME_TO_LEADER = _REG.histogram(
    "repro_ha_time_to_leader_seconds",
    "Simulated seconds from leader death to a new leader elected",
)
_TIME_TO_WRITABLE = _REG.histogram(
    "repro_ha_time_to_writable_seconds",
    "Simulated seconds from leader death to the plane accepting writes",
)
_ENTRIES_SHIPPED = _REG.counter(
    "repro_ha_journal_entries_shipped_total",
    "Edit-log entries copied to replica stores (quorum writes + tailing)",
)
_CHECKPOINTS = _REG.counter(
    "repro_ha_checkpoints_total",
    "Namespace checkpoints taken and shipped to replica stores",
)
_JOURNAL_ENTRIES = _REG.gauge(
    "repro_ha_journal_retained_entries",
    "Journal entries retained on the leader after the last truncation",
)


@dataclass(frozen=True)
class HaConfig:
    """Tunables for the replicated metadata plane."""

    num_replicas: int = 3
    #: Leader lease renewal period (sim seconds).
    heartbeat_interval: float = 2.0
    #: Base follower election timeout; a follower whose lease is older
    #: than ``lease_timeout + jitter`` starts an election.
    lease_timeout: float = 10.0
    #: Upper bound of the per-replica seeded random timeout addition —
    #: staggers elections so a single follower usually wins cleanly.
    election_jitter: float = 5.0
    #: How often followers poll their lease / tail the journal.
    ship_interval: float = 2.0
    #: Journal entries between checkpoints (and truncations).
    checkpoint_every: int = 50
    #: Safe-mode exit: fraction of blocks that must have reported.
    safemode_threshold: float = 0.999
    #: Safe-mode extension after the threshold first holds.
    safemode_extension: float = 0.0
    #: Safe-mode poll interval on the new leader.
    safemode_poll: float = 1.0
    #: Spacing between datanode block reports during promotion (models
    #: report processing; keeps safemode exit off a single instant).
    report_stagger: float = 0.5
    #: Seed for the per-replica election timeouts.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 2 <= self.num_replicas <= 7:
            raise DfsError("num_replicas must be in [2, 7]")
        if self.heartbeat_interval <= 0 or self.ship_interval <= 0:
            raise DfsError("intervals must be positive")
        if self.lease_timeout <= self.heartbeat_interval:
            raise DfsError("lease_timeout must exceed heartbeat_interval")
        if self.checkpoint_every < 1:
            raise DfsError("checkpoint_every must be >= 1")

    @property
    def quorum(self) -> int:
        """Write/election quorum size (majority of all replicas)."""
        return self.num_replicas // 2 + 1


@dataclass
class NamenodeReplica:
    """One member of the replicated metadata plane."""

    replica_id: int
    store: MetadataStore
    election_timeout: float
    alive: bool = True
    term: int = 0
    voted_in_term: Dict[int, int] = field(default_factory=dict)
    last_leader_beat: float = 0.0

    @property
    def last_seq(self) -> int:
        """Highest journal seq this replica's store has durably seen."""
        return self.store.last_seq()


class HaCluster:
    """Replicated namenode control plane over one physical cluster.

    ``namenode_factory`` must build a fresh :class:`Namenode` over the
    shared topology; the first one built owns the *physical* datanodes,
    which every later leader adopts (disks and heartbeat clocks survive
    metadata failovers).  ``store_factory(replica_id)`` supplies each
    replica's durable backend (defaults to in-memory).
    """

    def __init__(
        self,
        sim: Simulation,
        config: HaConfig,
        namenode_factory: Callable[[], Namenode],
        store_factory: Optional[Callable[[int], MetadataStore]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self._factory = namenode_factory
        rng = random.Random(config.seed * 6271 + 17)
        make_store = store_factory or (lambda _rid: InMemoryMetadataStore())
        self.replicas: List[NamenodeReplica] = [
            NamenodeReplica(
                replica_id=rid,
                store=make_store(rid),
                election_timeout=(
                    config.lease_timeout
                    + rng.uniform(0.0, config.election_jitter)
                ),
            )
            for rid in range(config.num_replicas)
        ]
        self._leader: Optional[NamenodeReplica] = None
        self._term = 0
        self._namenode: Optional[Namenode] = None
        self._log: Optional[EditLog] = None
        self._quota: Optional[QuotaManager] = None
        self._physical = None  # adopted Datanode list, set on bootstrap
        self._last_checkpoint_seq = 0
        self._safemode: Optional[SafeModeMonitor] = None
        self._beat_token: Optional[EventToken] = None
        self._tick_token: Optional[EventToken] = None
        #: Optional heartbeat service to re-point on failover (rebound
        #: before block reports, so liveness beliefs carry over).
        self.heartbeats = None
        #: Called with the new leader's namenode after each failover.
        self.on_failover: List[Callable[[Namenode], None]] = []
        #: Timeline of leadership events, for demos and debugging.
        self.events: List[Dict] = []
        # Stats (mirrored into repro.obs metrics when enabled).
        self.elections = 0
        self.failovers = 0
        self.fenced_writes = 0
        self.entries_shipped = 0
        self.checkpoints_taken = 0
        self.time_to_leader: List[float] = []
        self.time_to_writable: List[float] = []
        self.entries_replayed_last_failover = 0
        self._leader_down_at: Optional[float] = None

    # -- leadership state -----------------------------------------------------

    @property
    def current_term(self) -> int:
        """The highest term this cluster has elected a leader in."""
        return self._term

    @property
    def leader_id(self) -> Optional[int]:
        """Replica id of the current leader (None during an outage)."""
        return self._leader.replica_id if self._leader else None

    @property
    def active(self) -> Namenode:
        """The current leader's namenode — the clients' write endpoint."""
        if self._leader is None or self._namenode is None:
            raise NoLeaderError("no namenode replica holds a lease")
        return self._namenode

    @property
    def quota(self) -> QuotaManager:
        """The current leader's quota manager."""
        if self._quota is None:
            raise NoLeaderError("no namenode replica holds a lease")
        return self._quota

    @property
    def log(self) -> EditLog:
        """The current leader's edit log."""
        if self._log is None:
            raise NoLeaderError("no namenode replica holds a lease")
        return self._log

    @property
    def in_safemode(self) -> bool:
        """Whether the current leader is still in safe mode."""
        return self._namenode is not None and self._namenode.safe_mode

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> Namenode:
        """Bootstrap replica 0 as the term-1 leader and begin the loops."""
        if self._beat_token is not None:
            raise DfsError("HA cluster already started")
        self._promote(self.replicas[0], term=1, bootstrap=True)
        self._beat_token = self.sim.schedule_periodic(
            self.config.heartbeat_interval, self._leader_beat
        )
        self._tick_token = self.sim.schedule_periodic(
            self.config.ship_interval, self._tick
        )
        return self.active

    def stop(self) -> None:
        """Cancel all scheduled HA activity."""
        for token in (self._beat_token, self._tick_token):
            if token is not None:
                token.cancel()
        self._beat_token = None
        self._tick_token = None

    def kill_leader(self) -> int:
        """Crash the current leader replica; returns its id."""
        if self._leader is None:
            raise NoLeaderError("no leader to kill")
        victim = self._leader
        victim.alive = False
        self._leader = None
        self._leader_down_at = self.sim.now
        self._record("leader-killed", replica=victim.replica_id,
                     term=self._term)
        _LOG.warning(
            "HA: leader replica %d killed at t=%.1f (term %d)",
            victim.replica_id, self.sim.now, self._term,
        )
        return victim.replica_id

    def kill_replica(self, replica_id: int) -> None:
        """Crash a specific replica (leader or follower)."""
        replica = self.replicas[replica_id]
        if self._leader is replica:
            self.kill_leader()
            return
        replica.alive = False
        self._record("follower-killed", replica=replica_id, term=self._term)

    def revive_replica(self, replica_id: int) -> None:
        """Restart a crashed replica as a follower.

        Its store kept whatever it had durably seen; the tailing loop
        catches it up (checkpoint first if its journal gap was
        truncated).
        """
        replica = self.replicas[replica_id]
        if replica.alive:
            return
        replica.alive = True
        replica.term = self._term
        replica.last_leader_beat = self.sim.now
        self._record("replica-revived", replica=replica_id, term=self._term)

    # -- periodic machinery ---------------------------------------------------

    def _leader_beat(self) -> None:
        if self._leader is None or not self._leader.alive:
            return
        for replica in self.replicas:
            if replica.alive:
                replica.last_leader_beat = self.sim.now

    def _tick(self) -> None:
        self._maybe_elect()
        if self._leader is not None:
            self._ship()
            self._maybe_checkpoint()

    def _maybe_elect(self) -> None:
        """Let the follower with the earliest expired lease run."""
        now = self.sim.now
        expired = [
            replica for replica in self.replicas
            if replica.alive
            and replica is not self._leader
            and now - replica.last_leader_beat > replica.election_timeout
        ]
        if self._leader is not None and self._leader.alive:
            return  # leases only expire when the leader stops beating
        if not expired:
            return
        expired.sort(key=lambda replica: (
            replica.last_leader_beat + replica.election_timeout,
            replica.replica_id,
        ))
        candidate = expired[0]
        self._run_election(candidate)

    def _run_election(self, candidate: NamenodeReplica) -> None:
        self.elections += 1
        term = max(self._term, candidate.term) + 1
        candidate.term = term
        candidate.voted_in_term[term] = candidate.replica_id
        votes = 1
        for voter in self.replicas:
            if voter is candidate or not voter.alive:
                continue
            if voter.term > term:
                continue
            # Adopt the newer term even when the vote is denied, so the
            # next candidacy starts above it instead of colliding with
            # a term this voter already voted in.
            voter.term = term
            if term in voter.voted_in_term:
                continue
            if candidate.last_seq < voter.last_seq:
                continue  # candidate's journal is incomplete
            voter.voted_in_term[term] = candidate.replica_id
            voter.last_leader_beat = self.sim.now  # granted = lease renewed
            votes += 1
        won = votes >= self.config.quorum
        if _REG.enabled:
            _ELECTIONS.labels(outcome="won" if won else "lost").inc()
        self._record(
            "election", replica=candidate.replica_id, term=term,
            votes=votes, won=won,
        )
        _LOG.info(
            "HA: replica %d ran election for term %d at t=%.1f: "
            "%d/%d votes (%s)",
            candidate.replica_id, term, self.sim.now, votes,
            self.config.num_replicas, "won" if won else "lost",
        )
        if won:
            self._promote(candidate, term)
        else:
            # A losing candidate (journal incomplete, or quorum dead)
            # renews its own lease: it stops winning the
            # earliest-expired tiebreak, so a voter that denied it gets
            # to stand next tick instead of starving behind the loser.
            candidate.last_leader_beat = self.sim.now

    def _ship(self) -> None:
        """Tail the leader's store into every lagging alive replica."""
        leader_store = self._leader.store
        checkpoint = leader_store.load_checkpoint()
        for replica in self.replicas:
            if not replica.alive or replica is self._leader:
                continue
            behind = replica.last_seq
            if behind >= leader_store.last_seq():
                continue
            if checkpoint is not None and checkpoint["seq"] > behind:
                # The gap predates the journal's retained prefix (or is
                # simply huge): snapshot first, then the tail.
                replica.store.save_checkpoint(checkpoint)
                replica.store.truncate_through(checkpoint["seq"])
                behind = replica.last_seq
            shipped = leader_store.entries_after(behind)
            replica.store.append_entries(shipped)
            self.entries_shipped += len(shipped)
            if _REG.enabled and shipped:
                _ENTRIES_SHIPPED.inc(len(shipped))

    def _maybe_checkpoint(self) -> None:
        log = self._log
        if log is None or len(log) < self.config.checkpoint_every:
            return
        seq = log.last_seq
        checkpoint = build_checkpoint(
            self._namenode, quota=self._quota, seq=seq, term=self._term
        )
        for replica in self.replicas:
            if not replica.alive:
                continue
            if replica.last_seq < seq and replica is not self._leader:
                continue  # still behind; it will take the snapshot in _ship
            replica.store.save_checkpoint(checkpoint)
            replica.store.truncate_through(seq)
        log.truncate_through(seq)
        self._last_checkpoint_seq = seq
        self.checkpoints_taken += 1
        if _REG.enabled:
            _CHECKPOINTS.inc()
            _JOURNAL_ENTRIES.set(len(log))
        self._record("checkpoint", replica=self._leader.replica_id,
                     term=self._term, seq=seq)

    # -- promotion ------------------------------------------------------------

    def _sink_for(self, leader: NamenodeReplica) -> Callable[[Dict], None]:
        """Synchronous quorum append: the durability point of a write."""
        def sink(entry: Dict) -> None:
            # Leader's own store first, then followers in id order until
            # the quorum is durable; the rest tail via _ship.
            targets = [leader] + [
                replica for replica in self.replicas
                if replica is not leader and replica.alive
            ]
            for replica in targets[: self.config.quorum]:
                if entry["seq"] > replica.last_seq:
                    replica.store.append_entry(entry)
                    if replica is not leader:
                        self.entries_shipped += 1
                        if _REG.enabled:
                            _ENTRIES_SHIPPED.inc()
        return sink

    def _fence_for(
        self, replica: NamenodeReplica, term: int
    ) -> Callable[[], None]:
        def fence() -> None:
            if (self._leader is replica and replica.alive
                    and self._term == term):
                return
            self.fenced_writes += 1
            if _REG.enabled:
                _FENCED_WRITES.inc()
            raise FencedError(
                f"replica {replica.replica_id} was deposed "
                f"(term {term} < {self._term})"
            )
        return fence

    def _promote(
        self,
        replica: NamenodeReplica,
        term: int,
        bootstrap: bool = False,
    ) -> None:
        elected_at = self.sim.now
        self._term = term
        replica.term = term
        self._leader = replica
        replica.last_leader_beat = elected_at
        if _REG.enabled:
            _TERM.set(term)

        fresh = self._factory()
        if self._physical is None:
            # Bootstrap: the first namenode's datanodes ARE the cluster.
            self._physical = fresh.datanodes
        else:
            # Adopt the physical datanodes: disks, liveness and
            # heartbeat clocks survive the metadata failover.
            fresh.datanodes = self._physical
            for dn in self._physical:
                dn.on_liveness_change = fresh._bump_membership_epoch
            fresh._membership_epoch += 1  # invalidate the live-node cache

        quota = QuotaManager(fresh)
        checkpoint = replica.store.load_checkpoint()
        ckpt_seq = 0
        if checkpoint is not None:
            restore_checkpoint(fresh, checkpoint, quota=quota)
            ckpt_seq = checkpoint["seq"]
        tail = replica.store.entries_after(ckpt_seq)
        self.entries_replayed_last_failover = replay_entries(
            fresh, tail, quota=quota
        )

        log = EditLog()
        log.resume_from(replica.store.last_seq())
        log.sink = self._sink_for(replica)
        attach_edit_log(fresh, log, quota=quota)
        fresh.fence_check = self._fence_for(replica, term)

        self._namenode = fresh
        self._log = log
        self._quota = quota
        self._last_checkpoint_seq = ckpt_seq
        self._record(
            "leader-elected", replica=replica.replica_id, term=term,
            replayed=self.entries_replayed_last_failover,
            checkpoint_seq=ckpt_seq,
        )
        _LOG.info(
            "HA: replica %d promoted at t=%.1f (term %d, checkpoint seq "
            "%d, replayed %d tail entries)",
            replica.replica_id, elected_at, term, ckpt_seq,
            self.entries_replayed_last_failover,
        )

        if not bootstrap:
            self.failovers += 1
            if _REG.enabled:
                _FAILOVERS.inc()
            if self._leader_down_at is not None:
                self.time_to_leader.append(elected_at - self._leader_down_at)
                if _REG.enabled:
                    _TIME_TO_LEADER.observe(
                        elected_at - self._leader_down_at
                    )
            if self.heartbeats is not None:
                self.heartbeats.rebind(fresh)
            self._enter_startup_safemode(fresh)
            for callback in self.on_failover:
                callback(fresh)

    def _enter_startup_safemode(self, fresh: Namenode) -> None:
        monitor = SafeModeMonitor(
            fresh,
            threshold=self.config.safemode_threshold,
            extension=self.config.safemode_extension,
        )
        down_at = self._leader_down_at

        def on_exit(now: float) -> None:
            if down_at is not None:
                self.time_to_writable.append(now - down_at)
                if _REG.enabled:
                    _TIME_TO_WRITABLE.observe(now - down_at)
            self._record("writable", replica=self.leader_id,
                         term=self._term)

        monitor.on_exit = on_exit
        monitor.run_on(self.sim, self.config.safemode_poll)
        self._safemode = monitor
        # Stagger the block reports that let safe mode lift: locations
        # are soft state, so the new leader asks every live disk.
        delay = self.config.report_stagger
        for index, dn in enumerate(self._physical):
            if not dn.alive:
                continue

            def report(node_id: int = dn.node_id) -> None:
                if self._namenode is fresh:
                    fresh.register_block_report(node_id)

            self.sim.schedule(delay * (index + 1), report)

    def _record(self, event: str, **fields) -> None:
        entry = {"t": round(self.sim.now, 3), "event": event}
        entry.update(fields)
        self.events.append(entry)


def rebind_aurora(system, namenode: Namenode) -> None:
    """Re-point an Aurora optimizer at a freshly promoted namenode.

    Registered as an ``on_failover`` callback.  Re-installs the usage
    monitor's access listener, the load-aware placement policy and the
    load provider on the new leader, and drops the placement snapshot
    cache (block locations were rebuilt from reports, so cached
    placements are stale).  The usage monitor itself carries over —
    popularity history is workload state, not metadata.
    """
    from repro.aurora.bridge import PlacementSnapshotCache
    from repro.dfs.policies import LoadAwarePolicy

    system.namenode = namenode
    namenode.access_listeners.append(system.monitor.record_access)
    namenode.placement_policy = LoadAwarePolicy()
    namenode.load_provider = system.node_load
    if system.config.movement_compression > 1.0:
        namenode.movement_compression = system.config.movement_compression
    system._snapshot_cache = PlacementSnapshotCache()
    if system.replicate_on_read is not None:
        system.replicate_on_read.namenode = namenode
