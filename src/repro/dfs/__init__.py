"""HDFS-like distributed file system simulator.

Namenode + datanodes + block map + replication pipeline + heartbeats +
the stock disk-usage balancer, with pluggable block placement policies.
This is the substrate Aurora (:mod:`repro.aurora`) plugs into.
"""

from repro.dfs.balancer import Balancer, BalancerReport
from repro.dfs.block import DEFAULT_MAX_BLOCK_SIZE, BlockMeta, FileMeta
from repro.dfs.blockmap import BlockMap, ShardedBlockMap
from repro.dfs.client import DfsClient, Locality, ReadResult
from repro.dfs.datanode import Datanode
from repro.dfs.editlog import (
    EditLog,
    attach_edit_log,
    build_checkpoint,
    recover_namenode,
    replay_entries,
    restore_checkpoint,
)
from repro.dfs.ha import HaCluster, HaConfig, NamenodeReplica, rebind_aurora
from repro.dfs.heartbeat import HeartbeatService
from repro.dfs.integrity import (
    BlockScrubber,
    CorruptionLedger,
    ReplicaIntegrity,
    ScrubConfig,
    replica_checksum,
)
from repro.dfs.namenode import Namenode
from repro.dfs.namespace import NamespaceTree
from repro.dfs.quota import DirectoryQuota, QuotaManager
from repro.dfs.safemode import SafeModeMonitor, enter_safe_mode, reported_fraction
from repro.dfs.policies import (
    BlockPlacementPolicy,
    DefaultHdfsPolicy,
    LoadAwarePolicy,
    PlacementContext,
)
from repro.dfs.replication import GIGABIT_PER_SECOND, TransferService
from repro.dfs.store import (
    InMemoryMetadataStore,
    JsonFileMetadataStore,
    MetadataStore,
)

__all__ = [
    "Balancer",
    "BalancerReport",
    "DEFAULT_MAX_BLOCK_SIZE",
    "BlockMeta",
    "FileMeta",
    "BlockMap",
    "ShardedBlockMap",
    "DfsClient",
    "Locality",
    "ReadResult",
    "Datanode",
    "EditLog",
    "attach_edit_log",
    "build_checkpoint",
    "recover_namenode",
    "replay_entries",
    "restore_checkpoint",
    "HaCluster",
    "HaConfig",
    "NamenodeReplica",
    "rebind_aurora",
    "MetadataStore",
    "InMemoryMetadataStore",
    "JsonFileMetadataStore",
    "HeartbeatService",
    "BlockScrubber",
    "CorruptionLedger",
    "ReplicaIntegrity",
    "ScrubConfig",
    "replica_checksum",
    "Namenode",
    "NamespaceTree",
    "DirectoryQuota",
    "QuotaManager",
    "SafeModeMonitor",
    "enter_safe_mode",
    "reported_fraction",
    "BlockPlacementPolicy",
    "DefaultHdfsPolicy",
    "LoadAwarePolicy",
    "PlacementContext",
    "GIGABIT_PER_SECOND",
    "TransferService",
]
