"""The stock HDFS balancer: equalizes *disk usage*, not load.

"While HDFS does provide a balancer tool, its purpose is to balance disk
usage rather than machine load."  This is the baseline Aurora's
load-aware balancing is contrasted with: it iteratively moves blocks from
over-utilized to under-utilized datanodes until every node's disk
utilization is within ``threshold`` of the cluster mean, ignoring block
popularity entirely.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dfs.namenode import Namenode
from repro.errors import DfsError
from repro.obs.registry import get_registry

__all__ = ["Balancer", "BalancerReport"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_BALANCER_RUNS = _REG.counter(
    "repro_dfs_balancer_runs_total",
    "Balancer invocations, by termination state",
    ["converged"],
)
_BALANCER_MOVES = _REG.counter(
    "repro_dfs_balancer_moves_total",
    "Balancer block-move attempts, by outcome",
    ["outcome"],
)


@dataclass
class BalancerReport:
    """Outcome of one balancer run."""

    moves_attempted: int = 0
    moves_started: int = 0
    iterations: int = 0
    converged: bool = False

    def describe(self) -> str:
        """One-line summary for logs."""
        status = "converged" if self.converged else "stopped"
        return (
            f"balancer {status} after {self.iterations} iterations, "
            f"{self.moves_started}/{self.moves_attempted} moves started"
        )


class Balancer:
    """Iterative disk-usage balancer over a namenode."""

    def __init__(
        self,
        namenode: Namenode,
        threshold: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0 < threshold < 1:
            raise DfsError("threshold must be in (0, 1)")
        self.namenode = namenode
        self.threshold = threshold
        self._rng = rng or random.Random(0)

    def utilization(self, node: int) -> float:
        """Disk utilization of ``node``."""
        return self.namenode.datanodes[node].disk_utilization

    def mean_utilization(self) -> float:
        """Average utilization over live datanodes."""
        live = sorted(self.namenode.live_nodes())
        if not live:
            return 0.0
        return sum(self.utilization(n) for n in live) / len(live)

    def over_utilized(self) -> List[int]:
        """Live nodes above ``mean + threshold``."""
        mean = self.mean_utilization()
        return [
            n for n in sorted(self.namenode.live_nodes())
            if self.utilization(n) > mean + self.threshold
        ]

    def under_utilized(self) -> List[int]:
        """Live nodes below ``mean - threshold``."""
        mean = self.mean_utilization()
        return [
            n for n in sorted(self.namenode.live_nodes())
            if self.utilization(n) < mean - self.threshold
        ]

    def run(self, max_moves: int = 1000) -> BalancerReport:
        """Move blocks until utilizations converge or the cap is hit.

        Moves are make-before-break via :meth:`Namenode.move_block`, so
        replication and rack-spread guarantees hold throughout.
        """
        report = BalancerReport()
        while report.moves_started < max_moves:
            report.iterations += 1
            over = self.over_utilized()
            under = self.under_utilized()
            if not over and not under:
                report.converged = True
                break
            mean = self.mean_utilization()
            live = sorted(self.namenode.live_nodes())
            # Like the real balancer, pair over-utilized nodes with any
            # below-average node (and under-utilized ones with any
            # above-average node) once the strict categories run dry.
            sources = over or [n for n in live if self.utilization(n) > mean]
            receivers = under or [n for n in live if self.utilization(n) < mean]
            if not sources or not receivers:
                break
            source = max(sources, key=self.utilization)
            progressed = False
            candidates = list(self.namenode.blockmap.blocks_on(source))
            self._rng.shuffle(candidates)
            targets = sorted(receivers, key=self.utilization)
            for block_id in candidates:
                for target in targets:
                    report.moves_attempted += 1
                    if self.namenode.move_block(block_id, source, target):
                        report.moves_started += 1
                        progressed = True
                        break
                if progressed:
                    break
            if not progressed:
                # Nothing movable off the worst node: give up to avoid
                # spinning (e.g. every block pinned by rack spread).
                break
        if _REG.enabled:
            _BALANCER_RUNS.labels(
                converged="true" if report.converged else "false"
            ).inc()
            if report.moves_started:
                _BALANCER_MOVES.labels(outcome="started").inc(
                    report.moves_started
                )
            rejected = report.moves_attempted - report.moves_started
            if rejected:
                _BALANCER_MOVES.labels(outcome="rejected").inc(rejected)
        _LOG.debug("%s", report.describe())
        return report
