"""DFS client: the application-facing read/write interface.

"Each application creates a HDFS client to access the file system."  The
client wraps the namenode protocol: writes ask the namenode for targets
and stream the blocks; reads walk the namenode's replica preference
order and classify the resulting access by network distance (node-local
/ rack-local / remote), which is exactly the signal the locality
experiments measure.

Reads are fault tolerant: the namenode's metadata can be *stale* (a
replica holder can crash between heartbeats), so the client tries the
preferred replica, discovers a dead or stale source by failing, backs
off under a :class:`~repro.faults.retry.RetryPolicy`, and fails over to
the next replica in preference order.  The full attempt trail is
recorded on the :class:`ReadResult`.

Reads are also *overload* tolerant when the cluster runs with the
:mod:`repro.overload` wiring installed:

* a replica whose bounded service queue sheds the request fails over
  immediately (fail fast — no backoff, the queue said "no" right away);
* per-node circuit breakers skip replicas that have been failing or
  shedding, before spending an attempt on them;
* hedged reads fire a second request at the next-best replica when the
  chosen one's projected latency exceeds a budget, and the faster
  response wins.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dfs.block import DEFAULT_MAX_BLOCK_SIZE, FileMeta
from repro.dfs.datanode import Datanode
from repro.dfs.namenode import Namenode
from repro.errors import (
    ChecksumError,
    DatanodeUnavailableError,
    OverloadSheddedError,
)
from repro.faults.retry import RetryPolicy
from repro.obs.registry import get_registry
from repro.obs.tracer import get_tracer
from repro.obs.tracing import TraceSampler
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.overload.queueing import Priority

__all__ = ["Locality", "ReadResult", "DfsClient"]

_REG = get_registry()
_TRACER = get_tracer()
_FAILOVERS = _REG.counter(
    "repro_dfs_read_failovers_total",
    "Read attempts that failed over past a dead or stale replica source",
)
_READ_ERRORS = _REG.counter(
    "repro_dfs_read_errors_total",
    "Block reads that exhausted every replica candidate",
)
_SHED_READS = _REG.counter(
    "repro_dfs_reads_shed_total",
    "Read attempts shed by a bounded datanode service queue",
)
_BREAKER_SKIPS = _REG.counter(
    "repro_dfs_breaker_skips_total",
    "Replica candidates skipped because their circuit breaker was open",
)
_HEDGED = _REG.counter(
    "repro_dfs_hedged_reads_total",
    "Reads that fired a hedge request at a second replica",
)
_HEDGE_WINS = _REG.counter(
    "repro_dfs_hedge_wins_total",
    "Hedged reads where the second replica answered first",
)
_CHECKSUM_FAILURES = _REG.counter(
    "repro_dfs_integrity_client_checksum_failures_total",
    "Read attempts that detected a corrupt replica and failed over",
)
# End-to-end simulated read latency: queue wait+service of the serving
# replica plus every backoff paid failing over to it.
_READ_LATENCY = _REG.histogram(
    "repro_dfs_read_latency_seconds",
    "Simulated end-to-end block read latency (service + failover backoff)",
    buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0,
             10.0, 30.0, 60.0, 120.0),
)


class Locality(enum.Enum):
    """Network distance of a block read."""

    NODE_LOCAL = "node-local"
    RACK_LOCAL = "rack-local"
    REMOTE = "remote"


@dataclass(frozen=True)
class ReadResult:
    """Outcome of reading one block.

    ``attempts`` is the trail of nodes the client contacted in order —
    the last entry is the node that served the read, every earlier one a
    replica that turned out dead, stale, or shedding.  ``backoff`` is
    the total simulated wait the retry policy imposed between attempts.
    ``latency`` is the serving queue's wait-plus-service time (0 when
    the node has no bounded queue installed), and ``hedged`` marks reads
    that fired a second request at another replica.
    """

    block_id: int
    source: int
    locality: Locality
    attempts: Tuple[int, ...] = field(default=())
    backoff: float = 0.0
    latency: float = 0.0
    hedged: bool = False

    @property
    def is_local(self) -> bool:
        """Whether the read avoided the network entirely."""
        return self.locality is Locality.NODE_LOCAL

    @property
    def failed_over(self) -> bool:
        """Whether the first-choice replica did not serve the read."""
        return len(self.attempts) > 1


class DfsClient:
    """Thin client over a :class:`~repro.dfs.namenode.Namenode`."""

    def __init__(
        self,
        namenode: Namenode,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        breakers: Optional[Dict[int, CircuitBreaker]] = None,
        hedge_latency_budget: Optional[float] = None,
        trace_sampler: Optional[TraceSampler] = None,
    ) -> None:
        self.namenode = namenode
        # Head-based causal tracing: when set (and the tracer is on), a
        # sampled fraction of reads record a "dfs.read" span tree.
        self.trace_sampler = trace_sampler
        # Bounds the failover walk; with no rng the backoff is
        # jitter-free, so failover behaviour is fully deterministic.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=4, base_delay=0.5, max_delay=5.0, jitter=0.1
        )
        self._rng = rng
        # Per-node circuit breakers (see OverloadProtection.breakers())
        # and the hedged-read latency budget; both default to off.
        self.breakers = breakers
        self.hedge_latency_budget = hedge_latency_budget
        self.read_failovers = 0
        self.read_errors = 0
        self.reads_shed = 0
        self.breaker_skips = 0
        self.hedged_reads = 0
        self.hedge_wins = 0
        self.checksum_failures = 0

    def write_file(
        self,
        path: str,
        num_blocks: int,
        block_size: int = DEFAULT_MAX_BLOCK_SIZE,
        writer: Optional[int] = None,
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileMeta:
        """Create a file of ``num_blocks`` blocks through the namenode."""
        return self.namenode.create_file(
            path,
            num_blocks,
            block_size=block_size,
            writer=writer,
            replication=replication,
            rack_spread=rack_spread,
        )

    def read_block(self, block_id: int, reader: int) -> ReadResult:
        """Read one block, failing over across replicas as needed.

        Walks :meth:`~repro.dfs.namenode.Namenode.replica_preference`
        (which reflects the namenode's possibly stale belief), skipping
        sources whose circuit breaker is open, failing over past dead,
        stale, shedding, or *corrupt* sources, backing off between
        attempts (shed and corrupt reads fail over without backoff —
        the node answered instantly, just not usefully).  Every served
        read is checksum-verified: a mismatch is reported to the
        namenode and never returned to the caller.  Raises
        :class:`ChecksumError` when corruption was detected and no
        replica could serve verified data, :class:`OverloadSheddedError`
        when at least one replica shed and none served,
        :class:`DatanodeUnavailableError` when every candidate fails or
        the retry policy gives up first.

        Sampled requests (``trace_sampler``) record a causal "dfs.read"
        span with one "dfs.read.attempt" child per replica contacted.
        """
        sampler = self.trace_sampler
        if (sampler is None or not _TRACER.enabled
                or not sampler.sample()):
            return self._read_block(block_id, reader, None)
        start = self.namenode.now
        with _TRACER.trace("dfs.read", sim_time=start,
                           block=block_id, reader=reader) as span:
            result = self._read_block(block_id, reader, span)
            span.set(
                source=result.source, locality=result.locality.value,
                attempts=len(result.attempts), hedged=result.hedged,
            )
            # The request's simulated latency: serving queue time plus
            # every backoff paid along the failover walk.
            span.end_sim = start + result.latency + result.backoff
            return result

    def _read_block(self, block_id: int, reader: int,
                    span) -> ReadResult:
        """The failover walk; ``span`` is the sampled root (or None)."""
        tried: List[int] = []
        waited = 0.0
        failures = 0
        shed_any = False
        corrupt_any = False
        candidates = list(self.namenode.replica_preference(block_id, reader))
        for idx, node in enumerate(candidates):
            breaker = self.breakers.get(node) if self.breakers else None
            now = self.namenode.now
            # Sim time stands still during the synchronous walk, but the
            # modeled request timeline does not: attempt N starts after
            # every backoff already paid.  Spans are anchored at
            # ``now + waited`` so they tile inside the root span (whose
            # duration is latency + total backoff).
            began = now + waited
            if breaker is not None and not breaker.allow(now):
                # Tripped node: skip without spending an attempt on it.
                self.breaker_skips += 1
                if _REG.enabled:
                    _BREAKER_SKIPS.inc()
                if span is not None:
                    skip = _TRACER.begin(
                        "dfs.read.attempt", sim_time=began,
                        parent=span.context, node=node,
                        outcome="breaker_open",
                    )
                    _TRACER.finish(skip, end_sim=began)
                continue
            tried.append(node)
            attempt = None
            if span is not None:
                attempt = _TRACER.begin(
                    "dfs.read.attempt", sim_time=began,
                    parent=span.context, node=node,
                )
            dn = self.namenode.datanode(node)
            if dn.alive and dn.holds(block_id):
                outcome = self._serve(
                    dn, block_id, now, candidates[idx + 1:]
                )
                if outcome is not None:
                    serving, latency, hedged = outcome
                    if serving != node:
                        tried.append(serving)
                    serving_dn = (
                        dn if serving == dn.node_id
                        else self.namenode.datanode(serving)
                    )
                    if not serving_dn.verify_replica(block_id):
                        # The replica answered with bytes that fail the
                        # checksum: report it, fail over without backoff
                        # (the node responded promptly — its data is the
                        # problem, not its health, so no breaker hit) and
                        # never surface the corrupt data.
                        corrupt_any = True
                        self.checksum_failures += 1
                        if _REG.enabled:
                            _CHECKSUM_FAILURES.inc()
                        self.namenode.report_corrupt_replica(
                            block_id, serving, detector="client"
                        )
                        if attempt is not None:
                            attempt.set(
                                outcome="corrupt", served_by=serving,
                            )
                            _TRACER.finish(attempt, end_sim=began + latency)
                        failures += 1
                        self.read_failovers += 1
                        if _REG.enabled:
                            _FAILOVERS.inc()
                        if not self.retry_policy.admits(failures, waited):
                            break
                        continue
                    serving_breaker = (
                        self.breakers.get(serving) if self.breakers else None
                    )
                    if serving_breaker is not None:
                        serving_breaker.record_success(now)
                    source = self.namenode.record_access(
                        block_id, reader, source=serving
                    )
                    if _REG.enabled:
                        _READ_LATENCY.observe(latency + waited)
                    if attempt is not None:
                        attempt.set(
                            outcome="served", served_by=serving,
                            latency=latency, hedged=hedged,
                        )
                        _TRACER.finish(attempt, end_sim=began + latency)
                    return ReadResult(
                        block_id=block_id,
                        source=source,
                        locality=self._classify(reader, source),
                        attempts=tuple(tried),
                        backoff=waited,
                        latency=latency,
                        hedged=hedged,
                    )
                # Shed by the bounded queue: fail over immediately, no
                # backoff — waiting on a queue that refused us is wasted
                # time, and the next replica may have headroom.
                shed_any = True
                self.reads_shed += 1
                if _REG.enabled:
                    _SHED_READS.inc()
                if attempt is not None:
                    attempt.set(outcome="shed")
                    _TRACER.finish(attempt, end_sim=began)
                if breaker is not None:
                    breaker.record_failure(now)
                failures += 1
                self.read_failovers += 1
                if _REG.enabled:
                    _FAILOVERS.inc()
                if not self.retry_policy.admits(failures, waited):
                    break
                continue
            # Dead node or stale location: fail over to the next replica.
            if breaker is not None:
                breaker.record_failure(now)
            failures += 1
            self.read_failovers += 1
            if _REG.enabled:
                _FAILOVERS.inc()
            if not self.retry_policy.admits(failures, waited):
                if attempt is not None:
                    attempt.set(outcome="failed", backoff=0.0)
                    _TRACER.finish(attempt, end_sim=began)
                break
            delay = self.retry_policy.delay(failures, self._rng)
            waited += delay
            if attempt is not None:
                attempt.set(outcome="failed", backoff=delay)
                _TRACER.finish(attempt, end_sim=began + delay)
        self.read_errors += 1
        if _REG.enabled:
            _READ_ERRORS.inc()
        if corrupt_any:
            raise ChecksumError(
                f"block {block_id}: no replica served verified data "
                f"(tried {tried})"
            )
        if shed_any:
            raise OverloadSheddedError(
                f"block {block_id}: every replica shed or failed the read "
                f"(tried {tried})"
            )
        raise DatanodeUnavailableError(
            f"block {block_id}: no replica served the read "
            f"(tried {tried or 'no candidates'})"
        )

    def _serve(
        self,
        dn: Datanode,
        block_id: int,
        now: float,
        alternates: Sequence[int],
    ) -> Optional[Tuple[int, float, bool]]:
        """Offer the read to ``dn``'s queue, hedging when it looks slow.

        Returns ``(serving_node, latency, hedged)``, or ``None`` when the
        queue shed the request.  Nodes without a bounded queue serve
        instantly (the pre-overload behaviour).
        """
        queue = dn.service_queue
        if queue is None:
            return dn.node_id, 0.0, False
        latency = queue.offer(now, Priority.CLIENT_READ)
        if latency is None:
            return None
        budget = self.hedge_latency_budget
        if budget is None or latency <= budget:
            return dn.node_id, latency, False
        alt = self._hedge_candidate(block_id, now, latency, alternates)
        if alt is None:
            return dn.node_id, latency, False
        # Fire the hedge: the second request really consumes capacity on
        # the alternate (both queues do the work; the faster one wins).
        self.hedged_reads += 1
        if _REG.enabled:
            _HEDGED.inc()
        alt_latency = alt.service_queue.offer(now, Priority.CLIENT_READ)
        if alt_latency is not None and alt_latency < latency:
            self.hedge_wins += 1
            if _REG.enabled:
                _HEDGE_WINS.inc()
            # The losing primary still served (slowly) — its breaker
            # must observe that outcome.  The caller only records the
            # *winner*, and the primary's ``allow()`` may have consumed
            # a half-open probe that would otherwise never resolve,
            # leaving the breaker stuck open.
            if self.breakers:
                primary_breaker = self.breakers.get(dn.node_id)
                if primary_breaker is not None:
                    primary_breaker.record_success(now)
            return alt.node_id, alt_latency, True
        if alt_latency is None:
            # The hedge was shed: that is a real failure signal for the
            # alternate's breaker.
            if self.breakers:
                alt_breaker = self.breakers.get(alt.node_id)
                if alt_breaker is not None:
                    alt_breaker.record_failure(now)
        elif self.breakers:
            # The hedge served but lost the race — still a successful
            # service from the alternate's point of view.
            alt_breaker = self.breakers.get(alt.node_id)
            if alt_breaker is not None:
                alt_breaker.record_success(now)
        return dn.node_id, latency, True

    def _hedge_candidate(
        self,
        block_id: int,
        now: float,
        latency: float,
        alternates: Sequence[int],
    ) -> Optional[Datanode]:
        """The next-best replica worth hedging to, if any.

        Walks past dead, stale, and breaker-open nodes; stops at the
        first servable alternate and hedges only when its *projected*
        latency beats the primary's (a hedge guaranteed to lose is pure
        added load).  Hedges never probe half-open breakers — probing is
        the primary read path's job.
        """
        for node in alternates:
            if self.breakers:
                breaker = self.breakers.get(node)
                if (breaker is not None
                        and breaker.state(now) is not BreakerState.CLOSED):
                    continue
            dn = self.namenode.datanode(node)
            if not (dn.alive and dn.holds(block_id)):
                continue
            if dn.service_queue is None:
                return None  # unqueued alternate would always "win"
            if dn.service_queue.estimate(now) < latency:
                return dn
            return None  # the next-best is no faster; deeper ones rank worse
        return None

    def read_file(self, path: str, reader: int) -> List[ReadResult]:
        """Read every block of ``path`` from ``reader``'s machine."""
        meta = self.namenode.file(path)
        return [self.read_block(block_id, reader) for block_id in meta.block_ids]

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and all its block replicas."""
        self.namenode.delete_file(path)

    def set_replication(self, path: str, factor: int) -> None:
        """Set the replication factor of every block of ``path``.

        This is the public HDFS API the paper notes "must be done
        manually by the operator" without Aurora.
        """
        for block_id in self.namenode.file(path).block_ids:
            self.namenode.set_replication(block_id, factor)

    def _classify(self, reader: int, source: int) -> Locality:
        if reader == source:
            return Locality.NODE_LOCAL
        if self.namenode.topology.same_rack(reader, source):
            return Locality.RACK_LOCAL
        return Locality.REMOTE
