"""DFS client: the application-facing read/write interface.

"Each application creates a HDFS client to access the file system."  The
client wraps the namenode protocol: writes ask the namenode for targets
and stream the blocks; reads walk the namenode's replica preference
order and classify the resulting access by network distance (node-local
/ rack-local / remote), which is exactly the signal the locality
experiments measure.

Reads are fault tolerant: the namenode's metadata can be *stale* (a
replica holder can crash between heartbeats), so the client tries the
preferred replica, discovers a dead or stale source by failing, backs
off under a :class:`~repro.faults.retry.RetryPolicy`, and fails over to
the next replica in preference order.  The full attempt trail is
recorded on the :class:`ReadResult`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dfs.block import DEFAULT_MAX_BLOCK_SIZE, FileMeta
from repro.dfs.namenode import Namenode
from repro.errors import DatanodeUnavailableError
from repro.faults.retry import RetryPolicy
from repro.obs.registry import get_registry

__all__ = ["Locality", "ReadResult", "DfsClient"]

_REG = get_registry()
_FAILOVERS = _REG.counter(
    "repro_dfs_read_failovers_total",
    "Read attempts that failed over past a dead or stale replica source",
)
_READ_ERRORS = _REG.counter(
    "repro_dfs_read_errors_total",
    "Block reads that exhausted every replica candidate",
)


class Locality(enum.Enum):
    """Network distance of a block read."""

    NODE_LOCAL = "node-local"
    RACK_LOCAL = "rack-local"
    REMOTE = "remote"


@dataclass(frozen=True)
class ReadResult:
    """Outcome of reading one block.

    ``attempts`` is the trail of nodes the client contacted in order —
    the last entry is the node that served the read, every earlier one a
    replica that turned out dead or stale.  ``backoff`` is the total
    simulated wait the retry policy imposed between attempts.
    """

    block_id: int
    source: int
    locality: Locality
    attempts: Tuple[int, ...] = field(default=())
    backoff: float = 0.0

    @property
    def is_local(self) -> bool:
        """Whether the read avoided the network entirely."""
        return self.locality is Locality.NODE_LOCAL

    @property
    def failed_over(self) -> bool:
        """Whether the first-choice replica did not serve the read."""
        return len(self.attempts) > 1


class DfsClient:
    """Thin client over a :class:`~repro.dfs.namenode.Namenode`."""

    def __init__(
        self,
        namenode: Namenode,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.namenode = namenode
        # Bounds the failover walk; with no rng the backoff is
        # jitter-free, so failover behaviour is fully deterministic.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=4, base_delay=0.5, max_delay=5.0, jitter=0.1
        )
        self._rng = rng
        self.read_failovers = 0
        self.read_errors = 0

    def write_file(
        self,
        path: str,
        num_blocks: int,
        block_size: int = DEFAULT_MAX_BLOCK_SIZE,
        writer: Optional[int] = None,
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileMeta:
        """Create a file of ``num_blocks`` blocks through the namenode."""
        return self.namenode.create_file(
            path,
            num_blocks,
            block_size=block_size,
            writer=writer,
            replication=replication,
            rack_spread=rack_spread,
        )

    def read_block(self, block_id: int, reader: int) -> ReadResult:
        """Read one block, failing over across replicas as needed.

        Walks :meth:`~repro.dfs.namenode.Namenode.replica_preference`
        (which reflects the namenode's possibly stale belief), skipping
        sources that turn out dead or stale, backing off between
        attempts.  Raises :class:`DatanodeUnavailableError` when every
        candidate fails or the retry policy gives up first.
        """
        tried: List[int] = []
        waited = 0.0
        failures = 0
        for node in self.namenode.replica_preference(block_id, reader):
            tried.append(node)
            dn = self.namenode.datanode(node)
            if dn.alive and dn.holds(block_id):
                source = self.namenode.record_access(
                    block_id, reader, source=node
                )
                return ReadResult(
                    block_id=block_id,
                    source=source,
                    locality=self._classify(reader, source),
                    attempts=tuple(tried),
                    backoff=waited,
                )
            # Dead node or stale location: fail over to the next replica.
            failures += 1
            self.read_failovers += 1
            if _REG.enabled:
                _FAILOVERS.inc()
            if not self.retry_policy.admits(failures, waited):
                break
            waited += self.retry_policy.delay(failures, self._rng)
        self.read_errors += 1
        if _REG.enabled:
            _READ_ERRORS.inc()
        raise DatanodeUnavailableError(
            f"block {block_id}: no replica served the read "
            f"(tried {tried or 'no candidates'})"
        )

    def read_file(self, path: str, reader: int) -> List[ReadResult]:
        """Read every block of ``path`` from ``reader``'s machine."""
        meta = self.namenode.file(path)
        return [self.read_block(block_id, reader) for block_id in meta.block_ids]

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and all its block replicas."""
        self.namenode.delete_file(path)

    def set_replication(self, path: str, factor: int) -> None:
        """Set the replication factor of every block of ``path``.

        This is the public HDFS API the paper notes "must be done
        manually by the operator" without Aurora.
        """
        for block_id in self.namenode.file(path).block_ids:
            self.namenode.set_replication(block_id, factor)

    def _classify(self, reader: int, source: int) -> Locality:
        if reader == source:
            return Locality.NODE_LOCAL
        if self.namenode.topology.same_rack(reader, source):
            return Locality.RACK_LOCAL
        return Locality.REMOTE
