"""DFS client: the application-facing read/write interface.

"Each application creates a HDFS client to access the file system."  The
client wraps the namenode protocol: writes ask the namenode for targets
and stream the blocks; reads ask for a replica location and classify the
resulting access by network distance (node-local / rack-local / remote),
which is exactly the signal the locality experiments measure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.dfs.block import DEFAULT_MAX_BLOCK_SIZE, FileMeta
from repro.dfs.namenode import Namenode

__all__ = ["Locality", "ReadResult", "DfsClient"]


class Locality(enum.Enum):
    """Network distance of a block read."""

    NODE_LOCAL = "node-local"
    RACK_LOCAL = "rack-local"
    REMOTE = "remote"


@dataclass(frozen=True)
class ReadResult:
    """Outcome of reading one block."""

    block_id: int
    source: int
    locality: Locality

    @property
    def is_local(self) -> bool:
        """Whether the read avoided the network entirely."""
        return self.locality is Locality.NODE_LOCAL


class DfsClient:
    """Thin client over a :class:`~repro.dfs.namenode.Namenode`."""

    def __init__(self, namenode: Namenode) -> None:
        self.namenode = namenode

    def write_file(
        self,
        path: str,
        num_blocks: int,
        block_size: int = DEFAULT_MAX_BLOCK_SIZE,
        writer: Optional[int] = None,
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileMeta:
        """Create a file of ``num_blocks`` blocks through the namenode."""
        return self.namenode.create_file(
            path,
            num_blocks,
            block_size=block_size,
            writer=writer,
            replication=replication,
            rack_spread=rack_spread,
        )

    def read_block(self, block_id: int, reader: int) -> ReadResult:
        """Read one block from the best replica for ``reader``."""
        source = self.namenode.record_access(block_id, reader)
        return ReadResult(
            block_id=block_id,
            source=source,
            locality=self._classify(reader, source),
        )

    def read_file(self, path: str, reader: int) -> List[ReadResult]:
        """Read every block of ``path`` from ``reader``'s machine."""
        meta = self.namenode.file(path)
        return [self.read_block(block_id, reader) for block_id in meta.block_ids]

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and all its block replicas."""
        self.namenode.delete_file(path)

    def set_replication(self, path: str, factor: int) -> None:
        """Set the replication factor of every block of ``path``.

        This is the public HDFS API the paper notes "must be done
        manually by the operator" without Aurora.
        """
        for block_id in self.namenode.file(path).block_ids:
            self.namenode.set_replication(block_id, factor)

    def _classify(self, reader: int, source: int) -> Locality:
        if reader == source:
            return Locality.NODE_LOCAL
        if self.namenode.topology.same_rack(reader, source):
            return Locality.RACK_LOCAL
        return Locality.REMOTE
