"""Heartbeat protocol between datanodes and the namenode.

"Each datanode also periodically sends a heartbeat message to the
namenode to report machine and block status."  In the simulator the
heartbeat's observable effect is failure *detection latency*: a crashed
datanode stops beating, and only once its last heartbeat is older than
the expiry does the namenode drop its replicas from the block map and
start re-replication.  Reads in the interim are already safe because
replica selection intersects with ground-truth liveness (real clients
fail over to another replica on connection errors).
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.dfs.namenode import Namenode
from repro.errors import DfsError
from repro.obs.registry import get_registry
from repro.simulation.engine import EventToken, Simulation

__all__ = ["HeartbeatService"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_DETECTED_FAILURES = _REG.counter(
    "repro_dfs_heartbeat_detected_failures_total",
    "Datanode failures detected through heartbeat expiry",
)


class HeartbeatService:
    """Drives heartbeats and failure detection on the simulation clock."""

    def __init__(
        self,
        sim: Simulation,
        namenode: Namenode,
        interval: float = 3.0,
        expiry: float = 30.0,
    ) -> None:
        if interval <= 0:
            raise DfsError("heartbeat interval must be positive")
        if expiry <= interval:
            raise DfsError("expiry must exceed the heartbeat interval")
        self.sim = sim
        self.namenode = namenode
        self.interval = interval
        self.expiry = expiry
        self.detected_failures = 0
        self._beat_token: Optional[EventToken] = None
        self._check_token: Optional[EventToken] = None
        for dn in namenode.datanodes:
            dn.last_heartbeat = sim.now

    def start(self) -> None:
        """Begin heartbeating and expiry checks."""
        if self._beat_token is not None:
            raise DfsError("heartbeat service already started")
        self._beat_token = self.sim.schedule_periodic(self.interval, self._beat)
        self._check_token = self.sim.schedule_periodic(self.interval, self._check)

    def stop(self) -> None:
        """Cancel all scheduled heartbeat activity."""
        if self._beat_token is not None:
            self._beat_token.cancel()
            self._beat_token = None
        if self._check_token is not None:
            self._check_token.cancel()
            self._check_token = None

    def _beat(self) -> None:
        for dn in self.namenode.datanodes:
            if dn.alive:
                dn.last_heartbeat = self.sim.now

    def _check(self) -> None:
        now = self.sim.now
        stale = [
            dn.node_id
            for dn in self.namenode.datanodes
            if not dn.alive
            and self.namenode.blockmap.blocks_on(dn.node_id)
            and now - dn.last_heartbeat > self.expiry
        ]
        for node in stale:
            self.detected_failures += 1
            if _REG.enabled:
                _DETECTED_FAILURES.inc()
            _LOG.warning(
                "heartbeat expiry: datanode %d declared dead at t=%.1f",
                node, now,
            )
            self.namenode.fail_node(node)
