"""Heartbeat protocol between datanodes and the namenode.

"Each datanode also periodically sends a heartbeat message to the
namenode to report machine and block status."  In the simulator the
heartbeat's observable effects are:

* **failure detection latency** — a crashed datanode stops beating, and
  only once its last heartbeat is older than the expiry does the
  namenode drop its replicas from the block map and start
  re-replication (clients fail over to another replica in the interim,
  see :meth:`repro.dfs.client.DfsClient.read_block`);
* **false suspicion under message loss** — a fault injector can drop
  beats from a healthy node; if enough are lost in a row the namenode
  declares it dead and re-replicates, and when its beats get through
  again the node's block report reconciles the excess;
* **gray-failure awareness** — a slow node (``Datanode.slowdown > 1``)
  keeps beating and is *not* declared dead, but the service tracks it
  so read routing and operators can avoid it.

A node is declared dead exactly once per outage (``_declared``), even
when it holds no blocks — an empty dead node must still be removed from
placement targeting.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional, Set

from repro.dfs.namenode import Namenode
from repro.errors import DfsError
from repro.obs.registry import get_registry
from repro.simulation.engine import EventToken, Simulation

__all__ = ["HeartbeatService"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_DETECTED_FAILURES = _REG.counter(
    "repro_dfs_heartbeat_detected_failures_total",
    "Datanode failures detected through heartbeat expiry",
)
_FALSE_SUSPICIONS = _REG.counter(
    "repro_dfs_heartbeat_false_suspicions_total",
    "Healthy datanodes declared dead because their beats were lost",
)
_RECONCILED = _REG.counter(
    "repro_dfs_heartbeat_reconciliations_total",
    "Suspected-dead datanodes whose beats resumed and were re-registered",
)
_DEGRADED_NODES = _REG.gauge(
    "repro_dfs_degraded_nodes",
    "Datanodes currently serving in a gray (slow) state",
)
_MAX_SATURATION = _REG.gauge(
    "repro_dfs_heartbeat_max_saturation",
    "Worst bounded-queue occupancy reported in the latest heartbeat round",
)


class HeartbeatService:
    """Drives heartbeats and failure detection on the simulation clock."""

    def __init__(
        self,
        sim: Simulation,
        namenode: Namenode,
        interval: float = 3.0,
        expiry: float = 30.0,
    ) -> None:
        if interval <= 0:
            raise DfsError("heartbeat interval must be positive")
        if expiry <= interval:
            raise DfsError("expiry must exceed the heartbeat interval")
        self.sim = sim
        self.namenode = namenode
        self.interval = interval
        self.expiry = expiry
        self.detected_failures = 0
        self.false_suspicions = 0
        self.reconciliations = 0
        # fn(node) -> True to drop this beat (message-loss injection).
        self.loss_filter: Optional[Callable[[int], bool]] = None
        self._declared: Set[int] = set()
        self._beat_token: Optional[EventToken] = None
        self._check_token: Optional[EventToken] = None
        for dn in namenode.datanodes:
            dn.last_heartbeat = sim.now

    def start(self) -> None:
        """Begin heartbeating and expiry checks."""
        if self._beat_token is not None:
            raise DfsError("heartbeat service already started")
        self._beat_token = self.sim.schedule_periodic(self.interval, self._beat)
        self._check_token = self.sim.schedule_periodic(self.interval, self._check)

    def stop(self) -> None:
        """Cancel all scheduled heartbeat activity."""
        if self._beat_token is not None:
            self._beat_token.cancel()
            self._beat_token = None
        if self._check_token is not None:
            self._check_token.cancel()
            self._check_token = None

    def rebind(self, namenode: Namenode) -> None:
        """Point the service at a new namenode (post-failover).

        The physical datanodes (and their ``last_heartbeat`` clocks)
        carry over — only the metadata endpoint changed.  Nodes already
        declared dead are re-declared to the new namenode so its belief
        matches the detector's; if one of them beats again, the normal
        reconciliation path re-registers it with the new leader.
        """
        self.namenode = namenode
        for node_id in self._declared:
            # Belief-only: ground-truth liveness belongs to the fault
            # injector, exactly as in _check().
            namenode.fail_node(node_id, re_replicate=False, crash=False)

    def declared_dead(self) -> Set[int]:
        """Nodes the namenode currently believes are dead."""
        return set(self._declared)

    def degraded_nodes(self) -> Set[int]:
        """Live nodes currently serving in a gray (slow) state."""
        return {
            dn.node_id for dn in self.namenode.datanodes if dn.degraded
        }

    def _beat(self) -> None:
        max_saturation = 0.0
        for dn in self.namenode.datanodes:
            if not dn.alive:
                continue
            if self.loss_filter is not None and self.loss_filter(dn.node_id):
                continue  # beat lost in the network
            dn.last_heartbeat = self.sim.now
            # Heartbeats carry the node's service-queue occupancy — the
            # namenode-side record behind cluster_saturation() and the
            # operator's overload signal.
            saturation = dn.queue_saturation(self.sim.now)
            self.namenode.node_saturation[dn.node_id] = saturation
            max_saturation = max(max_saturation, saturation)
            if dn.node_id in self._declared:
                # A falsely suspected (or silently recovered) node is
                # beating again: its block report re-registers replicas.
                self._declared.discard(dn.node_id)
                self.reconciliations += 1
                if _REG.enabled:
                    _RECONCILED.inc()
                _LOG.info(
                    "datanode %d beats again at t=%.1f; re-registering",
                    dn.node_id, self.sim.now,
                )
                self.namenode.register_block_report(dn.node_id)
        if _REG.enabled:
            _MAX_SATURATION.set(max_saturation)

    def _check(self) -> None:
        now = self.sim.now
        stale = [
            dn
            for dn in self.namenode.datanodes
            if dn.node_id not in self._declared
            and now - dn.last_heartbeat > self.expiry
        ]
        for dn in stale:
            self._declared.add(dn.node_id)
            self.detected_failures += 1
            if dn.alive:
                # The node is healthy but its beats were lost: the
                # namenode cannot tell, so it suspects and re-replicates.
                self.false_suspicions += 1
                if _REG.enabled:
                    _FALSE_SUSPICIONS.inc()
            if _REG.enabled:
                _DETECTED_FAILURES.inc()
            _LOG.warning(
                "heartbeat expiry: datanode %d declared dead at t=%.1f "
                "(actually_alive=%s)",
                dn.node_id, now, dn.alive,
            )
            # crash=False: the heartbeat only updates the namenode's
            # *belief*; ground-truth liveness belongs to the injector.
            self.namenode.fail_node(dn.node_id, crash=False)
        if _REG.enabled:
            _DEGRADED_NODES.set(len(self.degraded_nodes()))
