"""Namenode safe mode: startup write protection.

A restarted HDFS namenode refuses mutations until enough of its blocks
have been confirmed by datanode block reports; only then does it leave
"safe mode" and accept writes and replication changes.  This module
reproduces that protocol for the simulator's recovery path
(:func:`repro.dfs.editlog.recover_namenode`):

* :func:`enter_safe_mode` flips the namenode into the read-only state;
* :class:`SafeModeMonitor` tracks the fraction of blocks with at least
  ``min_replicas`` reported locations and exits safe mode automatically
  once the threshold holds (optionally after an extension delay, like
  HDFS's ``dfs.namenode.safemode.extension``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dfs.namenode import Namenode
from repro.errors import DfsError
from repro.simulation.engine import EventToken, Simulation

__all__ = ["enter_safe_mode", "reported_fraction", "SafeModeMonitor"]


def enter_safe_mode(namenode: Namenode) -> None:
    """Put the namenode into safe mode (mutations rejected)."""
    namenode.safe_mode = True


def reported_fraction(namenode: Namenode, min_replicas: int = 1) -> float:
    """Fraction of blocks with >= ``min_replicas`` live locations.

    1.0 for an empty namespace (nothing is missing).
    """
    total = namenode.blockmap.num_blocks
    if total == 0:
        return 1.0
    live = namenode.live_nodes()
    reported = sum(
        1 for block_id in namenode.blockmap.block_ids()
        if len(namenode.blockmap.live_locations(block_id, live))
        >= min_replicas
    )
    return reported / total


class SafeModeMonitor:
    """Automatically exits safe mode once enough blocks have reported."""

    def __init__(
        self,
        namenode: Namenode,
        threshold: float = 0.999,
        min_replicas: int = 1,
        extension: float = 0.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise DfsError("threshold must be in (0, 1]")
        if min_replicas < 1:
            raise DfsError("min_replicas must be >= 1")
        if extension < 0:
            raise DfsError("extension must be non-negative")
        self.namenode = namenode
        self.threshold = threshold
        self.min_replicas = min_replicas
        self.extension = extension
        self._token: Optional[EventToken] = None
        self._threshold_met_at: Optional[float] = None
        # Called with the sim time at which safe mode ends — the HA
        # plane uses it to record time-to-writable after a failover.
        self.on_exit: Optional[Callable[[float], None]] = None
        enter_safe_mode(namenode)

    @property
    def active(self) -> bool:
        """Whether the namenode is still in safe mode."""
        return self.namenode.safe_mode

    def check(self, now: float = 0.0) -> bool:
        """Evaluate the exit condition; returns True when safe mode ends.

        The threshold must hold continuously for ``extension`` seconds
        (0 exits immediately).
        """
        if not self.namenode.safe_mode:
            return True
        fraction = reported_fraction(self.namenode, self.min_replicas)
        if fraction < self.threshold:
            self._threshold_met_at = None
            return False
        if self._threshold_met_at is None:
            self._threshold_met_at = now
        if now - self._threshold_met_at >= self.extension:
            self.namenode.safe_mode = False
            if self._token is not None:
                self._token.cancel()
                self._token = None
            # Leaving safe mode: repair anything still missing.
            self.namenode.check_replication()
            if self.on_exit is not None:
                self.on_exit(now)
            return True
        return False

    def run_on(self, sim: Simulation, interval: float = 3.0) -> None:
        """Poll the exit condition on the simulation clock."""
        if interval <= 0:
            raise DfsError("interval must be positive")
        if self._token is not None:
            raise DfsError("safe mode monitor already running")
        self._token = sim.schedule_periodic(
            interval, lambda: self.check(sim.now)
        )
