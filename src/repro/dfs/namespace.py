"""Hierarchical namespace: the namenode's directory tree.

"The namenode maintains the metadata of the file system, which stores
the directory structure, file descriptions and a block map."  This module
provides the directory-structure third: a POSIX-style tree supporting
``mkdir -p``, listing, rename and recursive delete, with files as leaf
entries pointing at :class:`~repro.dfs.block.FileMeta` records.

The tree is a pure metadata structure — block storage stays in the block
map — so it can be snapshotted and replayed by the edit log.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    DfsError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
)

__all__ = ["NamespaceTree", "split_path", "parent_of"]


def split_path(path: str) -> Tuple[str, ...]:
    """Validate an absolute path and split it into components."""
    if not path.startswith("/"):
        raise DfsError(f"paths must be absolute: {path!r}")
    parts = tuple(part for part in path.split("/") if part)
    for part in parts:
        if part in (".", ".."):
            raise DfsError(f"path component {part!r} is not allowed")
    return parts


def parent_of(path: str) -> str:
    """The parent directory of ``path`` ('/' for top-level entries)."""
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


class _Node:
    """One tree node: a directory (with children) or a file (with id)."""

    __slots__ = ("name", "children", "file_id")

    def __init__(self, name: str, file_id: Optional[int] = None) -> None:
        self.name = name
        self.file_id = file_id
        self.children: Optional[Dict[str, _Node]] = (
            None if file_id is not None else {}
        )

    @property
    def is_directory(self) -> bool:
        return self.children is not None


class NamespaceTree:
    """POSIX-style directory tree mapping paths to file ids."""

    def __init__(self) -> None:
        self._root = _Node("/")
        self._num_files = 0
        self._num_directories = 0

    # -- queries -----------------------------------------------------------

    @property
    def num_files(self) -> int:
        """Number of files in the tree."""
        return self._num_files

    @property
    def num_directories(self) -> int:
        """Number of explicit directories (excluding the root)."""
        return self._num_directories

    def exists(self, path: str) -> bool:
        """Whether ``path`` names a file or directory."""
        return self._lookup(path) is not None

    def is_directory(self, path: str) -> bool:
        """Whether ``path`` names a directory."""
        node = self._lookup(path)
        return node is not None and node.is_directory

    def is_file(self, path: str) -> bool:
        """Whether ``path`` names a file."""
        node = self._lookup(path)
        return node is not None and not node.is_directory

    def file_id(self, path: str) -> int:
        """The file id stored at ``path``."""
        node = self._lookup(path)
        if node is None or node.is_directory:
            raise FileNotFoundInDfsError(f"no such file: {path}")
        assert node.file_id is not None
        return node.file_id

    def list_directory(self, path: str) -> List[str]:
        """Sorted child names of the directory at ``path``."""
        node = self._lookup(path)
        if node is None or not node.is_directory:
            raise FileNotFoundInDfsError(f"no such directory: {path}")
        assert node.children is not None
        return sorted(node.children)

    def walk_files(self, path: str = "/") -> Iterator[Tuple[str, int]]:
        """Yield (path, file_id) for every file under ``path``."""
        node = self._lookup(path)
        if node is None:
            raise FileNotFoundInDfsError(f"no such path: {path}")
        prefix = "/" + "/".join(split_path(path))
        if prefix == "/":
            prefix = ""
        yield from self._walk(node, prefix or "")

    def walk_directories(self, path: str = "/") -> Iterator[str]:
        """Yield every directory path under ``path``, excluding the root.

        Depth-first, parents before children, so replaying the output
        through :meth:`mkdir` reconstructs the tree — including empty
        directories, which :meth:`walk_files` cannot see.
        """
        node = self._lookup(path)
        if node is None or not node.is_directory:
            raise FileNotFoundInDfsError(f"no such directory: {path}")
        prefix = "/" + "/".join(split_path(path))
        if prefix == "/":
            prefix = ""
        yield from self._walk_dirs(node, prefix)

    def _walk_dirs(self, node: _Node, prefix: str) -> Iterator[str]:
        assert node.children is not None
        for name in sorted(node.children):
            child = node.children[name]
            if child.is_directory:
                child_path = f"{prefix}/{name}"
                yield child_path
                yield from self._walk_dirs(child, child_path)

    def _walk(self, node: _Node, prefix: str) -> Iterator[Tuple[str, int]]:
        if not node.is_directory:
            assert node.file_id is not None
            yield (prefix or "/", node.file_id)
            return
        assert node.children is not None
        for name in sorted(node.children):
            yield from self._walk(node.children[name], f"{prefix}/{name}")

    # -- mutations -----------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory, making parents as needed (``mkdir -p``)."""
        parts = split_path(path)
        node = self._root
        for part in parts:
            assert node.children is not None
            child = node.children.get(part)
            if child is None:
                child = _Node(part)
                node.children[part] = child
                self._num_directories += 1
            elif not child.is_directory:
                raise FileExistsInDfsError(
                    f"cannot mkdir over a file: {path}"
                )
            node = child

    def add_file(self, path: str, file_id: int) -> None:
        """Register a file at ``path``, creating parent directories."""
        parts = split_path(path)
        if not parts:
            raise DfsError("cannot create a file at '/'")
        self.mkdir(parent_of(path))
        parent = self._lookup(parent_of(path))
        assert parent is not None and parent.children is not None
        name = parts[-1]
        if name in parent.children:
            raise FileExistsInDfsError(f"path exists: {path}")
        parent.children[name] = _Node(name, file_id=file_id)
        self._num_files += 1

    def remove_file(self, path: str) -> int:
        """Delete the file at ``path``; returns its file id."""
        parts = split_path(path)
        parent = self._lookup(parent_of(path))
        if parent is None or parent.children is None:
            raise FileNotFoundInDfsError(f"no such file: {path}")
        node = parent.children.get(parts[-1]) if parts else None
        if node is None or node.is_directory:
            raise FileNotFoundInDfsError(f"no such file: {path}")
        del parent.children[parts[-1]]
        self._num_files -= 1
        assert node.file_id is not None
        return node.file_id

    def remove_directory(self, path: str) -> List[int]:
        """Recursively delete a directory; returns the removed file ids."""
        parts = split_path(path)
        if not parts:
            raise DfsError("refusing to delete the root directory")
        parent = self._lookup(parent_of(path))
        if parent is None or parent.children is None:
            raise FileNotFoundInDfsError(f"no such directory: {path}")
        node = parent.children.get(parts[-1])
        if node is None or not node.is_directory:
            raise FileNotFoundInDfsError(f"no such directory: {path}")
        removed = [file_id for _, file_id in self._walk(node, "")]
        dirs_removed = self._count_directories(node)
        del parent.children[parts[-1]]
        self._num_files -= len(removed)
        self._num_directories -= dirs_removed
        return removed

    def rename(self, source: str, destination: str) -> None:
        """Move a file or directory to a new path.

        The destination must not exist; its parent directories are
        created as needed.  Renaming never touches block locations — it
        is a pure metadata operation, as in HDFS.
        """
        src_parts = split_path(source)
        dst_parts = split_path(destination)
        if not src_parts:
            raise DfsError("cannot rename the root directory")
        if dst_parts[: len(src_parts)] == src_parts:
            raise DfsError("cannot rename a directory into itself")
        src_parent = self._lookup(parent_of(source))
        if src_parent is None or src_parent.children is None \
                or src_parts[-1] not in src_parent.children:
            raise FileNotFoundInDfsError(f"no such path: {source}")
        if self.exists(destination):
            raise FileExistsInDfsError(f"destination exists: {destination}")
        self.mkdir(parent_of(destination))
        dst_parent = self._lookup(parent_of(destination))
        assert dst_parent is not None and dst_parent.children is not None
        node = src_parent.children.pop(src_parts[-1])
        node.name = dst_parts[-1]
        dst_parent.children[dst_parts[-1]] = node

    # -- internals ------------------------------------------------------------

    def _lookup(self, path: str) -> Optional[_Node]:
        parts = split_path(path)
        node = self._root
        for part in parts:
            if node.children is None:
                return None
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def _count_directories(self, node: _Node) -> int:
        if not node.is_directory:
            return 0
        assert node.children is not None
        return 1 + sum(
            self._count_directories(child) for child in node.children.values()
        )
