"""The namenode's block map: block -> replica locations.

"The namenode maintains the metadata of the file system, which stores the
directory structure, file descriptions and a block map which identifies
the location of each block replica in the cluster."  Aurora additionally
extends the block map to record per-block popularity; here that extension
lives in :mod:`repro.monitor` and the block map stays a pure location
index with rack-spread queries.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.errors import BlockNotFoundError, DfsError
from repro.obs.registry import get_registry

__all__ = ["BlockMap", "ShardedBlockMap"]

_REG = get_registry()
_SHARD_COUNT = _REG.gauge(
    "repro_dfs_blockmap_shards",
    "Current shard count of the sharded block map",
)
_SHARD_BLOCKS_MAX = _REG.gauge(
    "repro_dfs_blockmap_shard_blocks_max",
    "Blocks in the fullest shard of the sharded block map",
)
_SHARD_BLOCKS_TOTAL = _REG.gauge(
    "repro_dfs_blockmap_shard_blocks_total",
    "Total blocks registered across all block-map shards",
)


class BlockMap:
    """Forward and reverse index of block replica locations."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._meta: Dict[int, BlockMeta] = {}
        self._locations: Dict[int, Set[int]] = {}
        self._stored: List[Set[int]] = [set() for _ in topology.machines]
        # Blocks whose placement-affecting state (locations, existence,
        # replication target) changed since the last drain_dirty().
        # Consumed by the incremental placement-snapshot cache.
        self._dirty: Set[int] = set()

    # -- registration -------------------------------------------------------

    def register(self, meta: BlockMeta) -> None:
        """Add a new block to the namespace (no replicas yet)."""
        if meta.block_id in self._meta:
            raise DfsError(f"block {meta.block_id} already registered")
        self._meta[meta.block_id] = meta
        self._locations[meta.block_id] = set()
        self._dirty.add(meta.block_id)

    def unregister(self, block_id: int) -> None:
        """Remove a block and all its location records (file deletion)."""
        self.meta(block_id)  # existence check
        for node in self._locations.pop(block_id):
            self._stored[node].discard(block_id)
        del self._meta[block_id]
        self._dirty.add(block_id)

    def meta(self, block_id: int) -> BlockMeta:
        """The block's metadata record."""
        try:
            return self._meta[block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block {block_id}") from None

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._meta

    def block_ids(self) -> Iterable[int]:
        """All registered block ids."""
        return self._meta.keys()

    @property
    def num_blocks(self) -> int:
        """Number of registered blocks."""
        return len(self._meta)

    # -- locations ------------------------------------------------------------

    def add_location(self, block_id: int, node: int) -> None:
        """Record a replica of ``block_id`` on datanode ``node``."""
        self.topology.check_machine(node)
        locations = self._locations_for(block_id)
        if node in locations:
            raise DfsError(f"block {block_id} already has a replica on {node}")
        locations.add(node)
        self._stored[node].add(block_id)
        self._dirty.add(block_id)

    def remove_location(self, block_id: int, node: int) -> None:
        """Delete the replica record of ``block_id`` on ``node``."""
        locations = self._locations_for(block_id)
        if node not in locations:
            raise DfsError(f"block {block_id} has no replica on node {node}")
        locations.discard(node)
        self._stored[node].discard(block_id)
        self._dirty.add(block_id)

    def mark_dirty(self, block_id: int) -> None:
        """Flag a placement-affecting change made outside the block map.

        The namenode calls this when it mutates metadata the snapshot
        cache depends on (e.g. a block's replication target).
        """
        self._dirty.add(block_id)

    def drain_dirty(self) -> Set[int]:
        """Return and clear the set of blocks dirtied since the last drain."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def locations(self, block_id: int) -> FrozenSet[int]:
        """Datanodes currently recorded as holding ``block_id``."""
        return frozenset(self._locations_for(block_id))

    def locations_view(self, block_id: int) -> Set[int]:
        """The live location set of ``block_id`` — no defensive copy.

        Callers must treat the result as read-only and must not hold it
        across block-map mutations; use :meth:`locations` for a stable
        snapshot.
        """
        return self._locations_for(block_id)

    def live_locations(self, block_id: int, live: Set[int]) -> FrozenSet[int]:
        """Locations restricted to the given set of live datanodes."""
        return frozenset(self._locations_for(block_id) & live)

    def blocks_on(self, node: int) -> FrozenSet[int]:
        """Blocks with a replica on datanode ``node``."""
        self.topology.check_machine(node)
        return frozenset(self._stored[node])

    def replica_count(self, block_id: int) -> int:
        """Current replica count of ``block_id``."""
        return len(self._locations_for(block_id))

    def rack_spread(self, block_id: int) -> int:
        """Distinct racks currently holding a replica of ``block_id``."""
        rack_of = self.topology.rack_of
        return len({rack_of[node] for node in self._locations_for(block_id)})

    def used_capacity(self, node: int) -> int:
        """Replicas stored on ``node``."""
        self.topology.check_machine(node)
        return len(self._stored[node])

    # -- health queries -------------------------------------------------------

    def under_replicated(self, live: Set[int]) -> List[int]:
        """Blocks whose live replica count is below their target factor."""
        result = []
        for block_id, meta in self._meta.items():
            if len(self._locations[block_id] & live) < meta.replication_factor:
                result.append(block_id)
        return result

    def under_spread(self, live: Set[int]) -> List[int]:
        """Blocks whose live rack spread is below their target."""
        rack_of = self.topology.rack_of
        result = []
        for block_id, meta in self._meta.items():
            live_racks = {
                rack_of[node] for node in self._locations[block_id] & live
            }
            if len(live_racks) < meta.rack_spread:
                result.append(block_id)
        return result

    def over_replicated(self) -> List[int]:
        """Blocks with more replicas than their target factor."""
        return [
            block_id
            for block_id, meta in self._meta.items()
            if len(self._locations[block_id]) > meta.replication_factor
        ]

    def is_available(self, block_id: int, live: Set[int]) -> bool:
        """Whether at least one live replica of ``block_id`` exists."""
        return bool(self._locations_for(block_id) & live)

    def _locations_for(self, block_id: int) -> Set[int]:
        try:
            return self._locations[block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block {block_id}") from None


class ShardedBlockMap(BlockMap):
    """A :class:`BlockMap` whose block indexes are hash-sharded.

    At 10k machines a cluster holds millions of block records; a single
    Python dict of that size is one giant allocation whose resize pauses
    and cache behaviour degrade the namenode's hot paths.  The sharded
    map spreads the ``block -> meta`` and ``block -> locations`` indexes
    over ``block_id % num_shards`` dictionaries so no single dict holds
    the whole cluster's mapping, and **doubles** the shard count
    (rehashing every record) whenever the mean shard population exceeds
    ``max_blocks_per_shard`` — growth cost stays amortized O(1) per
    registration, like a hash table's.

    Behavioural contract (pinned by ``tests/dfs/test_blockmap_sharded.py``):

    * the public API is exactly :class:`BlockMap`'s;
    * iteration (:meth:`block_ids`) and the health queries return block
      ids in **ascending id order**, independent of the shard count or
      registration order — so fsck reports and recovery scheduling are
      byte-identical across shard configurations;
    * per-machine indexes (``blocks_on``/``used_capacity``) and the
      dirty-set protocol are inherited unchanged — they are keyed by
      machine, not block, and are already flat.

    The shard count and the fullest/total shard populations are
    published as gauges when metrics are enabled.
    """

    #: Default shard-growth trigger: mean blocks per shard beyond which
    #: the shard count doubles.
    DEFAULT_MAX_BLOCKS_PER_SHARD = 8192

    def __init__(
        self,
        topology: ClusterTopology,
        num_shards: int = 16,
        max_blocks_per_shard: int = DEFAULT_MAX_BLOCKS_PER_SHARD,
    ) -> None:
        if num_shards < 1:
            raise DfsError("num_shards must be >= 1")
        if max_blocks_per_shard < 1:
            raise DfsError("max_blocks_per_shard must be >= 1")
        super().__init__(topology)
        # The parent's flat indexes stay empty; every block-keyed path
        # is overridden to hit the shards.
        self._num_shards = num_shards
        self._max_blocks_per_shard = max_blocks_per_shard
        self._meta_shards: List[Dict[int, BlockMeta]] = [
            {} for _ in range(num_shards)
        ]
        self._loc_shards: List[Dict[int, Set[int]]] = [
            {} for _ in range(num_shards)
        ]
        self._total_blocks = 0
        self._publish_shard_metrics()

    # -- sharding internals --------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Current shard count (grows by doubling)."""
        return self._num_shards

    def shard_sizes(self) -> List[int]:
        """Blocks registered per shard, in shard order."""
        return [len(shard) for shard in self._meta_shards]

    def _publish_shard_metrics(self) -> None:
        if not _REG.enabled:
            return
        _SHARD_COUNT.set(self._num_shards)
        _SHARD_BLOCKS_MAX.set(
            max(len(shard) for shard in self._meta_shards)
        )
        _SHARD_BLOCKS_TOTAL.set(self._total_blocks)

    def _maybe_grow(self) -> None:
        if self._total_blocks <= self._max_blocks_per_shard * self._num_shards:
            return
        new_count = self._num_shards * 2
        meta_shards: List[Dict[int, BlockMeta]] = [{} for _ in range(new_count)]
        loc_shards: List[Dict[int, Set[int]]] = [{} for _ in range(new_count)]
        for shard in self._meta_shards:
            for block_id, meta in shard.items():
                meta_shards[block_id % new_count][block_id] = meta
        for shard in self._loc_shards:
            for block_id, locations in shard.items():
                loc_shards[block_id % new_count][block_id] = locations
        self._meta_shards = meta_shards
        self._loc_shards = loc_shards
        self._num_shards = new_count

    # -- registration --------------------------------------------------------

    def register(self, meta: BlockMeta) -> None:
        shard = meta.block_id % self._num_shards
        if meta.block_id in self._meta_shards[shard]:
            raise DfsError(f"block {meta.block_id} already registered")
        self._meta_shards[shard][meta.block_id] = meta
        self._loc_shards[shard][meta.block_id] = set()
        self._total_blocks += 1
        self._dirty.add(meta.block_id)
        self._maybe_grow()
        self._publish_shard_metrics()

    def unregister(self, block_id: int) -> None:
        shard = block_id % self._num_shards
        if block_id not in self._meta_shards[shard]:
            raise BlockNotFoundError(f"unknown block {block_id}")
        for node in self._loc_shards[shard].pop(block_id):
            self._stored[node].discard(block_id)
        del self._meta_shards[shard][block_id]
        self._total_blocks -= 1
        self._dirty.add(block_id)
        self._publish_shard_metrics()

    def meta(self, block_id: int) -> BlockMeta:
        try:
            return self._meta_shards[block_id % self._num_shards][block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block {block_id}") from None

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._meta_shards[block_id % self._num_shards]

    def block_ids(self) -> Iterator[int]:
        """All block ids, ascending — identical for every shard count."""
        return heapq.merge(*(sorted(shard) for shard in self._meta_shards))

    @property
    def num_blocks(self) -> int:
        return self._total_blocks

    # -- health queries ------------------------------------------------------

    def under_replicated(self, live: Set[int]) -> List[int]:
        result = [
            block_id
            for meta_shard, loc_shard in zip(
                self._meta_shards, self._loc_shards
            )
            for block_id, meta in meta_shard.items()
            if len(loc_shard[block_id] & live) < meta.replication_factor
        ]
        result.sort()
        return result

    def under_spread(self, live: Set[int]) -> List[int]:
        rack_of = self.topology.rack_of
        result = []
        for meta_shard, loc_shard in zip(self._meta_shards, self._loc_shards):
            for block_id, meta in meta_shard.items():
                live_racks = {
                    rack_of[node] for node in loc_shard[block_id] & live
                }
                if len(live_racks) < meta.rack_spread:
                    result.append(block_id)
        result.sort()
        return result

    def over_replicated(self) -> List[int]:
        result = [
            block_id
            for meta_shard, loc_shard in zip(
                self._meta_shards, self._loc_shards
            )
            for block_id, meta in meta_shard.items()
            if len(loc_shard[block_id]) > meta.replication_factor
        ]
        result.sort()
        return result

    def _locations_for(self, block_id: int) -> Set[int]:
        try:
            return self._loc_shards[block_id % self._num_shards][block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block {block_id}") from None
