"""The namenode's block map: block -> replica locations.

"The namenode maintains the metadata of the file system, which stores the
directory structure, file descriptions and a block map which identifies
the location of each block replica in the cluster."  Aurora additionally
extends the block map to record per-block popularity; here that extension
lives in :mod:`repro.monitor` and the block map stays a pure location
index with rack-spread queries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.cluster.topology import ClusterTopology
from repro.dfs.block import BlockMeta
from repro.errors import BlockNotFoundError, DfsError

__all__ = ["BlockMap"]


class BlockMap:
    """Forward and reverse index of block replica locations."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._meta: Dict[int, BlockMeta] = {}
        self._locations: Dict[int, Set[int]] = {}
        self._stored: List[Set[int]] = [set() for _ in topology.machines]
        # Blocks whose placement-affecting state (locations, existence,
        # replication target) changed since the last drain_dirty().
        # Consumed by the incremental placement-snapshot cache.
        self._dirty: Set[int] = set()

    # -- registration -------------------------------------------------------

    def register(self, meta: BlockMeta) -> None:
        """Add a new block to the namespace (no replicas yet)."""
        if meta.block_id in self._meta:
            raise DfsError(f"block {meta.block_id} already registered")
        self._meta[meta.block_id] = meta
        self._locations[meta.block_id] = set()
        self._dirty.add(meta.block_id)

    def unregister(self, block_id: int) -> None:
        """Remove a block and all its location records (file deletion)."""
        self.meta(block_id)  # existence check
        for node in self._locations.pop(block_id):
            self._stored[node].discard(block_id)
        del self._meta[block_id]
        self._dirty.add(block_id)

    def meta(self, block_id: int) -> BlockMeta:
        """The block's metadata record."""
        try:
            return self._meta[block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block {block_id}") from None

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._meta

    def block_ids(self) -> Iterable[int]:
        """All registered block ids."""
        return self._meta.keys()

    @property
    def num_blocks(self) -> int:
        """Number of registered blocks."""
        return len(self._meta)

    # -- locations ------------------------------------------------------------

    def add_location(self, block_id: int, node: int) -> None:
        """Record a replica of ``block_id`` on datanode ``node``."""
        self.topology.check_machine(node)
        locations = self._locations_for(block_id)
        if node in locations:
            raise DfsError(f"block {block_id} already has a replica on {node}")
        locations.add(node)
        self._stored[node].add(block_id)
        self._dirty.add(block_id)

    def remove_location(self, block_id: int, node: int) -> None:
        """Delete the replica record of ``block_id`` on ``node``."""
        locations = self._locations_for(block_id)
        if node not in locations:
            raise DfsError(f"block {block_id} has no replica on node {node}")
        locations.discard(node)
        self._stored[node].discard(block_id)
        self._dirty.add(block_id)

    def mark_dirty(self, block_id: int) -> None:
        """Flag a placement-affecting change made outside the block map.

        The namenode calls this when it mutates metadata the snapshot
        cache depends on (e.g. a block's replication target).
        """
        self._dirty.add(block_id)

    def drain_dirty(self) -> Set[int]:
        """Return and clear the set of blocks dirtied since the last drain."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def locations(self, block_id: int) -> FrozenSet[int]:
        """Datanodes currently recorded as holding ``block_id``."""
        return frozenset(self._locations_for(block_id))

    def locations_view(self, block_id: int) -> Set[int]:
        """The live location set of ``block_id`` — no defensive copy.

        Callers must treat the result as read-only and must not hold it
        across block-map mutations; use :meth:`locations` for a stable
        snapshot.
        """
        return self._locations_for(block_id)

    def live_locations(self, block_id: int, live: Set[int]) -> FrozenSet[int]:
        """Locations restricted to the given set of live datanodes."""
        return frozenset(self._locations_for(block_id) & live)

    def blocks_on(self, node: int) -> FrozenSet[int]:
        """Blocks with a replica on datanode ``node``."""
        self.topology.check_machine(node)
        return frozenset(self._stored[node])

    def replica_count(self, block_id: int) -> int:
        """Current replica count of ``block_id``."""
        return len(self._locations_for(block_id))

    def rack_spread(self, block_id: int) -> int:
        """Distinct racks currently holding a replica of ``block_id``."""
        rack_of = self.topology.rack_of
        return len({rack_of[node] for node in self._locations_for(block_id)})

    def used_capacity(self, node: int) -> int:
        """Replicas stored on ``node``."""
        self.topology.check_machine(node)
        return len(self._stored[node])

    # -- health queries -------------------------------------------------------

    def under_replicated(self, live: Set[int]) -> List[int]:
        """Blocks whose live replica count is below their target factor."""
        result = []
        for block_id, meta in self._meta.items():
            if len(self._locations[block_id] & live) < meta.replication_factor:
                result.append(block_id)
        return result

    def under_spread(self, live: Set[int]) -> List[int]:
        """Blocks whose live rack spread is below their target."""
        rack_of = self.topology.rack_of
        result = []
        for block_id, meta in self._meta.items():
            live_racks = {
                rack_of[node] for node in self._locations[block_id] & live
            }
            if len(live_racks) < meta.rack_spread:
                result.append(block_id)
        return result

    def over_replicated(self) -> List[int]:
        """Blocks with more replicas than their target factor."""
        return [
            block_id
            for block_id, meta in self._meta.items()
            if len(self._locations[block_id]) > meta.replication_factor
        ]

    def is_available(self, block_id: int, live: Set[int]) -> bool:
        """Whether at least one live replica of ``block_id`` exists."""
        return bool(self._locations_for(block_id) & live)

    def _locations_for(self, block_id: int) -> Set[int]:
        try:
            return self._locations[block_id]
        except KeyError:
            raise BlockNotFoundError(f"unknown block {block_id}") from None
