"""fsck: the cluster-wide invariant checker (HDFS's ``hdfs fsck``).

Where :meth:`~repro.dfs.namenode.Namenode.audit` *asserts* internal
consistency (it is a test oracle that crashes on drift), ``run_fsck``
is the operator-facing diagnosis tool: it walks the namespace, the
block map and every datanode, collects *all* violations instead of
stopping at the first, and returns a machine-readable report.  The
chaos and overload storms run it after their drain phase — a healthy
report is part of their acceptance criteria.

Checks performed:

* **location backing** — every block-map location refers to a live
  datanode whose disk actually holds the block (``dead-location`` /
  ``phantom-location``);
* **replication** — every block has at least its target number of live
  replicas, clamped to the number of live nodes (``under-replicated``);
* **rack spread** — live replicas span at least the block's rack-spread
  target, clamped to what the replica count allows (``under-spread``);
* **orphans** — every block belongs to a registered file
  (``orphaned-block``), every file's blocks are registered
  (``missing-block``), and every replica on a live disk is reflected in
  the block map (``unreported-replica``; replicas of *deleted* blocks
  are tolerated — deletion is lazy by design);
* **capacity** — no datanode stores more than its disk allows
  (``over-capacity``);
* **integrity** — a block whose every remaining replica is quarantined
  as corrupt is flagged ``corrupt-last-replica`` (the replica is
  deliberately retained: damaged bytes beat no bytes for offline
  recovery); with ``verify_checksums=True`` fsck re-reads every live
  replica's stored checksum and reports silent rot the namenode has not
  detected yet as ``undetected-corruption`` — the ground-truth check
  the scrubber races against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dfs.namenode import Namenode
from repro.obs.registry import get_registry

__all__ = ["FsckViolation", "FsckReport", "run_fsck", "render_fsck"]

_REG = get_registry()
_RUNS = _REG.counter(
    "repro_dfs_fsck_runs_total",
    "fsck invocations, by outcome",
    ["outcome"],
)
_VIOLATIONS = _REG.gauge(
    "repro_dfs_fsck_violations",
    "Violations found by the most recent fsck run",
)


@dataclass(frozen=True)
class FsckViolation:
    """One broken invariant, addressable enough to act on."""

    check: str
    detail: str
    block_id: Optional[int] = None
    node: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (JSON-safe)."""
        return {
            "check": self.check,
            "detail": self.detail,
            "block_id": self.block_id,
            "node": self.node,
        }


@dataclass
class FsckReport:
    """Everything one fsck pass looked at and found."""

    time: float = 0.0
    blocks_checked: int = 0
    nodes_checked: int = 0
    files_checked: int = 0
    live_nodes: int = 0
    violations: List[FsckViolation] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """Whether every invariant held."""
        return not self.violations

    def counts_by_check(self) -> Dict[str, int]:
        """Violation tally keyed by check name."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.check] = counts.get(violation.check, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (JSON-safe)."""
        return {
            "time": self.time,
            "healthy": self.healthy,
            "blocks_checked": self.blocks_checked,
            "nodes_checked": self.nodes_checked,
            "files_checked": self.files_checked,
            "live_nodes": self.live_nodes,
            "violation_counts": self.counts_by_check(),
            "violations": [v.to_dict() for v in self.violations],
        }


def run_fsck(
    namenode: Namenode,
    check_replication_targets: bool = True,
    expected_paths: Optional[Iterable[str]] = None,
    verify_checksums: bool = False,
) -> FsckReport:
    """Walk the whole cluster and report every broken invariant.

    ``check_replication_targets=False`` skips the under-replication and
    under-spread checks — useful mid-storm, where blocks are *expected*
    to be below target while repair is still running.

    ``expected_paths`` lists file paths that *must* exist — the
    metadata-loss check after a failover: any path a client successfully
    created on the old leader that the new leader does not know is a
    ``missing-file`` violation.

    ``verify_checksums=True`` additionally re-verifies every replica on
    every live disk — the ground-truth sweep that catches corruption
    nobody has detected yet (``undetected-corruption``).
    """
    report = FsckReport(time=namenode.now)
    live = namenode.live_nodes()
    report.live_nodes = len(live)
    blockmap = namenode.blockmap
    files = [namenode.file(path) for path in namenode.list_files()]
    known_files = {meta.file_id for meta in files}

    for block_id in blockmap.block_ids():
        report.blocks_checked += 1
        meta = blockmap.meta(block_id)
        if meta.file_id not in known_files:
            report.violations.append(FsckViolation(
                check="orphaned-block",
                detail=f"block {block_id} references unknown file "
                       f"{meta.file_id}",
                block_id=block_id,
            ))
        locations = blockmap.locations(block_id)
        for node in locations:
            if node not in live:
                report.violations.append(FsckViolation(
                    check="dead-location",
                    detail=f"block {block_id} mapped to dead node {node}",
                    block_id=block_id,
                    node=node,
                ))
            elif not namenode.datanodes[node].holds(block_id):
                report.violations.append(FsckViolation(
                    check="phantom-location",
                    detail=f"block {block_id} mapped to node {node} whose "
                           f"disk does not hold it",
                    block_id=block_id,
                    node=node,
                ))
        quarantined_nodes = namenode.integrity.nodes_for(block_id)
        if quarantined_nodes and not namenode.verified_locations(block_id):
            report.violations.append(FsckViolation(
                check="corrupt-last-replica",
                detail=f"block {block_id} has no verified replica left; "
                       f"corrupt copies on {sorted(quarantined_nodes)} "
                       f"are retained, not deleted",
                block_id=block_id,
            ))
        if not check_replication_targets:
            continue
        # Quarantined replicas are physically present but unreadable, so
        # they do not count towards the replication target.
        live_count = len(namenode.verified_locations(block_id))
        target = min(meta.replication_factor, len(live)) if live else 0
        if live_count < target:
            report.violations.append(FsckViolation(
                check="under-replicated",
                detail=f"block {block_id} has {live_count} live replicas, "
                       f"target {target}",
                block_id=block_id,
            ))
        live_racks = {
            namenode.topology.rack_of[n]
            for n in namenode.verified_locations(block_id)
        }
        spread_target = min(
            meta.rack_spread,
            live_count,
            len({namenode.topology.rack_of[n] for n in live}),
        )
        if len(live_racks) < spread_target:
            report.violations.append(FsckViolation(
                check="under-spread",
                detail=f"block {block_id} spans {len(live_racks)} racks, "
                       f"target {spread_target}",
                block_id=block_id,
            ))

    for dn in namenode.datanodes:
        report.nodes_checked += 1
        if dn.used_blocks > dn.capacity_blocks:
            report.violations.append(FsckViolation(
                check="over-capacity",
                detail=f"node {dn.node_id} stores {dn.used_blocks} blocks, "
                       f"capacity {dn.capacity_blocks}",
                node=dn.node_id,
            ))
        if not dn.alive:
            continue
        for block_id in dn.blocks():
            # Replicas of deleted blocks linger by design (lazy
            # deletion); a replica of a *known* block missing from the
            # block map is real drift.
            if (block_id in blockmap
                    and dn.node_id not in blockmap.locations(block_id)):
                report.violations.append(FsckViolation(
                    check="unreported-replica",
                    detail=f"node {dn.node_id} holds block {block_id} "
                           f"unknown to the block map",
                    block_id=block_id,
                    node=dn.node_id,
                ))
        if verify_checksums:
            for block_id in dn.blocks():
                if block_id not in blockmap:
                    continue  # lazily deleted remnant
                if namenode.integrity.is_quarantined(block_id, dn.node_id):
                    continue  # already detected and quarantined
                if not dn.verify_replica(block_id):
                    report.violations.append(FsckViolation(
                        check="undetected-corruption",
                        detail=f"replica of block {block_id} on node "
                               f"{dn.node_id} fails its checksum and "
                               f"nobody has noticed",
                        block_id=block_id,
                        node=dn.node_id,
                    ))

    for path in sorted(set(expected_paths or ())):
        if not namenode.namespace.is_file(path):
            report.violations.append(FsckViolation(
                check="missing-file",
                detail=f"acknowledged file {path} is gone from the "
                       f"namespace (metadata loss)",
            ))

    for meta in files:
        report.files_checked += 1
        for block_id in meta.block_ids:
            if block_id not in blockmap:
                report.violations.append(FsckViolation(
                    check="missing-block",
                    detail=f"file {meta.path} references unregistered "
                           f"block {block_id}",
                    block_id=block_id,
                ))

    if _REG.enabled:
        outcome = "healthy" if report.healthy else "violations"
        _RUNS.labels(outcome=outcome).inc()
        _VIOLATIONS.set(len(report.violations))
    return report


def render_fsck(report: FsckReport) -> str:
    """The fsck report as a readable summary."""
    lines = [
        f"fsck at t={report.time:.1f}: "
        + ("HEALTHY" if report.healthy
           else f"{len(report.violations)} violation(s)"),
        f"  blocks checked   {report.blocks_checked}",
        f"  files checked    {report.files_checked}",
        f"  datanodes        {report.nodes_checked} "
        f"({report.live_nodes} live)",
    ]
    for check, count in sorted(report.counts_by_check().items()):
        lines.append(f"  {check:<20} {count}")
    for violation in report.violations[:20]:
        lines.append(f"    - {violation.detail}")
    if len(report.violations) > 20:
        lines.append(
            f"    ... and {len(report.violations) - 20} more"
        )
    return "\n".join(lines)
