"""End-to-end data integrity: replica checksums and the block scrubber.

Replication protects against *losing* a replica; it does nothing for a
replica that is still there but silently wrong (bit-rot, torn writes,
controller bugs).  This module supplies the integrity plane the rest of
:mod:`repro.dfs` threads through:

* a deterministic per-(block, generation) **checksum** — the simulator
  has no real bytes, so a replica's "contents" are modelled as a 64-bit
  pseudo-checksum seeded from the block id and a generation stamp.  A
  corruption mutator perturbs the *stored* value; verification compares
  it against the expected one;
* :class:`ReplicaIntegrity` — the per-replica on-disk state a
  :class:`~repro.dfs.datanode.Datanode` keeps next to each stored block;
* :class:`CorruptionLedger` — the namenode-side quarantine bookkeeping:
  which (block, node) replicas are known-corrupt, when each block's
  corruption episode was first detected, and the detection/repair
  latency statistics the bit-rot chaos scenario reports;
* :class:`BlockScrubber` — a sim-clock background scanner that walks
  every live replica on a rate-limited bytes/second budget and reports
  mismatches to the namenode *before* a client trips over them.

Detection has four entry points — a client read
(:meth:`repro.dfs.client.DfsClient.read_block`), a scrubber pass, the
in-flight checksum check every replication/migration transfer performs
on its source, and a ground-truth :func:`repro.dfs.fsck.run_fsck`
sweep — and all four funnel into
:meth:`repro.dfs.namenode.Namenode.report_corrupt_replica`, so
quarantine, re-replication from a verified source, and
purge-after-repair behave identically regardless of who found the rot.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Dict, List, Optional, Set, Tuple,
)

from repro.errors import DfsError
from repro.obs.registry import get_registry
from repro.simulation.engine import EventToken, Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dfs.namenode import Namenode

__all__ = [
    "replica_checksum",
    "ReplicaIntegrity",
    "CorruptionLedger",
    "ScrubConfig",
    "BlockScrubber",
]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_SCRUBBED = _REG.counter(
    "repro_dfs_integrity_scrubbed_replicas_total",
    "Replicas whose checksum the background scrubber verified",
)
_SCRUB_BYTES = _REG.counter(
    "repro_dfs_integrity_scrub_bytes_total",
    "Bytes of replica data read back by the background scrubber",
)
_SCRUB_ROUNDS = _REG.counter(
    "repro_dfs_integrity_scrub_rounds_total",
    "Completed full-cluster scrub passes",
)
_SCRUB_DEFERRED = _REG.counter(
    "repro_dfs_integrity_scrub_deferred_total",
    "Scrub ticks skipped because admission control denied the bandwidth",
)

_MASK64 = (1 << 64) - 1

# XOR masks a corruption mutator applies to the stored checksum.  Any
# non-zero mask makes the stored value mismatch the expected one; using
# distinct masks per corruption kind keeps the mutation deterministic
# and lets tests distinguish how a replica went bad.
_CORRUPTION_MASKS = {
    "bit-rot": 0x1,
    "torn-write": 0xD1B54A32D192ED03,
}


def replica_checksum(block_id: int, generation: int = 0) -> int:
    """The expected 64-bit checksum of ``block_id`` at ``generation``.

    A splitmix64-style mix of the block id and generation stamp: cheap,
    deterministic, and avalanching enough that any perturbation of the
    stored value is detected.
    """
    x = (block_id * 0x9E3779B97F4A7C15
         + generation * 0xBF58476D1CE4E5B9 + 1) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass
class ReplicaIntegrity:
    """On-disk integrity state of one stored replica.

    ``checksum`` is what the disk actually holds; a healthy replica's
    value equals ``replica_checksum(block_id, generation)``.
    ``corrupted_at`` / ``corruption`` record when and how a mutator
    first damaged the replica — the detection-latency statistics are
    measured against ``corrupted_at``.
    """

    generation: int
    checksum: int
    corrupted_at: Optional[float] = None
    corruption: Optional[str] = None


def corruption_mask(kind: str) -> int:
    """The checksum perturbation for a corruption ``kind``."""
    try:
        return _CORRUPTION_MASKS[kind]
    except KeyError:
        raise DfsError(
            f"unknown corruption kind {kind!r}; "
            f"choose from {sorted(_CORRUPTION_MASKS)}"
        ) from None


class CorruptionLedger:
    """Namenode-side quarantine state and integrity statistics.

    The ledger is pure bookkeeping — the namenode mutates the block map
    and disks; the ledger remembers which replicas are quarantined and
    aggregates the latency numbers the chaos report and the metrics
    pipeline surface.
    """

    def __init__(self) -> None:
        # Known-corrupt (block, node) replicas: out of the readable set,
        # never a replication source, deleted only once the block is
        # back to full verified replication (and never when last).
        self._quarantined: Set[Tuple[int, int]] = set()
        # When each block's *open* corruption episode was first
        # detected; closed (and measured) when the block returns to
        # full verified replication with no quarantined replicas left.
        self._detected_at: Dict[int, float] = {}
        self.detections: Dict[str, int] = {}
        self.detection_latencies: Dict[str, List[float]] = {}
        self.repair_times: List[float] = []
        self.replicas_purged = 0

    # -- quarantine membership ------------------------------------------------

    def quarantine(self, block_id: int, node: int) -> bool:
        """Add a replica to quarantine; False if already there."""
        pair = (block_id, node)
        if pair in self._quarantined:
            return False
        self._quarantined.add(pair)
        return True

    def is_quarantined(self, block_id: int, node: int) -> bool:
        """Whether this exact replica is known-corrupt."""
        return (block_id, node) in self._quarantined

    def nodes_for(self, block_id: int) -> Set[int]:
        """Quarantined replica holders of ``block_id``."""
        return {n for (b, n) in self._quarantined if b == block_id}

    def release(self, block_id: int, node: int) -> None:
        """Forget a quarantined replica (purged, wiped or deleted)."""
        self._quarantined.discard((block_id, node))

    def clear_block(self, block_id: int) -> None:
        """Drop all state for a block (file deletion)."""
        self._quarantined = {
            pair for pair in self._quarantined if pair[0] != block_id
        }
        self._detected_at.pop(block_id, None)

    def quarantined(self) -> Set[Tuple[int, int]]:
        """Snapshot of all quarantined (block, node) replicas."""
        return set(self._quarantined)

    def open_blocks(self) -> Set[int]:
        """Blocks with at least one quarantined replica."""
        return {b for (b, _n) in self._quarantined}

    @property
    def quarantined_count(self) -> int:
        """Quarantined replicas right now."""
        return len(self._quarantined)

    # -- episode statistics ---------------------------------------------------

    def note_detection(
        self, block_id: int, detector: str, now: float,
        corrupted_at: Optional[float],
    ) -> None:
        """Record who found a corrupt replica and how long it festered."""
        self.detections[detector] = self.detections.get(detector, 0) + 1
        if corrupted_at is not None:
            self.detection_latencies.setdefault(detector, []).append(
                max(0.0, now - corrupted_at)
            )
        self._detected_at.setdefault(block_id, now)

    def note_repaired(self, block_id: int, now: float) -> Optional[float]:
        """Close a block's corruption episode; returns its duration."""
        detected = self._detected_at.pop(block_id, None)
        if detected is None:
            return None
        elapsed = max(0.0, now - detected)
        self.repair_times.append(elapsed)
        return elapsed

    def has_open_episode(self, block_id: int) -> bool:
        """Whether a corruption episode is still being repaired."""
        return block_id in self._detected_at


@dataclass(frozen=True)
class ScrubConfig:
    """Knobs of the background block scrubber.

    ``bytes_per_second`` is the read-back bandwidth budget — the whole
    point of a scrubber is to find rot without competing with clients
    for disk and NIC time, so each ``interval`` tick verifies at most
    ``bytes_per_second * interval`` bytes and carries a persistent
    cursor to the next tick.  A full-cluster pass therefore takes about
    ``total_replica_bytes / bytes_per_second`` simulated seconds — the
    scan cadence an operator actually reasons about.
    """

    interval: float = 30.0
    bytes_per_second: float = 4 * 64 * 1024 * 1024
    #: Hard cap on replicas verified per tick, so tiny-block clusters
    #: cannot turn the byte budget into an unbounded metadata walk.
    max_replicas_per_tick: int = 256

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise DfsError("scrub interval must be positive")
        if self.bytes_per_second <= 0:
            raise DfsError("scrub bytes_per_second must be positive")
        if self.max_replicas_per_tick < 1:
            raise DfsError("max_replicas_per_tick must be >= 1")


class BlockScrubber:
    """Periodic, rate-limited verification of every stored replica.

    Walks the datanodes in node order with a persistent (node, block)
    cursor, verifying each live replica's stored checksum against the
    expected one and reporting mismatches to the namenode.  The walk is
    budgeted in bytes per tick and — when the namenode runs with an
    :class:`~repro.overload.admission.AdmissionController` — priced like
    re-replication traffic, so scrubbing yields to client load exactly
    the way repair traffic does.
    """

    def __init__(
        self,
        sim: Simulation,
        namenode: "Namenode",
        config: Optional[ScrubConfig] = None,
    ) -> None:
        self.sim = sim
        self.namenode = namenode
        self.config = config or ScrubConfig()
        self.replicas_scanned = 0
        self.bytes_scanned = 0
        self.corrupt_found = 0
        self.full_scans = 0
        self.ticks_deferred = 0
        self.last_scan_duration: Optional[float] = None
        self._scan_started: Optional[float] = None
        # Cursor: next node index to visit, and the last block id
        # verified on it (replicas sort by block id within a node, so
        # resuming above the watermark tolerates churn between ticks).
        self._node_index = 0
        self._block_watermark = -1
        self._token: Optional[EventToken] = None

    def start(self) -> None:
        """Begin scrubbing on the simulation clock."""
        if self._token is not None:
            raise DfsError("scrubber already started")
        self._scan_started = self.sim.now
        self._token = self.sim.schedule_periodic(
            self.config.interval, self.tick
        )

    def stop(self) -> None:
        """Cancel the periodic scan."""
        if self._token is not None:
            self._token.cancel()
            self._token = None

    def tick(self) -> None:
        """Verify one budget's worth of replicas."""
        now = self.sim.now
        admission = self.namenode.admission
        if admission is not None and not admission.admit("scrub", now):
            # The cluster is busy serving clients: skip this tick, the
            # cursor holds its place and the scan just takes longer.
            self.ticks_deferred += 1
            if _REG.enabled:
                _SCRUB_DEFERRED.inc()
            return
        budget = self.config.bytes_per_second * self.config.interval
        replicas = self.config.max_replicas_per_tick
        nodes = self.namenode.datanodes
        visited_nodes = 0
        while budget > 0 and replicas > 0 and visited_nodes <= len(nodes):
            if self._node_index >= len(nodes):
                self._wrap(now)
                continue
            dn = nodes[self._node_index]
            if not dn.alive:
                # An unreachable disk cannot be scrubbed; its replicas
                # get verified on a later pass, after it recovers.
                self._advance_node()
                visited_nodes += 1
                continue
            pending = [
                b for b in sorted(dn.blocks())
                if b > self._block_watermark
            ]
            if not pending:
                self._advance_node()
                visited_nodes += 1
                continue
            for block_id in pending:
                if budget <= 0 or replicas <= 0:
                    return
                self._block_watermark = block_id
                size = self._block_size(block_id)
                budget -= max(size, 1)
                replicas -= 1
                self.replicas_scanned += 1
                self.bytes_scanned += size
                if _REG.enabled:
                    _SCRUBBED.inc()
                    _SCRUB_BYTES.inc(size)
                if (not dn.verify_replica(block_id)
                        and block_id in self.namenode.blockmap):
                    # Rotten remnants of deleted blocks are not worth
                    # reporting — the lazy-deletion path reclaims them.
                    # Counting only fresh reports keeps corrupt_found
                    # from inflating on replicas already quarantined
                    # and awaiting their repair.
                    if self.namenode.report_corrupt_replica(
                        block_id, dn.node_id, detector="scrub"
                    ):
                        self.corrupt_found += 1
            self._advance_node()
            visited_nodes += 1

    def _block_size(self, block_id: int) -> int:
        blockmap = self.namenode.blockmap
        if block_id in blockmap:
            return blockmap.meta(block_id).size
        return 0  # lazily deleted remnant: still scrubbed, zero-cost

    def _advance_node(self) -> None:
        self._node_index += 1
        self._block_watermark = -1

    def _wrap(self, now: float) -> None:
        """The cursor passed the last node: one full pass completed."""
        self._node_index = 0
        self._block_watermark = -1
        self.full_scans += 1
        if self._scan_started is not None:
            self.last_scan_duration = now - self._scan_started
        self._scan_started = now
        if _REG.enabled:
            _SCRUB_ROUNDS.inc()
        _LOG.debug(
            "scrub pass %d complete at t=%.1f (%.1fs, %d replicas so far)",
            self.full_scans, now, self.last_scan_duration or 0.0,
            self.replicas_scanned,
        )
