"""Block transfer modelling: the replication pipeline's network cost.

Replicating or migrating a block consumes NIC bandwidth on both endpoints
and crosses the rack fabric when the endpoints sit in different racks.
:class:`TransferService` models a transfer's duration as::

    size / (nic_bandwidth / (1 + concurrent transfers on the busier end))
        * cross_rack_penalty (if racks differ)
        / compression_ratio
        * jitter

and either completes it instantly (no simulator attached — placement-only
experiments) or schedules the completion as a simulation event.  Durations
feed the "block movement time" CDF of Figure 6(c), and the compression
knob reproduces the paper's observation that compression can cut movement
traffic dramatically (they cite 27x for Scarlett's workload).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.cluster.topology import ClusterTopology
from repro.errors import DfsError
from repro.simulation.engine import Simulation
from repro.simulation.metrics import Distribution

__all__ = ["TransferService", "GIGABIT_PER_SECOND"]

GIGABIT_PER_SECOND = 125_000_000  # bytes/s on a 1 Gb NIC


class TransferService:
    """Executes block transfers with a contention-aware duration model."""

    def __init__(
        self,
        topology: ClusterTopology,
        sim: Optional[Simulation] = None,
        nic_bandwidth: float = GIGABIT_PER_SECOND,
        cross_rack_penalty: float = 2.0,
        compression_ratio: float = 1.0,
        jitter: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        if nic_bandwidth <= 0:
            raise DfsError("nic_bandwidth must be positive")
        if cross_rack_penalty < 1.0:
            raise DfsError("cross_rack_penalty must be >= 1")
        if compression_ratio < 1.0:
            raise DfsError("compression_ratio must be >= 1")
        if not 0 <= jitter < 1:
            raise DfsError("jitter must be in [0, 1)")
        self.topology = topology
        self.sim = sim
        self.nic_bandwidth = nic_bandwidth
        self.cross_rack_penalty = cross_rack_penalty
        self.compression_ratio = compression_ratio
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        self._active: Dict[int, int] = {}
        self.durations = Distribution()
        self.bytes_transferred = 0
        self.transfers_started = 0

    def active_transfers(self, node: int) -> int:
        """Transfers currently in flight touching ``node``."""
        return self._active.get(node, 0)

    def estimate_duration(
        self,
        size: int,
        src: int,
        dst: int,
        compression_ratio: Optional[float] = None,
    ) -> float:
        """Duration of a transfer starting now, given current contention.

        ``compression_ratio`` overrides the service default for this
        transfer — Aurora compresses its movement traffic while ordinary
        write pipelines stay uncompressed.
        """
        ratio = compression_ratio if compression_ratio is not None \
            else self.compression_ratio
        if ratio < 1.0:
            raise DfsError("compression_ratio must be >= 1")
        contention = 1 + max(self.active_transfers(src), self.active_transfers(dst))
        bandwidth = self.nic_bandwidth / contention
        duration = size / bandwidth
        if not self.topology.same_rack(src, dst):
            duration *= self.cross_rack_penalty
        duration /= ratio
        if self.jitter:
            duration *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return duration

    def transfer(
        self,
        size: int,
        src: int,
        dst: int,
        on_complete: Callable[[], None],
        compression_ratio: Optional[float] = None,
    ) -> float:
        """Start a transfer; ``on_complete`` fires when the bytes land.

        Returns the modelled duration.  Without a simulator the callback
        runs synchronously (placement-only mode); with one, it is
        scheduled ``duration`` seconds in the simulated future and NIC
        contention counters stay raised until then.
        """
        if src == dst:
            raise DfsError("transfer endpoints must differ")
        duration = self.estimate_duration(
            size, src, dst, compression_ratio=compression_ratio
        )
        self.durations.record(duration)
        self.bytes_transferred += size
        self.transfers_started += 1
        if self.sim is None:
            on_complete()
            return duration
        self._active[src] = self._active.get(src, 0) + 1
        self._active[dst] = self._active.get(dst, 0) + 1

        def finish() -> None:
            self._release(src)
            self._release(dst)
            on_complete()

        self.sim.schedule(duration, finish)
        return duration

    def _release(self, node: int) -> None:
        remaining = self._active.get(node, 0) - 1
        if remaining <= 0:
            self._active.pop(node, None)
        else:
            self._active[node] = remaining
