"""Block transfer modelling: the replication pipeline's network cost.

Replicating or migrating a block consumes NIC bandwidth on both endpoints
and crosses the rack fabric when the endpoints sit in different racks.
:class:`TransferService` models a transfer's duration as::

    size / (nic_bandwidth / (1 + concurrent transfers on the busier end))
        * cross_rack_penalty (if racks differ)
        * max endpoint slowdown (gray failures serve slowly)
        / compression_ratio
        * jitter

and either completes it instantly (no simulator attached — placement-only
experiments) or schedules the completion as a simulation event.  Durations
feed the "block movement time" CDF of Figure 6(c), and the compression
knob reproduces the paper's observation that compression can cut movement
traffic dramatically (they cite 27x for Scarlett's workload).

Transfers can also *fail mid-flight*: an installed ``fault_hook`` (see
:class:`repro.faults.injector.FlakyTransferProfile`) or a dead endpoint
turns a transfer into a failure that burns part of its modelled duration
and then fires ``on_failure`` instead of ``on_complete`` — the caller
(namenode) owns retry-on-alternate-source.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.cluster.topology import ClusterTopology
from repro.errors import DfsError
from repro.obs.registry import get_registry
from repro.obs.tracer import TraceContext, get_tracer
from repro.simulation.engine import Simulation
from repro.simulation.metrics import Distribution

__all__ = ["TransferService", "GIGABIT_PER_SECOND"]

GIGABIT_PER_SECOND = 125_000_000  # bytes/s on a 1 Gb NIC

_REG = get_registry()
_TRACER = get_tracer()
_TRANSFER_FAILURES = _REG.counter(
    "repro_dfs_transfer_failures_total",
    "Block transfers that aborted mid-flight",
)
_WASTED_BYTES = _REG.counter(
    "repro_dfs_transfer_wasted_bytes_total",
    "Bytes burned by transfers that failed before completing",
)
_BYTES_BY_KIND = _REG.counter(
    "repro_dfs_transfer_bytes_total",
    "Bytes moved by completed transfers, by traffic class",
    ["kind"],
)


class TransferService:
    """Executes block transfers with a contention-aware duration model."""

    def __init__(
        self,
        topology: ClusterTopology,
        sim: Optional[Simulation] = None,
        nic_bandwidth: float = GIGABIT_PER_SECOND,
        cross_rack_penalty: float = 2.0,
        compression_ratio: float = 1.0,
        jitter: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        if nic_bandwidth <= 0:
            raise DfsError("nic_bandwidth must be positive")
        if cross_rack_penalty < 1.0:
            raise DfsError("cross_rack_penalty must be >= 1")
        if compression_ratio < 1.0:
            raise DfsError("compression_ratio must be >= 1")
        if not 0 <= jitter < 1:
            raise DfsError("jitter must be in [0, 1)")
        self.topology = topology
        self.sim = sim
        self.nic_bandwidth = nic_bandwidth
        self.cross_rack_penalty = cross_rack_penalty
        self.compression_ratio = compression_ratio
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        self._active: Dict[int, int] = {}
        self.durations = Distribution()
        self.bytes_transferred = 0
        # Traffic-class accounting: how many bytes each kind of transfer
        # ("write" pipelines, "replication" repair, "migration" moves)
        # put on the wire — the denominator for "background traffic
        # yielded under client pressure" claims.
        self.bytes_by_kind: Dict[str, int] = {}
        self.transfers_started = 0
        self.transfers_failed = 0
        self.bytes_wasted = 0
        # fn(size, src, dst) -> None for a clean transfer, or the
        # fraction of the modelled duration after which it aborts.
        # Installed by FlakyTransferProfile; None disables fault checks.
        self.fault_hook: Optional[
            Callable[[int, int, int], Optional[float]]
        ] = None
        # fn(node) -> service-rate slowdown (1.0 = healthy); installed
        # by the namenode so gray datanodes stretch transfer times.
        self.node_slowdown: Optional[Callable[[int], float]] = None

    def active_transfers(self, node: int) -> int:
        """Transfers currently in flight touching ``node``."""
        return self._active.get(node, 0)

    def estimate_duration(
        self,
        size: int,
        src: int,
        dst: int,
        compression_ratio: Optional[float] = None,
    ) -> float:
        """Duration of a transfer starting now, given current contention.

        ``compression_ratio`` overrides the service default for this
        transfer — Aurora compresses its movement traffic while ordinary
        write pipelines stay uncompressed.
        """
        ratio = compression_ratio if compression_ratio is not None \
            else self.compression_ratio
        if ratio < 1.0:
            raise DfsError("compression_ratio must be >= 1")
        contention = 1 + max(self.active_transfers(src), self.active_transfers(dst))
        bandwidth = self.nic_bandwidth / contention
        duration = size / bandwidth
        if not self.topology.same_rack(src, dst):
            duration *= self.cross_rack_penalty
        if self.node_slowdown is not None:
            duration *= max(
                1.0, self.node_slowdown(src), self.node_slowdown(dst)
            )
        duration /= ratio
        if self.jitter:
            duration *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return duration

    def transfer(
        self,
        size: int,
        src: int,
        dst: int,
        on_complete: Callable[[], None],
        compression_ratio: Optional[float] = None,
        on_failure: Optional[Callable[[], None]] = None,
        kind: str = "write",
        parent: Optional[TraceContext] = None,
    ) -> float:
        """Start a transfer; ``on_complete`` fires when the bytes land.

        Returns the modelled duration.  Without a simulator the callbacks
        run synchronously (placement-only mode); with one, they are
        scheduled in the simulated future and NIC contention counters
        stay raised until then.

        When the ``fault_hook`` decides this transfer fails mid-flight,
        only a fraction of the duration elapses, the bytes are counted
        as wasted rather than transferred, and ``on_failure`` (when
        given) fires instead of ``on_complete``.

        ``parent`` links the transfer into a causal trace across the
        event boundary (re-replication episodes, traced period replays);
        without it the current span stack, if any, provides the link.
        The span is committed immediately — the modelled duration is
        known upfront, so its simulated end is stamped as ``now +
        duration`` rather than waiting for the completion event.
        """
        if src == dst:
            raise DfsError("transfer endpoints must differ")
        duration = self.estimate_duration(
            size, src, dst, compression_ratio=compression_ratio
        )
        self.transfers_started += 1
        span = None
        if _TRACER.enabled and (
            parent is not None or _TRACER.current_context() is not None
        ):
            span = _TRACER.begin(
                "dfs.transfer",
                sim_time=self.sim.now if self.sim is not None else None,
                parent=parent, size=size, src=src, dst=dst, kind=kind,
            )
        fraction = (
            self.fault_hook(size, src, dst)
            if self.fault_hook is not None else None
        )
        if fraction is not None:
            if not 0 < fraction <= 1:
                raise DfsError("fault fraction must be in (0, 1]")
            return self._fail(
                size, src, dst, duration, fraction, on_failure, span
            )
        if span is not None:
            span.set(outcome="ok", duration=duration)
            _TRACER.finish(
                span,
                end_sim=(
                    self.sim.now + duration if self.sim is not None else None
                ),
            )
        self.durations.record(duration)
        self.bytes_transferred += size
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
        if _REG.enabled:
            _BYTES_BY_KIND.labels(kind=kind).inc(size)
        if self.sim is None:
            on_complete()
            return duration
        self._hold(src, dst)

        def finish() -> None:
            self._release(src)
            self._release(dst)
            on_complete()

        self.sim.schedule(duration, finish)
        return duration

    def _fail(
        self,
        size: int,
        src: int,
        dst: int,
        duration: float,
        fraction: float,
        on_failure: Optional[Callable[[], None]],
        span=None,
    ) -> float:
        """Abort a transfer after ``fraction`` of its duration is wasted."""
        elapsed = duration * fraction
        wasted = int(size * fraction)
        self.transfers_failed += 1
        self.bytes_wasted += wasted
        if _REG.enabled:
            _TRANSFER_FAILURES.inc()
            _WASTED_BYTES.inc(wasted)
        if span is not None:
            span.set(outcome="failed", wasted_bytes=wasted)
            _TRACER.finish(
                span,
                end_sim=(
                    self.sim.now + elapsed if self.sim is not None else None
                ),
            )
        if self.sim is None:
            if on_failure is not None:
                on_failure()
            return elapsed
        self._hold(src, dst)

        def abort() -> None:
            self._release(src)
            self._release(dst)
            if on_failure is not None:
                on_failure()

        self.sim.schedule(elapsed, abort)
        return elapsed

    def _hold(self, src: int, dst: int) -> None:
        self._active[src] = self._active.get(src, 0) + 1
        self._active[dst] = self._active.get(dst, 0) + 1

    def _release(self, node: int) -> None:
        remaining = self._active.get(node, 0) - 1
        if remaining <= 0:
            self._active.pop(node, None)
        else:
            self._active[node] = remaining
