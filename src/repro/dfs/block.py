"""Block and file metadata for the DFS simulator.

HDFS partitions each file into fixed-size blocks (64 MB by default);
"except the last block, every block in a file has the size equal to the
maximum block size".  :class:`BlockMeta` carries a block's identity,
size and replication targets; :class:`FileMeta` groups a file's blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import InvalidProblemError

__all__ = ["BlockMeta", "FileMeta", "DEFAULT_MAX_BLOCK_SIZE"]

DEFAULT_MAX_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass
class BlockMeta:
    """Metadata of one block: identity, size, replication targets.

    ``replication_factor`` and ``rack_spread`` are the *targets* the
    namenode maintains (``k_i`` and ``rho_i``); actual replica locations
    live in the block map.
    """

    block_id: int
    file_id: int
    size: int = DEFAULT_MAX_BLOCK_SIZE
    replication_factor: int = 3
    rack_spread: int = 2

    def __post_init__(self) -> None:
        if self.block_id < 0 or self.file_id < 0:
            raise InvalidProblemError("ids must be non-negative")
        if self.size <= 0:
            raise InvalidProblemError("block size must be positive")
        if self.replication_factor < 1:
            raise InvalidProblemError("replication_factor must be >= 1")
        if not 1 <= self.rack_spread <= self.replication_factor:
            raise InvalidProblemError(
                "rack_spread must be in [1, replication_factor]"
            )


@dataclass(frozen=True)
class FileMeta:
    """Metadata of one file: its path and the ids of its blocks."""

    file_id: int
    path: str
    block_ids: Tuple[int, ...]
    block_size: int = DEFAULT_MAX_BLOCK_SIZE

    def __post_init__(self) -> None:
        if not self.path:
            raise InvalidProblemError("file path must be non-empty")
        object.__setattr__(self, "block_ids", tuple(self.block_ids))

    @property
    def num_blocks(self) -> int:
        """Number of blocks the file spans."""
        return len(self.block_ids)

    @property
    def total_bytes(self) -> int:
        """Nominal file size (all blocks at the maximum block size)."""
        return self.num_blocks * self.block_size
