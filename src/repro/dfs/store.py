"""Pluggable metadata stores: durable backends for journal + checkpoint.

The HA plane (:mod:`repro.dfs.ha`) persists each replica's shipped
journal tail and latest checkpoint through a small storage interface so
backends can be swapped — an in-memory store for fast simulation runs,
a JSON-lines directory store for runs that must survive process
restarts (and for inspecting what a replica knew when it was killed).

A store holds two things:

* the **journal**: edit-log entries (dicts with a monotonically
  increasing ``seq``), appendable and truncatable after a checkpoint;
* the **checkpoint**: the most recent
  :func:`repro.dfs.editlog.build_checkpoint` snapshot, replaced
  atomically.

Both backends share :class:`EditLog`'s torn-tail tolerance: a crash
mid-append loses at most the partial trailing line, never the journal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import DfsError, EditLogCorruptError

__all__ = [
    "MetadataStore",
    "InMemoryMetadataStore",
    "JsonFileMetadataStore",
]


class MetadataStore:
    """Interface every metadata backend implements."""

    def append_entry(self, entry: Dict) -> None:
        """Durably append one journal entry (must carry ``seq``)."""
        raise NotImplementedError

    def append_entries(self, entries: Iterable[Dict]) -> None:
        """Append a batch of journal entries in order."""
        for entry in entries:
            self.append_entry(entry)

    def entries(self) -> List[Dict]:
        """All retained journal entries, oldest first."""
        raise NotImplementedError

    def entries_after(self, seq: int) -> List[Dict]:
        """Retained entries with sequence number > ``seq``."""
        return [entry for entry in self.entries() if entry["seq"] > seq]

    def last_seq(self) -> int:
        """Highest sequence number ever appended (0 when empty)."""
        raise NotImplementedError

    def journal_size(self) -> int:
        """Number of retained journal entries."""
        return len(self.entries())

    def truncate_through(self, seq: int) -> int:
        """Drop entries with seq <= the given value; returns count."""
        raise NotImplementedError

    def save_checkpoint(self, checkpoint: Dict) -> None:
        """Replace the stored checkpoint atomically."""
        raise NotImplementedError

    def load_checkpoint(self) -> Optional[Dict]:
        """The stored checkpoint, or ``None`` if never checkpointed."""
        raise NotImplementedError


class InMemoryMetadataStore(MetadataStore):
    """Journal and checkpoint held in process memory (the sim default)."""

    def __init__(self) -> None:
        self._entries: List[Dict] = []
        self._last_seq = 0
        self._checkpoint: Optional[Dict] = None

    def append_entry(self, entry: Dict) -> None:
        if entry["seq"] <= self._last_seq:
            raise DfsError(
                f"journal seq {entry['seq']} is not past {self._last_seq}"
            )
        self._entries.append(dict(entry))
        self._last_seq = entry["seq"]

    def entries(self) -> List[Dict]:
        return [dict(entry) for entry in self._entries]

    def last_seq(self) -> int:
        return self._last_seq

    def truncate_through(self, seq: int) -> int:
        keep = [entry for entry in self._entries if entry["seq"] > seq]
        dropped = len(self._entries) - len(keep)
        self._entries = keep
        return dropped

    def save_checkpoint(self, checkpoint: Dict) -> None:
        # Round-trip through JSON so the in-memory backend rejects
        # exactly what the file backend would, and shares no state with
        # the live namenode.
        self._checkpoint = json.loads(json.dumps(checkpoint))
        # The checkpoint covers the journal prefix through its seq, so
        # future appends must land past it even if this store never saw
        # the prefix (a revived replica catching up from a snapshot).
        self._last_seq = max(self._last_seq, checkpoint.get("seq", 0))

    def load_checkpoint(self) -> Optional[Dict]:
        if self._checkpoint is None:
            return None
        return json.loads(json.dumps(self._checkpoint))


class JsonFileMetadataStore(MetadataStore):
    """Journal as JSON lines plus a checkpoint file in one directory.

    Layout::

        <directory>/journal.jsonl     append-only journal
        <directory>/checkpoint.json   latest checkpoint (atomic replace)

    Appends go straight to disk; truncation and checkpointing rewrite
    via a temp file + :func:`os.replace` so a crash at any point leaves
    either the old or the new file, never a torn one.  Opening an
    existing directory resumes from whatever survived, tolerating a
    torn trailing journal line (reported via :attr:`torn_line`).
    """

    JOURNAL = "journal.jsonl"
    CHECKPOINT = "checkpoint.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.directory / self.JOURNAL
        self._checkpoint_path = self.directory / self.CHECKPOINT
        self._entries: List[Dict] = []
        self._last_seq = 0
        self.torn_line: Optional[str] = None
        if self._journal_path.exists():
            self._load_journal()
        checkpoint = self.load_checkpoint()
        if checkpoint is not None:
            self._last_seq = max(self._last_seq, checkpoint.get("seq", 0))

    def _load_journal(self) -> None:
        raw = self._journal_path.read_text(encoding="utf-8").splitlines()
        lines = [(i + 1, line) for i, line in enumerate(raw) if line.strip()]
        for position, (lineno, line) in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if position == len(lines) - 1:
                    self.torn_line = line
                    # Rewrite without the torn tail so future appends
                    # don't concatenate onto a partial line.
                    self._rewrite_journal()
                    return
                raise EditLogCorruptError(
                    f"{self._journal_path}: corrupt entry at line "
                    f"{lineno}: {exc}"
                ) from exc
            self._entries.append(entry)
            self._last_seq = max(self._last_seq, entry["seq"])

    def _rewrite_journal(self) -> None:
        tmp = self.directory / (self.JOURNAL + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._journal_path)

    def append_entry(self, entry: Dict) -> None:
        if entry["seq"] <= self._last_seq:
            raise DfsError(
                f"journal seq {entry['seq']} is not past {self._last_seq}"
            )
        with self._journal_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._entries.append(dict(entry))
        self._last_seq = entry["seq"]

    def entries(self) -> List[Dict]:
        return [dict(entry) for entry in self._entries]

    def last_seq(self) -> int:
        return self._last_seq

    def truncate_through(self, seq: int) -> int:
        keep = [entry for entry in self._entries if entry["seq"] > seq]
        dropped = len(self._entries) - len(keep)
        if dropped:
            self._entries = keep
            self._rewrite_journal()
        return dropped

    def save_checkpoint(self, checkpoint: Dict) -> None:
        tmp = self.directory / (self.CHECKPOINT + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(checkpoint, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._checkpoint_path)
        self._last_seq = max(self._last_seq, checkpoint.get("seq", 0))

    def load_checkpoint(self) -> Optional[Dict]:
        if not self._checkpoint_path.exists():
            return None
        return json.loads(
            self._checkpoint_path.read_text(encoding="utf-8")
        )
