"""Composable fault injector driven by deterministic seeded schedules.

Where :mod:`repro.cluster.failures` produces *schedules* for callers to
replay by hand, the injector arms faults directly on a live simulation:
crashes and partitions flip datanode liveness (silently — detection is
the heartbeat service's job), gray profiles degrade a node's service
rate without killing it, flaky-transfer profiles abort transfers
mid-flight, and message-loss profiles drop heartbeats so the namenode
can falsely suspect a healthy node.

Every profile owns an isolated :class:`random.Random` derived from the
injector seed, so adding or removing one profile never perturbs the
event stream of the others and a chaos run replays identically.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, ClassVar, Dict, List, Optional, Sequence, Tuple, Union,
)

from repro.errors import FaultConfigError
from repro.obs.registry import get_registry
from repro.simulation.engine import Simulation

if TYPE_CHECKING:  # break the repro.dfs <-> repro.faults import cycle
    from repro.dfs.ha import HaCluster
    from repro.dfs.heartbeat import HeartbeatService
    from repro.dfs.namenode import Namenode

__all__ = [
    "FaultEvent",
    "CrashProfile",
    "GrayNodeProfile",
    "PartitionProfile",
    "FlakyTransferProfile",
    "MessageLossProfile",
    "LeaderKillProfile",
    "BitRotProfile",
    "TornWriteProfile",
    "FaultProfile",
    "FaultInjector",
    "profile_from_name",
]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_INJECTED = _REG.counter(
    "repro_faults_injected_total",
    "Faults injected into the running simulation, by kind",
    ["kind"],
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or its healing) at a simulated time.

    ``target`` is a machine id, except for ``partition`` events where it
    is a rack id.
    """

    time: float
    kind: str
    target: int
    is_recovery: bool

    def describe(self) -> str:
        """Human-readable one-liner for logs."""
        action = "heals" if self.is_recovery else "strikes"
        return f"t={self.time:.0f}s: {self.kind} fault on {self.target} {action}"


def _check_mtbf(mtbf: float) -> None:
    if mtbf <= 0:
        raise FaultConfigError("mtbf must be positive")


@dataclass(frozen=True)
class CrashProfile:
    """Fail-stop machine crashes (disk survives, node re-reports on repair)."""

    kind: ClassVar[str] = "crash"
    mtbf: float = 2 * 3600.0
    repair_time: float = 600.0
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_mtbf(self.mtbf)
        if self.repair_time <= 0:
            raise FaultConfigError("repair_time must be positive")


@dataclass(frozen=True)
class GrayNodeProfile:
    """Gray failure: the node keeps heartbeating but serves slowly."""

    kind: ClassVar[str] = "gray"
    mtbf: float = 3 * 3600.0
    duration: float = 900.0
    slowdown: float = 10.0
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_mtbf(self.mtbf)
        if self.duration <= 0:
            raise FaultConfigError("duration must be positive")
        if self.slowdown <= 1.0:
            raise FaultConfigError("slowdown must exceed 1")


@dataclass(frozen=True)
class PartitionProfile:
    """ToR-switch partition: every machine in the rack goes unreachable."""

    kind: ClassVar[str] = "partition"
    mtbf: float = 6 * 3600.0
    duration: float = 300.0
    racks: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_mtbf(self.mtbf)
        if self.duration <= 0:
            raise FaultConfigError("duration must be positive")


@dataclass(frozen=True)
class FlakyTransferProfile:
    """Transfers abort mid-flight with some probability.

    A failed transfer burns a uniform fraction of its modelled duration
    (NIC contention included) before the failure callback fires.
    """

    kind: ClassVar[str] = "flaky"
    failure_probability: float = 0.2
    min_fraction: float = 0.1
    max_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.failure_probability <= 1:
            raise FaultConfigError("failure_probability must be in (0, 1]")
        if not 0 < self.min_fraction <= self.max_fraction <= 1:
            raise FaultConfigError(
                "need 0 < min_fraction <= max_fraction <= 1"
            )


@dataclass(frozen=True)
class MessageLossProfile:
    """Heartbeat messages are lost with some probability.

    Enough consecutive losses push a healthy node past the expiry and
    the namenode falsely suspects it — the recovery path then reconciles
    when the node's beats get through again.
    """

    kind: ClassVar[str] = "msgloss"
    loss_probability: float = 0.3
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0 < self.loss_probability < 1:
            raise FaultConfigError("loss_probability must be in (0, 1)")


@dataclass(frozen=True)
class LeaderKillProfile:
    """Crash the metadata-plane leader at scheduled times.

    Targets the *role*, not a machine: each strike kills whichever
    namenode replica currently leads the :class:`repro.dfs.ha.HaCluster`
    the injector was armed with.  ``revive_after`` restarts the killed
    replica as a follower (0 keeps it dead — with 3 replicas the plane
    still tolerates exactly one such kill).
    """

    kind: ClassVar[str] = "kill_leader"
    times: Tuple[float, ...] = (900.0,)
    revive_after: float = 600.0

    def __post_init__(self) -> None:
        if not self.times:
            raise FaultConfigError("times must list at least one kill")
        if any(t <= 0 for t in self.times):
            raise FaultConfigError("kill times must be positive")
        if self.revive_after < 0:
            raise FaultConfigError("revive_after must be non-negative")


@dataclass(frozen=True)
class BitRotProfile:
    """Silent disk corruption: a stored replica's checksum flips in place.

    Each strike damages one seeded-random replica on the target node —
    no liveness change, no error, no log line from the node itself.
    Nothing notices until a verified client read, a scrubber pass, or a
    deep fsck trips over the mismatch, which is exactly the detection
    race the bit-rot chaos scenario measures.  Rot is one-shot: there
    is no recovery event, only repair by re-replication.
    """

    kind: ClassVar[str] = "bitrot"
    mtbf: float = 3600.0
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_mtbf(self.mtbf)


@dataclass(frozen=True)
class TornWriteProfile:
    """Torn writes: a replica update persists only partially.

    The replica's generation stamp advances but its stored checksum
    stays behind, so verification against the new generation fails —
    the classic power-loss-mid-write failure mode.  One-shot, like
    :class:`BitRotProfile`.
    """

    kind: ClassVar[str] = "tornwrite"
    mtbf: float = 2 * 3600.0
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_mtbf(self.mtbf)


FaultProfile = Union[
    CrashProfile,
    GrayNodeProfile,
    PartitionProfile,
    FlakyTransferProfile,
    MessageLossProfile,
    LeaderKillProfile,
    BitRotProfile,
    TornWriteProfile,
]

_PROFILE_NAMES = {
    "crash": CrashProfile,
    "gray": GrayNodeProfile,
    "partition": PartitionProfile,
    "flaky": FlakyTransferProfile,
    "msgloss": MessageLossProfile,
    "kill_leader": LeaderKillProfile,
    "bitrot": BitRotProfile,
    "tornwrite": TornWriteProfile,
}


def profile_from_name(name: str, **overrides: object) -> FaultProfile:
    """Build a default profile by CLI name (``crash``, ``gray``, ...)."""
    try:
        cls = _PROFILE_NAMES[name]
    except KeyError:
        raise FaultConfigError(
            f"unknown fault profile {name!r}; "
            f"choose from {sorted(_PROFILE_NAMES)}"
        ) from None
    return cls(**overrides)  # type: ignore[arg-type]


class FaultInjector:
    """Arms a set of fault profiles on a live simulation.

    ``horizon`` bounds the scheduled (crash / gray / partition) event
    streams; probabilistic profiles (flaky transfers, message loss) are
    hooks that stay armed for the whole run.  :meth:`plan` exposes the
    scheduled events before :meth:`install` arms them, and is stable for
    a given (seed, profiles, horizon) triple.
    """

    def __init__(
        self,
        sim: Simulation,
        namenode: Namenode,
        profiles: Sequence[FaultProfile],
        horizon: float,
        seed: int = 0,
        heartbeats: Optional[HeartbeatService] = None,
        ha: Optional[HaCluster] = None,
    ) -> None:
        if horizon <= 0:
            raise FaultConfigError("horizon must be positive")
        if ha is None and any(
            isinstance(p, LeaderKillProfile) for p in profiles
        ):
            raise FaultConfigError(
                "kill_leader profile needs an HaCluster (pass ha=...)"
            )
        self.sim = sim
        self.namenode = namenode
        self.profiles = tuple(profiles)
        self.horizon = float(horizon)
        self.seed = seed
        self.heartbeats = heartbeats
        self.ha = ha
        # Replica ids of killed leaders, popped by their revive events.
        self._killed_leaders: List[int] = []
        # Per-corruption-profile victim pickers, seeded at install time
        # (which replica rots depends on what is stored when the strike
        # fires, so it cannot be part of the plan).
        self._corrupt_rngs: Dict[str, random.Random] = {}
        self.injected: Dict[str, int] = {}
        self.installed = False
        # Nodes may be downed by overlapping profiles (a machine crash
        # inside a partitioned rack); a node only heals once the last
        # outage covering it has expired.
        self._release_at: Dict[int, float] = {}
        self._plan: Optional[Tuple[FaultEvent, ...]] = None

    # -- schedule construction ----------------------------------------------

    def plan(self) -> Tuple[FaultEvent, ...]:
        """The deterministic schedule of timed fault events."""
        if self._plan is None:
            events: List[FaultEvent] = []
            for index, profile in enumerate(self.profiles):
                rng = random.Random(self.seed * 7919 + index)
                events.extend(self._profile_events(profile, rng))
            events.sort(key=lambda e: (e.time, e.is_recovery, e.target))
            self._plan = tuple(events)
        return self._plan

    def _profile_events(
        self, profile: FaultProfile, rng: random.Random
    ) -> List[FaultEvent]:
        if isinstance(profile, CrashProfile):
            targets = profile.targets or tuple(self.namenode.topology.machines)
            return self._sample(profile.kind, targets, profile.mtbf,
                                profile.repair_time, rng)
        if isinstance(profile, GrayNodeProfile):
            targets = profile.targets or tuple(self.namenode.topology.machines)
            return self._sample(profile.kind, targets, profile.mtbf,
                                profile.duration, rng)
        if isinstance(profile, PartitionProfile):
            racks = profile.racks or tuple(
                range(self.namenode.topology.num_racks)
            )
            return self._sample(profile.kind, racks, profile.mtbf,
                                profile.duration, rng)
        if isinstance(profile, (BitRotProfile, TornWriteProfile)):
            targets = profile.targets or tuple(self.namenode.topology.machines)
            return self._sample_oneshot(profile.kind, targets,
                                        profile.mtbf, rng)
        if isinstance(profile, LeaderKillProfile):
            # target is -1: the victim is whichever replica leads when
            # the strike fires, unknowable at plan time.
            events = []
            for t in profile.times:
                if t >= self.horizon:
                    continue
                events.append(FaultEvent(t, profile.kind, -1, False))
                if profile.revive_after > 0:
                    events.append(FaultEvent(
                        t + profile.revive_after, profile.kind, -1, True
                    ))
            return events
        return []  # hook-based profiles have no timed events

    def _sample(
        self,
        kind: str,
        targets: Sequence[int],
        mtbf: float,
        repair: float,
        rng: random.Random,
    ) -> List[FaultEvent]:
        events: List[FaultEvent] = []
        for target in targets:
            down_until = 0.0
            t = rng.expovariate(1.0 / mtbf)
            while t < self.horizon:
                if t >= down_until:
                    events.append(FaultEvent(t, kind, target, False))
                    down_until = t + repair
                    events.append(
                        FaultEvent(down_until, kind, target, True)
                    )
                t += rng.expovariate(1.0 / mtbf)
        return events

    def _sample_oneshot(
        self,
        kind: str,
        targets: Sequence[int],
        mtbf: float,
        rng: random.Random,
    ) -> List[FaultEvent]:
        """Strikes with no recovery events — damage only repair undoes."""
        events: List[FaultEvent] = []
        for target in targets:
            t = rng.expovariate(1.0 / mtbf)
            while t < self.horizon:
                events.append(FaultEvent(t, kind, target, False))
                t += rng.expovariate(1.0 / mtbf)
        return events

    # -- arming ---------------------------------------------------------------

    def install(self) -> int:
        """Schedule every timed event and arm the probabilistic hooks.

        Returns the number of timed outage events armed.
        """
        if self.installed:
            raise FaultConfigError("injector already installed")
        self.installed = True
        armed = 0
        for event in self.plan():
            self.sim.schedule_at(
                max(event.time, self.sim.now),
                lambda event=event: self._apply(event),
            )
            if not event.is_recovery:
                armed += 1
        for index, profile in enumerate(self.profiles):
            hook_rng = random.Random(self.seed * 104729 + index)
            if isinstance(profile, FlakyTransferProfile):
                self._arm_flaky(profile, hook_rng)
            elif isinstance(profile, MessageLossProfile):
                self._arm_message_loss(profile, hook_rng)
            elif isinstance(profile, (BitRotProfile, TornWriteProfile)):
                self._corrupt_rngs[profile.kind] = hook_rng
        _LOG.info(
            "fault injector armed: %d timed events, %d profiles, seed=%d",
            armed, len(self.profiles), self.seed,
        )
        return armed

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if _REG.enabled:
            _INJECTED.labels(kind=kind).inc()

    def _apply(self, event: FaultEvent) -> None:
        if event.is_recovery:
            self._heal(event)
            return
        self._count(event.kind)
        _LOG.info("injecting fault: %s", event.describe())
        if event.kind == CrashProfile.kind:
            self._strike_nodes([event.target], event)
        elif event.kind == LeaderKillProfile.kind:
            from repro.errors import NoLeaderError
            try:
                self._killed_leaders.append(self.ha.kill_leader())
            except NoLeaderError:
                # An earlier kill's election is still running; striking
                # a leaderless plane is a no-op.
                self.injected[event.kind] -= 1
        elif event.kind == PartitionProfile.kind:
            nodes = self.namenode.topology.machines_in_rack(event.target)
            self._strike_nodes(nodes, event)
        elif event.kind == GrayNodeProfile.kind:
            profile = next(
                p for p in self.profiles if isinstance(p, GrayNodeProfile)
            )
            self.namenode.datanode(event.target).slowdown = profile.slowdown
        elif event.kind == BitRotProfile.kind:
            self._rot_replica(event, "bit-rot")
        elif event.kind == TornWriteProfile.kind:
            self._rot_replica(event, "torn-write")

    def _rot_replica(self, event: FaultEvent, corruption: str) -> None:
        """Silently damage one stored replica on the target node."""
        dn = self.namenode.datanode(event.target)
        blocks = sorted(dn.blocks())
        if not blocks:
            self.injected[event.kind] -= 1  # empty disk: nothing to rot
            return
        block_id = self._corrupt_rngs[event.kind].choice(blocks)
        if corruption == "torn-write":
            dn.torn_write(block_id, at=self.sim.now)
        else:
            dn.corrupt_replica(block_id, at=self.sim.now, kind=corruption)
        _LOG.info(
            "silent %s: replica of block %d on datanode %d",
            corruption, block_id, event.target,
        )

    def _strike_nodes(self, nodes: Sequence[int], event: FaultEvent) -> None:
        release = event.time + self._outage_duration(event.kind)
        for node in nodes:
            self._release_at[node] = max(
                self._release_at.get(node, 0.0), release
            )
            # Silent crash: the namenode keeps routing to the node until
            # the heartbeat expiry — exactly the stale-metadata window
            # the client's read failover exists for.
            self.namenode.datanode(node).crash()

    def _outage_duration(self, kind: str) -> float:
        for profile in self.profiles:
            if profile.kind == kind:
                if isinstance(profile, CrashProfile):
                    return profile.repair_time
                if isinstance(profile, (GrayNodeProfile, PartitionProfile)):
                    return profile.duration
        return 0.0

    def _heal(self, event: FaultEvent) -> None:
        if event.kind == LeaderKillProfile.kind:
            if self._killed_leaders:
                self.ha.revive_replica(self._killed_leaders.pop(0))
            return
        if event.kind == GrayNodeProfile.kind:
            self.namenode.datanode(event.target).slowdown = 1.0
            return
        if event.kind == PartitionProfile.kind:
            nodes = self.namenode.topology.machines_in_rack(event.target)
        else:
            nodes = [event.target]
        for node in nodes:
            if self.sim.now + 1e-9 < self._release_at.get(node, 0.0):
                continue  # another outage still covers this node
            self.namenode.recover_node(node)

    def _arm_flaky(
        self, profile: FlakyTransferProfile, rng: random.Random
    ) -> None:
        transfers = self.namenode.transfers

        def fault_hook(size: int, src: int, dst: int) -> Optional[float]:
            if rng.random() < profile.failure_probability:
                self._count(profile.kind)
                return rng.uniform(profile.min_fraction, profile.max_fraction)
            return None

        transfers.fault_hook = fault_hook

    def _arm_message_loss(
        self, profile: MessageLossProfile, rng: random.Random
    ) -> None:
        if self.heartbeats is None:
            raise FaultConfigError(
                "message-loss profile needs a heartbeat service"
            )
        targets = set(profile.targets) if profile.targets is not None else None

        def loss_filter(node: int) -> bool:
            if targets is not None and node not in targets:
                return False
            if rng.random() < profile.loss_probability:
                self._count(profile.kind)
                return True
            return False

        self.heartbeats.loss_filter = loss_filter
