"""Retry policy: exponential backoff with jitter, deadline and attempt cap.

One policy object describes *when to give up* and *how long to wait*;
the callers own the actual retry loops (the DFS client retries reads
across replicas, the namenode retries transfers on alternate sources)
because each loop changes its target between attempts.  The policy is
immutable and all randomness comes from an injected
:class:`random.Random`, so retry timings are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.errors import FaultConfigError, RetryExhaustedError

__all__ = ["RetryPolicy", "call_with_retries"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff.

    ``max_attempts`` counts the first try: a policy with
    ``max_attempts=1`` never retries.  ``deadline`` (seconds of
    cumulative backoff, simulated or wall-clock — the caller decides)
    caps total waiting independently of the attempt count; ``None``
    disables it.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise FaultConfigError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise FaultConfigError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise FaultConfigError("max_delay must be >= base_delay")
        if not 0 <= self.jitter < 1:
            raise FaultConfigError("jitter must be in [0, 1)")
        if self.deadline is not None and self.deadline <= 0:
            raise FaultConfigError("deadline must be positive")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise FaultConfigError("attempt numbers start at 1")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter and rng is not None:
            raw *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return raw

    def admits(self, attempts_made: int, waited: float = 0.0) -> bool:
        """Whether another attempt is allowed after ``attempts_made``.

        ``waited`` is the cumulative backoff already spent, checked
        against the deadline.
        """
        if attempts_made >= self.max_attempts:
            return False
        if self.deadline is not None and waited >= self.deadline:
            return False
        return True

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The full backoff sequence this policy allows, deadline-capped."""
        waited = 0.0
        for attempt in range(1, self.max_attempts):
            if self.deadline is not None and waited >= self.deadline:
                return
            delay = self.delay(attempt, rng)
            waited += delay
            yield delay


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    rng: Optional[random.Random] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    ``sleep`` receives each backoff delay (pass ``sim.advance``-style
    hooks in simulations, ``time.sleep`` in real code, or ``None`` to
    retry immediately while still honouring the deadline bookkeeping).
    Raises :class:`RetryExhaustedError` chaining the last failure.
    """
    waited = 0.0
    attempts = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempts += 1
            if not policy.admits(attempts, waited):
                raise RetryExhaustedError(
                    f"gave up after {attempts} attempts ({exc})"
                ) from exc
            delay = policy.delay(attempts, rng)
            waited += delay
            if sleep is not None:
                sleep(delay)
