"""Fault injection and retry primitives.

The paper's premise is that placement must survive node and ToR-switch
failures, but scheduled binary outages (``repro.cluster.failures``) only
exercise the *steady-state* half of that claim.  This package supplies
the recovery-dynamics half:

* :mod:`repro.faults.retry` — a reusable :class:`RetryPolicy`
  (exponential backoff + jitter, deadline, max attempts) shared by the
  DFS client, the namenode's transfer retries and anything else that
  needs bounded, deterministic persistence;
* :mod:`repro.faults.injector` — a composable :class:`FaultInjector`
  that arms crash, gray/slow-node, rack-partition, flaky-transfer and
  heartbeat message-loss profiles on a live simulation from one seed.

Everything is driven by injected :class:`random.Random` instances so a
chaos run replays identically for a given seed.
"""

from repro.faults.injector import (
    BitRotProfile,
    CrashProfile,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    FlakyTransferProfile,
    GrayNodeProfile,
    LeaderKillProfile,
    MessageLossProfile,
    PartitionProfile,
    TornWriteProfile,
    profile_from_name,
)
from repro.faults.retry import RetryPolicy, call_with_retries

__all__ = [
    "RetryPolicy",
    "call_with_retries",
    "FaultInjector",
    "FaultEvent",
    "FaultProfile",
    "CrashProfile",
    "GrayNodeProfile",
    "PartitionProfile",
    "FlakyTransferProfile",
    "MessageLossProfile",
    "LeaderKillProfile",
    "BitRotProfile",
    "TornWriteProfile",
    "profile_from_name",
]
