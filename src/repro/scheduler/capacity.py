"""Slot-based capacity scheduler with locality-aware task placement.

The testbed evaluation "used the capacity scheduler for Hadoop Yarn
MapReduce for all three systems"; the simulations give every machine a
fixed number of task slots.  :class:`MapReduceScheduler` reproduces that
setup:

* each machine owns ``slots_per_machine`` map slots;
* jobs are submitted into named queues with capacity shares (a single
  ``default`` queue by default — the common single-tenant configuration);
* whenever a slot frees up, the queue furthest below its share offers the
  slot to its oldest job; the job launches a node-local task if it has
  one on that machine, otherwise consults the delay-scheduling policy
  before conceding a rack-local or remote launch;
* task durations come from the
  :class:`~repro.scheduler.runtime.TaskRuntimeModel` (remote tasks 2x
  slower), and every task start is a block read through the namenode, so
  Aurora's usage monitor sees the accesses.
"""

from __future__ import annotations

import logging
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.cluster.machine import MachineState
from repro.dfs.namenode import Namenode
from repro.errors import DatanodeUnavailableError, SchedulerError
from repro.obs.registry import get_registry
from repro.scheduler.delay import NoDelayPolicy, SchedulingDelayPolicy
from repro.scheduler.job import Job, MapTask, TaskLocality, TaskState
from repro.scheduler.runtime import TaskRuntimeModel
from repro.simulation.engine import Simulation
from repro.simulation.metrics import MetricsRecorder

__all__ = ["QueueConfig", "MapReduceScheduler", "TaskAttempt"]

_LOG = logging.getLogger(__name__)

_REG = get_registry()
_TASKS = _REG.counter(
    "repro_scheduler_tasks_total",
    "Task launches (primary attempts), by input locality",
    ["locality"],
)
_TASK_WAIT = _REG.histogram(
    "repro_scheduler_task_wait_seconds",
    "Simulated time from job submission to each task's launch",
)
_TASK_RUN = _REG.histogram(
    "repro_scheduler_task_run_seconds",
    "Simulated run time of winning task attempts",
)
_JOB_COMPLETION = _REG.histogram(
    "repro_scheduler_job_completion_seconds",
    "Simulated end-to-end job completion times",
)


@dataclass
class TaskAttempt:
    """One execution attempt of a map task (primary or speculative)."""

    job: Job
    task: MapTask
    machine_id: int
    locality: TaskLocality
    start_time: float
    speculative: bool = False
    cancelled: bool = False


@dataclass(frozen=True)
class QueueConfig:
    """One scheduler queue and its capacity share."""

    name: str
    capacity_share: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulerError("queue name must be non-empty")
        if self.capacity_share <= 0:
            raise SchedulerError("capacity_share must be positive")


class _Queue:
    """Runtime state of one queue."""

    def __init__(self, config: QueueConfig) -> None:
        self.config = config
        self.jobs: Deque[Job] = deque()
        self.running_tasks = 0

    @property
    def pressure(self) -> float:
        """Used capacity relative to share (lower = more entitled)."""
        return self.running_tasks / self.config.capacity_share


class MapReduceScheduler:
    """Locality-aware, slot-based MapReduce task scheduler."""

    def __init__(
        self,
        sim: Simulation,
        namenode: Namenode,
        slots_per_machine: int = 14,
        runtime: Optional[TaskRuntimeModel] = None,
        delay_policy: Optional[SchedulingDelayPolicy] = None,
        metrics: Optional[MetricsRecorder] = None,
        queues: Optional[List[QueueConfig]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if slots_per_machine < 1:
            raise SchedulerError("slots_per_machine must be >= 1")
        self.sim = sim
        self.namenode = namenode
        self.runtime = runtime or TaskRuntimeModel()
        self.delay_policy = delay_policy or NoDelayPolicy()
        self.metrics = metrics or MetricsRecorder()
        self._rng = rng or random.Random(0)
        self.machines: List[MachineState] = [
            MachineState(machine_id=m, task_slots=slots_per_machine)
            for m in namenode.topology.machines
        ]
        queue_configs = queues or [QueueConfig("default", 1.0)]
        self._queues: Dict[str, _Queue] = {
            q.name: _Queue(q) for q in queue_configs
        }
        self._job_queue: Dict[int, str] = {}
        self.retry_interval = 3.0  # node-manager heartbeat cadence
        self._retry_pending = False
        self._attempts: Dict[tuple, List["TaskAttempt"]] = {}
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.speculative_launches = 0
        self.speculative_wins = 0
        self.completed_jobs: List[Job] = []

    # -- submission ----------------------------------------------------------

    def submit_job(self, job: Job, queue: str = "default") -> None:
        """Enqueue a job and try to place its tasks immediately."""
        if queue not in self._queues:
            raise SchedulerError(f"unknown queue {queue!r}")
        if job.job_id in self._job_queue:
            raise SchedulerError(f"job {job.job_id} already submitted")
        self._queues[queue].jobs.append(job)
        self._job_queue[job.job_id] = queue
        self.jobs_submitted += 1
        self.dispatch()

    # -- liveness ----------------------------------------------------------------

    def machine(self, machine_id: int) -> MachineState:
        """Runtime state of one machine."""
        return self.machines[machine_id]

    def fail_machine(self, machine_id: int) -> None:
        """Kill a machine: attempts on it die; orphaned tasks re-queue.

        A task whose only live attempt ran on the failed machine returns
        to PENDING; a task with a surviving speculative attempt keeps
        running there.
        """
        state = self.machines[machine_id]
        state.fail()
        for key in list(self._attempts):
            attempts = self._attempts[key]
            for attempt in attempts:
                if attempt.machine_id == machine_id:
                    attempt.cancelled = True
            if any(not a.cancelled for a in attempts):
                continue
            job, task = attempts[0].job, attempts[0].task
            del self._attempts[key]
            if task.state is TaskState.RUNNING:
                task.reset()
                self._queues[self._job_queue[job.job_id]].running_tasks -= 1
        self.dispatch()

    def recover_machine(self, machine_id: int) -> None:
        """Bring a machine back and resume placing tasks on it."""
        self.machines[machine_id].recover()
        self.dispatch()

    # -- dispatch ------------------------------------------------------------------

    def dispatch(self) -> int:
        """One scheduling pass over every queue; returns tasks launched.

        Per pending task, in queue-entitlement and job-FIFO order:

        1. **node-local matching** — if a machine holding the task's
           block has a free slot, launch there (least-occupied holder
           first);
        2. **delay scheduling** — otherwise the task may consume one unit
           of its skip budget and keep waiting for locality; once the
           budget is spent it concedes and launches on the best available
           machine (rack-local preferred, then least occupied).

        Dispatch runs on job arrival and task completion; when any task
        chooses to wait, a retry pass is scheduled ``retry_interval``
        seconds later (the node-manager heartbeat cadence), so waiting
        consumes simulated time exactly as delay scheduling intends.
        """
        launched = 0
        needs_retry = False
        waiting = set()
        while True:
            progress = 0
            slots_exhausted = False
            for queue in self._active_queues():
                for job in self._job_order(queue):
                    if not job.has_pending():
                        continue
                    cap = self._per_job_launch_cap()
                    per_job = 0
                    # Lazy pending scan (no per-pass list build): task
                    # completions are scheduled sim events, never
                    # synchronous within dispatch, so no task's state
                    # changes mid-iteration except the one just launched
                    # — which the scan has already passed.
                    for task in job.tasks:
                        if task.state is not TaskState.PENDING:
                            continue
                        if cap is not None and per_job >= cap:
                            break
                        key = (job.job_id, task.task_id)
                        if key in waiting:
                            continue
                        machine = self._free_holder(task)
                        if machine is not None:
                            self._launch(job, task, machine)
                            per_job += 1
                            progress += 1
                            continue
                        if not self._any_free_slot():
                            slots_exhausted = True
                            break
                        if self.delay_policy.should_wait(task):
                            waiting.add(key)
                            needs_retry = True
                            continue
                        machine = self._best_machine_for(task)
                        if machine is None:
                            waiting.add(key)
                            needs_retry = True
                            continue
                        self._launch(job, task, machine)
                        per_job += 1
                        progress += 1
                    if slots_exhausted:
                        break
                if slots_exhausted:
                    break
            launched += progress
            if progress == 0 or slots_exhausted:
                break
        if needs_retry:
            self._schedule_retry()
        return launched

    def _per_job_launch_cap(self) -> Optional[int]:
        """Max launches per job per dispatch pass (None = unlimited).

        The capacity scheduler drains jobs FIFO; the fair scheduler caps
        this at one so concurrent jobs interleave.
        """
        return None

    def _schedule_retry(self) -> None:
        """Queue one retry pass, coalescing concurrent requests."""
        if self._retry_pending:
            return
        self._retry_pending = True

        def retry() -> None:
            self._retry_pending = False
            self.dispatch()

        self.sim.schedule(self.retry_interval, retry)

    def _job_order(self, queue: "_Queue") -> List[Job]:
        """Order in which a queue's jobs are offered slots.

        The capacity scheduler is FIFO within a queue; subclasses (e.g.
        the fair scheduler) override this.
        """
        return list(queue.jobs)

    def _active_queues(self) -> List[_Queue]:
        """Queues with pending work, most entitled first."""
        active = [
            q for q in self._queues.values()
            if any(job.has_pending() for job in q.jobs)
        ]
        active.sort(key=lambda q: q.pressure)
        return active

    def _any_free_slot(self) -> bool:
        return any(m.alive and m.free_slots > 0 for m in self.machines)

    def _free_holder(self, task: MapTask) -> Optional[MachineState]:
        """The least-occupied live replica holder with a free slot."""
        best = None
        for node in self.namenode.blockmap.locations_view(task.block_id):
            machine = self.machines[node]
            if not machine.alive or machine.free_slots <= 0:
                continue
            if not self.namenode.datanodes[node].alive:
                continue
            if best is None or machine.used_slots < best.used_slots:
                best = machine
        return best

    def _best_machine_for(self, task: MapTask) -> Optional[MachineState]:
        """Best non-local machine: rack-local first, then least occupied."""
        live = self.namenode.live_nodes()
        locations = self.namenode.blockmap.live_locations(task.block_id, live)
        if not locations:
            return None  # block unavailable; retry after repair
        replica_racks = {self.namenode.topology.rack_of[n] for n in locations}
        best = None
        best_key = None
        for machine in self.machines:
            if not machine.alive or machine.free_slots <= 0:
                continue
            rack = self.namenode.topology.rack_of[machine.machine_id]
            key = (0 if rack in replica_racks else 1, machine.used_slots)
            if best_key is None or key < best_key:
                best = machine
                best_key = key
        return best

    def _launch(
        self,
        job: Job,
        task: MapTask,
        machine: MachineState,
        speculative: bool = False,
    ) -> Optional["TaskAttempt"]:
        """Start a task attempt on ``machine``.

        A regular launch transitions the task to RUNNING; a speculative
        launch is a backup attempt for an already-running task — whoever
        finishes first wins and the loser is killed.
        """
        try:
            source = self.namenode.record_access(
                task.block_id, machine.machine_id
            )
        except DatanodeUnavailableError:
            return None
        locality = self._classify(machine.machine_id, source)
        machine.reserve_slot()
        attempt = TaskAttempt(
            job=job,
            task=task,
            machine_id=machine.machine_id,
            locality=locality,
            start_time=self.sim.now,
            speculative=speculative,
        )
        key = (job.job_id, task.task_id)
        self._attempts.setdefault(key, []).append(attempt)
        if speculative:
            self.speculative_launches += 1
        else:
            task.start(machine.machine_id, locality, self.sim.now)
            queue = self._queues[self._job_queue[job.job_id]]
            queue.running_tasks += 1
            if locality.is_remote:
                self.metrics.counters.add("remote_tasks")
                self.metrics.rate("remote_tasks").record(self.sim.now)
            else:
                self.metrics.counters.add("local_tasks")
                self.metrics.rate("local_tasks").record(self.sim.now)
            if _REG.enabled:
                _TASKS.labels(locality=locality.value).inc()
                _TASK_WAIT.observe(self.sim.now - job.submit_time)
        duration = self.runtime.duration(job.task_duration, locality)
        self.sim.schedule(
            duration, lambda: self._complete(attempt, machine)
        )
        return attempt

    def live_attempts(self, job_id: int, task_id: int) -> List["TaskAttempt"]:
        """Attempts of a task still holding a slot."""
        return [
            a for a in self._attempts.get((job_id, task_id), ())
            if not a.cancelled
        ]

    def launch_speculative(self, job: Job, task: MapTask) -> bool:
        """Launch a backup attempt for a RUNNING task, if a slot exists."""
        if task.state is not TaskState.RUNNING:
            return False
        machine = self._free_holder(task) or self._best_machine_for(task)
        if machine is None:
            return False
        if any(a.machine_id == machine.machine_id
               for a in self.live_attempts(job.job_id, task.task_id)):
            return False
        return self._launch(job, task, machine, speculative=True) is not None

    def _complete(self, attempt: "TaskAttempt", machine: MachineState) -> None:
        if attempt.cancelled:
            return
        attempt.cancelled = True
        machine.release_slot()
        task = attempt.task
        job = attempt.job
        key = (job.job_id, task.task_id)
        if task.state is not TaskState.RUNNING:
            self.dispatch()
            return
        # This attempt wins; kill any sibling attempts immediately.
        for sibling in self.live_attempts(job.job_id, task.task_id):
            sibling.cancelled = True
            other = self.machines[sibling.machine_id]
            if other.alive:
                other.release_slot()
        self._attempts.pop(key, None)
        task.machine = attempt.machine_id
        task.locality = attempt.locality
        task.finish(self.sim.now)
        if _REG.enabled:
            _TASK_RUN.observe(self.sim.now - attempt.start_time)
        if attempt.speculative:
            self.speculative_wins += 1
        queue = self._queues[self._job_queue[job.job_id]]
        queue.running_tasks -= 1
        if job.is_complete():
            job.finish_time = self.sim.now
            queue.jobs.remove(job)
            del self._job_queue[job.job_id]
            self.jobs_completed += 1
            self.completed_jobs.append(job)
            self.metrics.distribution("job_completion").record(
                job.completion_time
            )
            if _REG.enabled:
                _JOB_COMPLETION.observe(job.completion_time)
            _LOG.debug(
                "job %d completed in %.1fs (%d tasks)",
                job.job_id, job.completion_time, len(job.tasks),
            )
        self.dispatch()

    # -- reporting -----------------------------------------------------------------

    def _classify(self, machine_id: int, source: int) -> TaskLocality:
        if machine_id == source:
            return TaskLocality.NODE_LOCAL
        if self.namenode.topology.same_rack(machine_id, source):
            return TaskLocality.RACK_LOCAL
        return TaskLocality.REMOTE

    def tasks_per_machine(self) -> List[int]:
        """Total tasks executed by each machine — the 'machine load' CDF."""
        return [m.tasks_executed for m in self.machines]

    def remote_fraction(self) -> float:
        """Fraction of launched tasks the paper counts as remote."""
        remote = self.metrics.counters.get("remote_tasks")
        local = self.metrics.counters.get("local_tasks")
        total = remote + local
        if total == 0:
            return 0.0
        return remote / total

    def pending_jobs(self) -> int:
        """Jobs still holding unfinished tasks."""
        return len(self._job_queue)
