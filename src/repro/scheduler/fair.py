"""Fair scheduling: max-min fairness across concurrent jobs.

The delay-scheduling paper the Aurora paper cites ([20], Zaharia et al.)
was developed for the Hadoop Fair Scheduler, which gives every running
job an equal share of the cluster instead of draining jobs FIFO.  This
variant plugs into the same slot/queue machinery as the capacity
scheduler: within a queue, the job with the fewest running tasks is
offered slots first (ties broken by submit time), so small jobs are not
starved behind large ones.
"""

from __future__ import annotations

from typing import List

from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.job import Job, TaskState

__all__ = ["FairScheduler"]


class FairScheduler(MapReduceScheduler):
    """Max-min fair job ordering within each queue."""

    def _per_job_launch_cap(self) -> int:
        """One launch per job per pass, so concurrent jobs interleave."""
        return 1

    def _job_order(self, queue) -> List[Job]:
        """Fewest running tasks first; FIFO among equals."""

        def running_tasks(job: Job) -> int:
            return sum(
                1 for task in job.tasks if task.state is TaskState.RUNNING
            )

        return sorted(
            queue.jobs,
            key=lambda job: (running_tasks(job), job.submit_time, job.job_id),
        )
