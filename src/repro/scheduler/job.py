"""Jobs and map tasks.

"In a MapReduce job, a map task takes as input a data block stored in the
distributed file system ... if a map task is scheduled on a machine that
owns a local copy of the input block, the task is called a local task ...
Otherwise, the map task is called a remote task."  A :class:`Job` carries
one :class:`MapTask` per input block; reduce phases are outside the
paper's model (its metrics are all about map-task locality).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import SchedulerError

__all__ = ["TaskState", "TaskLocality", "MapTask", "Job"]


class TaskState(enum.Enum):
    """Lifecycle of a map task."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


class TaskLocality(enum.Enum):
    """Where the task's input block was read from.

    The paper's experiments use the binary local/remote split; rack-local
    is tracked separately so reports can break it out, and counts as
    *remote* in the paper's metric.
    """

    NODE_LOCAL = "node-local"
    RACK_LOCAL = "rack-local"
    REMOTE = "remote"

    @property
    def is_remote(self) -> bool:
        """Whether the paper counts this task as remote."""
        return self is not TaskLocality.NODE_LOCAL


@dataclass
class MapTask:
    """One map task: processes one input block.

    State transitions must go through :meth:`start`/:meth:`finish`/
    :meth:`reset` — they keep the owning job's pending/done counters
    (the scheduler's O(1) dispatch index) in sync.
    """

    task_id: int
    job_id: int
    block_id: int
    state: TaskState = TaskState.PENDING
    machine: Optional[int] = None
    locality: Optional[TaskLocality] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    skip_count: int = 0  # delay-scheduling bookkeeping
    _job: Optional["Job"] = field(default=None, repr=False, compare=False)

    def start(self, machine: int, locality: TaskLocality, now: float) -> None:
        """Transition to RUNNING on ``machine``."""
        if self.state is not TaskState.PENDING:
            raise SchedulerError(f"task {self.task_id} is not pending")
        self.state = TaskState.RUNNING
        self.machine = machine
        self.locality = locality
        self.start_time = now
        if self._job is not None:
            self._job._pending_count -= 1

    def finish(self, now: float) -> None:
        """Transition to DONE."""
        if self.state is not TaskState.RUNNING:
            raise SchedulerError(f"task {self.task_id} is not running")
        self.state = TaskState.DONE
        self.finish_time = now
        if self._job is not None:
            self._job._done_count += 1

    def reset(self) -> None:
        """Return a RUNNING task to PENDING (machine failure recovery)."""
        if self.state is not TaskState.RUNNING:
            raise SchedulerError(f"task {self.task_id} is not running")
        self.state = TaskState.PENDING
        self.machine = None
        self.locality = None
        self.start_time = None
        if self._job is not None:
            self._job._pending_count += 1


@dataclass
class Job:
    """One MapReduce job: a bag of map tasks over the blocks of a file."""

    job_id: int
    submit_time: float
    block_ids: Sequence[int]
    task_duration: float
    tasks: List[MapTask] = field(default_factory=list)
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.task_duration <= 0:
            raise SchedulerError("task_duration must be positive")
        if not self.block_ids:
            raise SchedulerError("a job needs at least one input block")
        if not self.tasks:
            self.tasks = [
                MapTask(task_id=index, job_id=self.job_id, block_id=block_id)
                for index, block_id in enumerate(self.block_ids)
            ]
        # Pending/done counters maintained by the task transition
        # methods, so has_pending()/is_complete() are O(1) on the
        # scheduler's dispatch hot path.
        self._pending_count = 0
        self._done_count = 0
        for task in self.tasks:
            task._job = self
            if task.state is TaskState.PENDING:
                self._pending_count += 1
            elif task.state is TaskState.DONE:
                self._done_count += 1

    @property
    def num_tasks(self) -> int:
        """Total map tasks."""
        return len(self.tasks)

    def pending_tasks(self) -> List[MapTask]:
        """Tasks not yet scheduled."""
        if self._pending_count == 0:
            return []
        return [t for t in self.tasks if t.state is TaskState.PENDING]

    def has_pending(self) -> bool:
        """Whether any task is still waiting to be scheduled (O(1))."""
        return self._pending_count > 0

    def is_complete(self) -> bool:
        """Whether every task has finished (O(1))."""
        return self._done_count == len(self.tasks)

    @property
    def completion_time(self) -> float:
        """Submit-to-finish latency; raises until the job completes."""
        if self.finish_time is None:
            raise SchedulerError(f"job {self.job_id} has not finished")
        return self.finish_time - self.submit_time

    def remote_task_count(self) -> int:
        """Finished or running tasks the paper counts as remote."""
        return sum(
            1 for t in self.tasks
            if t.locality is not None and t.locality.is_remote
        )
