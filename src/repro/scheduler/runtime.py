"""Task runtime model: local versus remote execution speed.

"As network I/O is typically slower than local disk access, it has been
shown that on average local tasks run 2x faster than remote tasks [20]."
:class:`TaskRuntimeModel` turns a job's base (local) task duration into an
actual duration given the task's locality, with optional multiplicative
jitter for realism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulerError
from repro.obs.registry import get_registry
from repro.scheduler.job import TaskLocality

__all__ = ["TaskRuntimeModel"]

_REG = get_registry()
_TASK_DURATION = _REG.histogram(
    "repro_scheduler_task_duration_seconds",
    "Simulated task durations produced by the runtime model, by locality",
    ["locality"],
)


@dataclass
class TaskRuntimeModel:
    """Maps (base duration, locality) to an execution time.

    ``remote_factor`` defaults to the paper's 2x; ``rack_local_factor``
    sits between 1x and the remote factor because a rack-local read stays
    under one ToR switch.
    """

    rack_local_factor: float = 1.6
    remote_factor: float = 2.0
    jitter: float = 0.0
    rng: Optional[random.Random] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rack_local_factor < 1.0:
            raise SchedulerError("rack_local_factor must be >= 1")
        if self.remote_factor < self.rack_local_factor:
            raise SchedulerError(
                "remote_factor must be >= rack_local_factor"
            )
        if not 0 <= self.jitter < 1:
            raise SchedulerError("jitter must be in [0, 1)")
        if self.rng is None:
            self.rng = random.Random(0)

    def factor(self, locality: TaskLocality) -> float:
        """Slow-down multiplier for a locality class."""
        if locality is TaskLocality.NODE_LOCAL:
            return 1.0
        if locality is TaskLocality.RACK_LOCAL:
            return self.rack_local_factor
        return self.remote_factor

    def duration(self, base_duration: float, locality: TaskLocality) -> float:
        """Actual task duration for the given locality."""
        if base_duration <= 0:
            raise SchedulerError("base_duration must be positive")
        value = base_duration * self.factor(locality)
        if self.jitter:
            value *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        if _REG.enabled:
            _TASK_DURATION.labels(locality=locality.value).observe(value)
        return value
