"""MapReduce-style task scheduling substrate.

Slot-based capacity scheduler with locality awareness, delay scheduling
and the paper's 2x local-vs-remote runtime model.
"""

from repro.scheduler.capacity import MapReduceScheduler, QueueConfig, TaskAttempt
from repro.scheduler.fair import FairScheduler
from repro.scheduler.speculation import SpeculativeExecutor
from repro.scheduler.delay import (
    DelaySchedulingPolicy,
    NoDelayPolicy,
    SchedulingDelayPolicy,
)
from repro.scheduler.job import Job, MapTask, TaskLocality, TaskState
from repro.scheduler.runtime import TaskRuntimeModel

__all__ = [
    "MapReduceScheduler",
    "FairScheduler",
    "QueueConfig",
    "TaskAttempt",
    "SpeculativeExecutor",
    "DelaySchedulingPolicy",
    "NoDelayPolicy",
    "SchedulingDelayPolicy",
    "Job",
    "MapTask",
    "TaskLocality",
    "TaskState",
    "TaskRuntimeModel",
]
