"""Speculative execution: backup attempts for straggler tasks.

MapReduce's classic mitigation for slow machines: when a running task
has taken much longer than the job's expected task duration, launch a
duplicate attempt elsewhere; the first finisher wins and the loser is
killed.  In this simulator stragglers arise from remote reads (2x) and
runtime jitter, and speculation converts a slow remote attempt into a
fast local one whenever replicas free up.

Attach to a scheduler with::

    executor = SpeculativeExecutor(sim, scheduler)
    executor.start()
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchedulerError
from repro.scheduler.capacity import MapReduceScheduler
from repro.scheduler.job import TaskState
from repro.simulation.engine import EventToken, Simulation

__all__ = ["SpeculativeExecutor"]


class SpeculativeExecutor:
    """Periodically scans for stragglers and launches backup attempts."""

    def __init__(
        self,
        sim: Simulation,
        scheduler: MapReduceScheduler,
        check_interval: float = 15.0,
        slowdown_threshold: float = 1.5,
        max_backups_per_scan: int = 4,
    ) -> None:
        if check_interval <= 0:
            raise SchedulerError("check_interval must be positive")
        if slowdown_threshold <= 1.0:
            raise SchedulerError("slowdown_threshold must exceed 1")
        if max_backups_per_scan < 1:
            raise SchedulerError("max_backups_per_scan must be >= 1")
        self.sim = sim
        self.scheduler = scheduler
        self.check_interval = check_interval
        self.slowdown_threshold = slowdown_threshold
        self.max_backups_per_scan = max_backups_per_scan
        self._token: Optional[EventToken] = None

    def start(self) -> None:
        """Begin periodic straggler scans."""
        if self._token is not None:
            raise SchedulerError("speculative executor already started")
        self._token = self.sim.schedule_periodic(
            self.check_interval, self.scan
        )

    def stop(self) -> None:
        """Cancel the scans."""
        if self._token is not None:
            self._token.cancel()
            self._token = None

    def scan(self) -> int:
        """One pass: back up the slowest overdue tasks; returns launches."""
        candidates = []
        for queue in self.scheduler._queues.values():
            for job in queue.jobs:
                deadline = job.task_duration * self.slowdown_threshold
                for task in job.tasks:
                    if task.state is not TaskState.RUNNING:
                        continue
                    assert task.start_time is not None
                    elapsed = self.sim.now - task.start_time
                    if elapsed <= deadline:
                        continue
                    if len(self.scheduler.live_attempts(
                            job.job_id, task.task_id)) > 1:
                        continue  # already backed up
                    candidates.append((elapsed / deadline, job, task))
        candidates.sort(key=lambda item: item[0], reverse=True)
        launched = 0
        for _, job, task in candidates:
            if launched >= self.max_backups_per_scan:
                break
            if self.scheduler.launch_speculative(job, task):
                launched += 1
        return launched
