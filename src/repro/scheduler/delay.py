"""Delay scheduling (Zaharia et al., EuroSys 2010).

The paper cites delay scheduling as the standard locality-improving
technique whose effectiveness dynamic replication amplifies: "many recent
scheduling algorithms have been proposed to improve data locality [17],
[20]".  The policy is tiny: a task whose block has no free local slot
declines up to ``max_skips`` scheduling opportunities before conceding a
rack-local or remote launch.  With the scheduler's retry cadence this
bounds each task's wait to ``max_skips * retry_interval`` simulated
seconds — short relative to task runtimes, exactly the regime delay
scheduling targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import SchedulerError
from repro.scheduler.job import MapTask

__all__ = ["SchedulingDelayPolicy", "NoDelayPolicy", "DelaySchedulingPolicy"]


@runtime_checkable
class SchedulingDelayPolicy(Protocol):
    """Decides whether a task should keep waiting for a local slot."""

    def should_wait(self, task: MapTask) -> bool:
        """Whether ``task`` should decline a non-local launch for now."""
        ...  # pragma: no cover - protocol definition


class NoDelayPolicy:
    """Never wait: take any slot immediately (plain FIFO locality)."""

    def should_wait(self, task: MapTask) -> bool:
        """Never."""
        return False


@dataclass
class DelaySchedulingPolicy:
    """Skip up to ``max_skips`` offers per task while waiting for locality."""

    max_skips: int = 3

    def __post_init__(self) -> None:
        if self.max_skips < 1:
            raise SchedulerError("max_skips must be >= 1")

    def should_wait(self, task: MapTask) -> bool:
        """Wait while the task's skip budget lasts, then concede."""
        if task.skip_count < self.max_skips:
            task.skip_count += 1
            return True
        return False
