"""Command-line interface: regenerate figures, traces and ablations.

Usage (installed as ``python -m repro``):

.. code-block:: text

    python -m repro figures --out results/ --figures 3 6
    python -m repro figures --quick            # small-scale smoke run
    python -m repro trace yahoo --out trace.jsonl --files 120 --hours 3
    python -m repro trace swim --out swim.jsonl --scale-to 10
    python -m repro ablation --out results/
    python -m repro scale --solver             # solver speedup benchmark
    python -m repro chaos --profiles crash partition flaky --hours 2
    python -m repro chaos --bit-rot --quick   # silent-corruption chaos
    python -m repro scrub --scrub-mbps 64     # background-scrubber demo
    python -m repro overload --load 1.5 --minutes 10
    python -m repro fsck --profiles crash --hours 1 --json fsck.json
    python -m repro metrics --demo             # observability smoke run
    python -m repro metrics --from snap.json   # re-render a saved snapshot
    python -m repro chaos --quick --telemetry-out tel/
    python -m repro report tel/ --out report/  # HTML + markdown dashboard
    python -m repro traces tel/ --top 5        # slowest causal traces
    python -m repro -v figures --quick         # INFO-level run logging

All commands are deterministic for a given ``--seed``.  ``-v``/``-q``
(repeatable) raise or lower the log level; ``figures --metrics-out DIR``
dumps one observability snapshot per figure.  ``--telemetry-out DIR``
(on ``figures``/``chaos``/``overload``) instead captures the full
telemetry pipeline — sim-clock time series, causal traces, SLO verdicts
— which ``report`` and ``traces`` then render offline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.experiments.ablation import (
    make_instance,
    render_ablations,
    run_epsilon_ablation,
    run_factor_ablation,
    run_initial_placement_ablation,
)
from repro.experiments.fig3 import default_trace, render_fig3, run_fig3
from repro.experiments.fig4 import render_fig4, run_fig4
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.fig6 import render_fig6, run_fig6
from repro.experiments.harness import (
    ClusterConfig,
    ExperimentConfig,
    SystemKind,
    run_experiment,
)
from repro.workload.stats import describe_trace
from repro.workload.swim import SwimTraceConfig, generate_swim_trace, scale_down
from repro.workload.yahoo import YahooTraceConfig, generate_yahoo_trace

__all__ = ["main"]

_QUICK_CLUSTER = ClusterConfig(
    num_racks=3, machines_per_rack=3, capacity_blocks=150,
    slots_per_machine=2,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aurora (ICDCS 2015) reproduction toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise the log level (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="lower the log level (-q ERROR, -qq CRITICAL)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's evaluation figures"
    )
    figures.add_argument(
        "--figures", nargs="+", type=int, default=[3, 4, 5, 6],
        choices=[3, 4, 5, 6], help="which figures to run",
    )
    figures.add_argument("--out", type=Path, default=Path("results"))
    figures.add_argument("--seed", type=int, default=0)
    figures.add_argument(
        "--epsilons", nargs="+", type=float, default=[0.1, 0.6, 0.8],
    )
    figures.add_argument(
        "--quick", action="store_true",
        help="tiny cluster and trace for a fast smoke run",
    )
    figures.add_argument(
        "--metrics-out", type=Path, default=None,
        help="directory for per-figure observability snapshots "
             "(figN.metrics.json); enables metric collection",
    )
    figures.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the independent cases of each figure "
             "(results are identical to --jobs 1)",
    )
    figures.add_argument(
        "--telemetry-out", type=Path, default=None,
        help="also run one instrumented Aurora replay of the figure "
             "workload and write its telemetry directory here (for "
             "'repro report' / 'repro traces')",
    )

    trace = sub.add_parser("trace", help="generate a workload trace")
    trace.add_argument("kind", choices=["yahoo", "swim"])
    trace.add_argument("--out", type=Path, required=True)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--files", type=int, default=120)
    trace.add_argument("--jobs-per-hour", type=float, default=550.0)
    trace.add_argument("--hours", type=float, default=3.0)
    trace.add_argument(
        "--scale-to", type=int, default=None,
        help="SWIM only: scale the 600-node workload down to N nodes",
    )

    ablation = sub.add_parser("ablation", help="run the design ablations")
    ablation.add_argument("--out", type=Path, default=Path("results"))
    ablation.add_argument("--seed", type=int, default=0)
    ablation.add_argument("--blocks", type=int, default=300)

    scale = sub.add_parser(
        "scale", help="run the cluster-size study (E14)"
    )
    scale.add_argument("--out", type=Path, default=Path("results"))
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument(
        "--machines-per-rack", nargs="+", type=int, default=[3, 5, 8],
    )
    scale.add_argument("--hours", type=float, default=2.0)
    scale.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the (size, system) cases",
    )
    scale.add_argument(
        "--solver", action="store_true",
        help="instead run the solver scale study: incremental local-search "
             "engine timed against the naive reference solver",
    )
    scale.add_argument(
        "--columnar", action="store_true",
        help="instead run the columnar engine scale study: array-backed "
             "placement state timed against the dict/heap incremental "
             "engine, plus the rack-partitioned solver",
    )
    scale.add_argument(
        "--machines", type=int, default=None,
        help="columnar study: run one point with ~N machines "
             "(racks of 16) instead of the default size ladder",
    )
    scale.add_argument(
        "--blocks", type=int, default=None,
        help="columnar study: blocks for the --machines point "
             "(default: 10 per machine)",
    )
    scale.add_argument(
        "--ops", type=int, default=None,
        help="columnar study: operation budget per engine for the "
             "--machines point (0 = run to convergence; default 8000)",
    )
    scale.add_argument(
        "--partitions", type=int, default=4,
        help="columnar study: rack partitions for the partitioned solver",
    )

    sensitivity = sub.add_parser(
        "sensitivity", help="sweep the W and K operator knobs (E16)"
    )
    sensitivity.add_argument("--out", type=Path, default=Path("results"))
    sensitivity.add_argument("--seed", type=int, default=0)
    sensitivity.add_argument("--hours", type=float, default=2.0)
    sensitivity.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep's independent settings",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection storm and report resilience",
    )
    chaos.add_argument("--out", type=Path, default=Path("results"))
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--hours", type=float, default=2.0)
    chaos.add_argument(
        "--profiles", nargs="+",
        default=["crash", "partition", "flaky"],
        choices=["crash", "gray", "partition", "flaky", "msgloss"],
        help="fault profiles to arm",
    )
    chaos.add_argument(
        "--throttle", type=int, default=8,
        help="max concurrent re-replication transfers (0 = unlimited)",
    )
    chaos.add_argument(
        "--metrics-out", type=Path, default=None,
        help="write an observability snapshot of the run here",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="small cluster, short dense storm: a fast smoke run that "
             "still yields traces and SLO verdicts",
    )
    chaos.add_argument(
        "--telemetry-out", type=Path, default=None,
        help="capture the full telemetry pipeline (time series, causal "
             "traces, SLOs) into this directory",
    )
    chaos.add_argument(
        "--trace-sample-rate", type=float, default=0.1,
        help="fraction of client reads that get a causal trace "
             "(with --telemetry-out)",
    )
    chaos.add_argument(
        "--kill-leader", action="store_true",
        help="run the HA leader-kill scenario (replicated metadata "
             "plane) instead of the datanode fault storm",
    )
    chaos.add_argument(
        "--replicas", type=int, default=3,
        help="namenode replicas for --kill-leader",
    )
    chaos.add_argument(
        "--bit-rot", action="store_true",
        help="run the silent-corruption scenario (bit-rot + torn "
             "writes vs the scrubber) instead of the outage storm",
    )

    scrub = sub.add_parser(
        "scrub",
        help="demo the background block scrubber: silent corruption "
             "detected and repaired before clients notice",
    )
    scrub.add_argument("--out", type=Path, default=Path("results"))
    scrub.add_argument("--seed", type=int, default=0)
    scrub.add_argument("--hours", type=float, default=2.0)
    scrub.add_argument(
        "--scrub-interval", type=float, default=30.0,
        help="seconds between scrubber ticks",
    )
    scrub.add_argument(
        "--scrub-mbps", type=float, default=256.0,
        help="scrubber read-back bandwidth budget (MB/s)",
    )
    scrub.add_argument(
        "--bitrot-mtbf", type=float, default=3600.0,
        help="per-machine mean seconds between bit-rot strikes",
    )
    scrub.add_argument(
        "--json", type=Path, default=None,
        help="write the machine-readable result summary here",
    )

    ha = sub.add_parser(
        "ha",
        help="demo the replicated metadata plane: kill the leader "
             "mid-optimization and watch the failover timeline",
    )
    ha.add_argument("--out", type=Path, default=Path("results"))
    ha.add_argument("--seed", type=int, default=0)
    ha.add_argument("--replicas", type=int, default=3)
    ha.add_argument(
        "--kill-at", type=float, default=950.0,
        help="sim seconds at which the leader replica dies",
    )

    overload = sub.add_parser(
        "overload",
        help="run an overload storm, protected vs unprotected",
    )
    overload.add_argument("--out", type=Path, default=Path("results"))
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument(
        "--minutes", type=float, default=10.0,
        help="storm duration before the drain phase",
    )
    overload.add_argument(
        "--load", type=float, default=1.5,
        help="offered read load as a multiple of cluster capacity",
    )
    overload.add_argument(
        "--policy", default="priority",
        choices=["reject", "drop_oldest", "priority"],
        help="shed policy for the bounded service queues",
    )
    overload.add_argument(
        "--protected-only", action="store_true",
        help="skip the unprotected baseline run",
    )
    overload.add_argument(
        "--metrics-out", type=Path, default=None,
        help="write an observability snapshot of the run here",
    )
    overload.add_argument(
        "--telemetry-out", type=Path, default=None,
        help="capture telemetry here (paired runs write protected/ and "
             "unprotected/ subdirectories)",
    )
    overload.add_argument(
        "--trace-sample-rate", type=float, default=0.1,
        help="fraction of client reads that get a causal trace "
             "(with --telemetry-out)",
    )

    fsck = sub.add_parser(
        "fsck",
        help="run the cluster invariant checker after a seeded storm",
    )
    fsck.add_argument("--seed", type=int, default=0)
    fsck.add_argument("--hours", type=float, default=1.0)
    fsck.add_argument(
        "--profiles", nargs="+",
        default=["crash", "partition", "flaky"],
        choices=["crash", "gray", "partition", "flaky", "msgloss"],
        help="fault profiles to arm before checking",
    )
    fsck.add_argument(
        "--json", type=Path, default=None,
        help="write the machine-readable fsck report here",
    )

    metrics = sub.add_parser(
        "metrics",
        help="expose the observability registry (Prometheus text / JSON)",
    )
    metrics.add_argument(
        "--demo", action="store_true",
        help="run a small instrumented Aurora workload first, so the "
             "registry has something to show",
    )
    metrics.add_argument(
        "--out", type=Path, default=None,
        help="also write the JSON snapshot (metrics plus spans) here",
    )
    metrics.add_argument(
        "--from", dest="from_file", type=Path, default=None, metavar="FILE",
        help="render a previously written JSON snapshot instead of the "
             "live registry",
    )
    metrics.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report",
        help="render a telemetry directory as an HTML + markdown dashboard",
    )
    report.add_argument(
        "telemetry", type=Path,
        help="telemetry directory written by --telemetry-out",
    )
    report.add_argument(
        "--out", type=Path, default=None,
        help="directory for report.html / report.md "
             "(default: the telemetry directory itself)",
    )
    report.add_argument(
        "--top", type=int, default=5,
        help="slowest traces to include in the dashboard",
    )

    traces = sub.add_parser(
        "traces",
        help="dump causal request traces from a telemetry directory",
    )
    traces.add_argument(
        "telemetry", type=Path,
        help="telemetry directory written by --telemetry-out",
    )
    traces.add_argument(
        "--top", type=int, default=5,
        help="how many of the slowest traces to print",
    )
    traces.add_argument(
        "--trace-id", type=int, default=None,
        help="print one specific trace instead of the top-N",
    )
    traces.add_argument(
        "--json", type=Path, default=None,
        help="also write the selected traces as JSON here",
    )

    serve = sub.add_parser(
        "serve",
        help="run the cluster as real namenode/datanode processes",
    )
    serve.add_argument(
        "--racks", type=int, default=2, help="number of racks",
    )
    serve.add_argument(
        "--datanodes-per-rack", type=int, default=2,
        help="datanode processes per rack",
    )
    serve.add_argument(
        "--capacity", type=int, default=128,
        help="per-datanode capacity in blocks",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="namenode port (0 = ephemeral)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0,
        help="datanode heartbeat period in seconds",
    )
    serve.add_argument(
        "--heartbeat-expiry", type=float, default=4.0,
        help="seconds without a beat before a datanode is declared dead",
    )
    serve.add_argument(
        "--replication", type=int, default=2,
        help="default replication factor",
    )
    serve.add_argument(
        "--aurora-period", type=float, default=30.0,
        help="Aurora optimizer period in seconds (0 disables)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="boot on ephemeral ports, verify health, exit 0/1",
    )
    serve.add_argument(
        "--demo", action="store_true",
        help="write/read through the SDK, kill a datanode, verify repair",
    )
    serve.add_argument(
        "--json", type=Path, default=None,
        help="also write the --check/--demo result as JSON here",
    )
    serve.add_argument("--seed", type=int, default=0)
    # Internal: how the supervisor launches its child processes.
    serve.add_argument(
        "--role", choices=["namenode", "datanode"], default=None,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--node-id", type=int, default=0, help=argparse.SUPPRESS,
    )
    serve.add_argument("--namenode", default=None, help=argparse.SUPPRESS)
    serve.add_argument("--announce", default=None, help=argparse.SUPPRESS)
    serve.add_argument("--leader", default=None, help=argparse.SUPPRESS)
    return parser


def _cmd_figures(args: argparse.Namespace) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    epsilons = tuple(args.epsilons)
    if args.quick:
        cluster: Optional[ClusterConfig] = _QUICK_CLUSTER
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=25, jobs_per_hour=150.0, duration_hours=1.5,
            mean_task_duration=60.0, seed=args.seed,
        ))
    else:
        cluster = None
        trace = default_trace(seed=args.seed)
    runners = {
        3: lambda: render_fig3(run_fig3(
            trace=trace, cluster=cluster, epsilons=epsilons, seed=args.seed,
            jobs=args.jobs)),
        4: lambda: render_fig4(run_fig4(
            trace=trace, cluster=cluster, epsilons=epsilons, seed=args.seed,
            jobs=args.jobs)),
        5: lambda: render_fig5(run_fig5(
            trace=trace, cluster=cluster, epsilons=epsilons, seed=args.seed,
            jobs=args.jobs)),
        6: lambda: render_fig6(run_fig6(seed=args.seed)),
    }
    if args.metrics_out is not None:
        obs.enable()
        args.metrics_out.mkdir(parents=True, exist_ok=True)
    for number in args.figures:
        if args.metrics_out is not None:
            obs.get_registry().reset()
            obs.get_tracer().clear()
        text = runners[number]()
        target = args.out / f"fig{number}.txt"
        target.write_text(text + "\n", encoding="utf-8")
        print(text)
        print(f"[written {target}]")
        if args.metrics_out is not None:
            snapshot = obs.write_snapshot(
                args.metrics_out / f"fig{number}.metrics.json"
            )
            print(f"[written {snapshot}]")
        print()
    if args.telemetry_out is not None:
        from repro.obs.telemetry import TelemetrySession

        # The figure sweeps share one workload; a single instrumented
        # Aurora replay of it is what the dashboard reports on.
        session = TelemetrySession(
            label="figures-reference", seed=args.seed, interval=60.0,
        )
        session.meta.update({
            "command": "figures",
            "quick": args.quick,
            "epsilon": epsilons[0],
        })
        run_experiment(
            trace,
            ExperimentConfig(
                system=SystemKind.AURORA,
                cluster=cluster or ClusterConfig(),
                epsilon=epsilons[0],
                seed=args.seed,
            ),
            telemetry=session,
        )
        print(f"[written {session.write(args.telemetry_out)}]")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.kind == "yahoo":
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=args.files,
            jobs_per_hour=args.jobs_per_hour,
            duration_hours=args.hours,
            seed=args.seed,
        ))
    else:
        trace = generate_swim_trace(SwimTraceConfig(
            num_files=args.files,
            jobs_per_hour=args.jobs_per_hour,
            duration_hours=args.hours,
            seed=args.seed,
        ))
        if args.scale_to is not None:
            trace = scale_down(trace, source_nodes=600,
                               target_nodes=args.scale_to)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    trace.dump(args.out)
    print(f"wrote {args.out}")
    print(describe_trace(trace))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    instance = make_instance(num_blocks=args.blocks, seed=args.seed)
    text = render_ablations(
        run_initial_placement_ablation(instance),
        run_factor_ablation(instance),
        run_epsilon_ablation(instance),
    )
    target = args.out / "ablations.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.experiments.scale import (
        render_columnar_scale_study,
        render_scale_study,
        render_solver_scale_study,
        run_columnar_scale_study,
        run_scale_study,
        run_solver_scale_study,
    )

    args.out.mkdir(parents=True, exist_ok=True)
    if args.columnar:
        if args.machines is not None:
            per_rack = 16
            num_racks = max(2, args.machines // per_rack)
            num_blocks = args.blocks
            if num_blocks is None:
                num_blocks = 10 * num_racks * per_rack
            budget = 8000 if args.ops is None else args.ops
            sizes = ((num_racks, per_rack, num_blocks,
                      None if budget == 0 else budget),)
            columnar_points = run_columnar_scale_study(
                sizes=sizes,
                seed=args.seed,
                num_partitions=args.partitions,
                jobs=args.jobs,
            )
        else:
            columnar_points = run_columnar_scale_study(
                seed=args.seed,
                num_partitions=args.partitions,
                jobs=args.jobs,
            )
        text = render_columnar_scale_study(columnar_points)
        target = args.out / "columnar_scale.txt"
        target.write_text(text + "\n", encoding="utf-8")
        print(text)
        print(f"[written {target}]")
        return 0 if all(p.healthy for p in columnar_points) else 1
    if args.solver:
        solver_points = run_solver_scale_study(seed=args.seed)
        text = render_solver_scale_study(solver_points)
        target = args.out / "solver_scale.txt"
        target.write_text(text + "\n", encoding="utf-8")
        print(text)
        print(f"[written {target}]")
        return 0 if all(p.results_match for p in solver_points) else 1
    points = run_scale_study(
        machines_per_rack_options=tuple(args.machines_per_rack),
        duration_hours=args.hours,
        seed=args.seed,
        jobs=args.jobs,
    )
    text = render_scale_study(points)
    target = args.out / "scale_study.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import (
        render_sensitivity,
        run_cap_sensitivity,
        run_window_sensitivity,
    )

    args.out.mkdir(parents=True, exist_ok=True)
    trace = default_trace(seed=args.seed, duration_hours=args.hours)
    window = render_sensitivity(
        run_window_sensitivity(trace, seed=args.seed, jobs=args.jobs),
        "usage window W (hours)",
    )
    cap = render_sensitivity(
        run_cap_sensitivity(trace, seed=args.seed, jobs=args.jobs),
        "replication cap K",
    )
    text = window + "\n\n" + cap
    target = args.out / "sensitivity.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import ChaosConfig, render_chaos, run_chaos
    from repro.obs.telemetry import TelemetrySession

    if args.kill_leader:
        return _cmd_kill_leader(args)
    if args.bit_rot:
        return _cmd_bit_rot(args)
    args.out.mkdir(parents=True, exist_ok=True)
    if args.metrics_out is not None:
        obs.enable()
        obs.get_registry().reset()
        obs.get_tracer().clear()
    throttle = args.throttle if args.throttle > 0 else None
    if args.quick:
        # Small cluster, short storm, dense reads and faster faults:
        # enough failovers and recovery episodes in ~30 simulated
        # minutes to exercise every telemetry stage.
        config = ChaosConfig(
            num_racks=3, machines_per_rack=3, capacity_blocks=100,
            num_files=8, horizon=1800.0, read_interval=5.0,
            crash_mtbf=600.0, partition_mtbf=900.0, drain=600.0,
            profiles=tuple(args.profiles),
            replication_throttle=throttle, seed=args.seed,
        )
    else:
        config = ChaosConfig(
            horizon=args.hours * 3600.0,
            profiles=tuple(args.profiles),
            replication_throttle=throttle,
            seed=args.seed,
        )
    session = None
    if args.telemetry_out is not None:
        session = TelemetrySession(
            label=f"chaos-{'-'.join(args.profiles)}",
            seed=args.seed,
            trace_sample_rate=args.trace_sample_rate,
            interval=min(60.0, config.read_interval * 3),
        )
        session.meta.update({
            "command": "chaos",
            "profiles": list(args.profiles),
            "horizon": config.horizon,
            "quick": args.quick,
        })
    result = run_chaos(config, telemetry=session)
    text = render_chaos(result)
    target = args.out / "chaos.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    if session is not None:
        print(f"[written {session.write(args.telemetry_out)}]")
    if args.metrics_out is not None:
        snapshot = obs.write_snapshot(args.metrics_out)
        print(f"[written {snapshot}]")
    # A chaos run that lost blocks or ended with an unhealthy namespace
    # is a failure — same 0/1 contract as ``repro fsck``.
    healthy = result.blocks_lost == 0 and (
        result.fsck is None or result.fsck.healthy
    )
    return 0 if healthy else 1


def _cmd_kill_leader(args: argparse.Namespace) -> int:
    """``repro chaos --kill-leader``: HA failover under workload."""
    from repro.experiments.chaos import (
        LeaderKillConfig,
        render_leader_kill,
        run_leader_kill,
    )
    from repro.obs.telemetry import TelemetrySession

    args.out.mkdir(parents=True, exist_ok=True)
    if args.metrics_out is not None:
        obs.enable()
        obs.get_registry().reset()
        obs.get_tracer().clear()
    if args.quick:
        config = LeaderKillConfig(
            num_replicas=args.replicas, seed=args.seed,
        )
    else:
        horizon = args.hours * 3600.0
        # Kill the leader just before the mid-run Aurora period tick,
        # so the outage interrupts one period and aborts the next.
        period = LeaderKillConfig.aurora_period
        kill_at = max(1.0, (horizon / 2) // period * period - 10.0)
        config = LeaderKillConfig(
            num_racks=4, machines_per_rack=4, capacity_blocks=300,
            horizon=horizon, kill_at=kill_at,
            num_replicas=args.replicas, seed=args.seed,
        )
    session = None
    if args.telemetry_out is not None:
        session = TelemetrySession(
            label="chaos-kill-leader",
            seed=args.seed,
            trace_sample_rate=args.trace_sample_rate,
            interval=min(60.0, config.read_interval * 3),
        )
        session.meta.update({
            "command": "chaos --kill-leader",
            "replicas": args.replicas,
            "horizon": config.horizon,
            "kill_at": config.kill_at,
            "quick": args.quick,
        })
    result = run_leader_kill(config, telemetry=session)
    text = render_leader_kill(result)
    target = args.out / "chaos_kill_leader.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    if session is not None:
        print(f"[written {session.write(args.telemetry_out)}]")
    if args.metrics_out is not None:
        snapshot = obs.write_snapshot(args.metrics_out)
        print(f"[written {snapshot}]")
    # Losing metadata across a failover is the one thing the HA plane
    # exists to prevent; surface it in the exit code.
    healthy = result.metadata_lost == 0 and (
        result.fsck is None or result.fsck.healthy
    )
    return 0 if healthy else 1


def _cmd_bit_rot(args: argparse.Namespace) -> int:
    """``repro chaos --bit-rot``: silent corruption vs the scrubber."""
    from repro.experiments.bitrot import (
        BitRotConfig,
        render_bit_rot,
        run_bit_rot,
    )
    from repro.obs.telemetry import TelemetrySession

    args.out.mkdir(parents=True, exist_ok=True)
    if args.metrics_out is not None:
        obs.enable()
        obs.get_registry().reset()
        obs.get_tracer().clear()
    if args.quick:
        # Short horizon, dense rot: every integrity path (quarantine,
        # verified-source repair, purge) fires within ~30 sim minutes.
        config = BitRotConfig(
            num_files=8, horizon=1800.0, bitrot_mtbf=600.0,
            tornwrite_mtbf=1200.0, drain=900.0, seed=args.seed,
        )
    else:
        config = BitRotConfig(
            horizon=args.hours * 3600.0, seed=args.seed,
        )
    session = None
    if args.telemetry_out is not None:
        session = TelemetrySession(
            label="chaos-bit-rot",
            seed=args.seed,
            trace_sample_rate=args.trace_sample_rate,
            interval=min(60.0, config.read_interval * 3),
        )
        session.meta.update({
            "command": "chaos --bit-rot",
            "horizon": config.horizon,
            "quick": args.quick,
        })
    result = run_bit_rot(config, telemetry=session)
    text = render_bit_rot(result)
    target = args.out / "chaos_bit_rot.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    if session is not None:
        print(f"[written {session.write(args.telemetry_out)}]")
    if args.metrics_out is not None:
        snapshot = obs.write_snapshot(args.metrics_out)
        print(f"[written {snapshot}]")
    # Same health contract as ``repro scrub``: lost or still-corrupt
    # data fails the run.
    healthy = (
        result.blocks_permanently_lost == 0
        and result.episodes_unrepaired == 0
        and (result.fsck is None or result.fsck.healthy)
    )
    return 0 if healthy else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    """``repro scrub``: background-scrubber demo with custom knobs."""
    import json

    from repro.experiments.bitrot import (
        BitRotConfig,
        render_bit_rot,
        run_bit_rot,
    )

    args.out.mkdir(parents=True, exist_ok=True)
    config = BitRotConfig(
        horizon=args.hours * 3600.0,
        scrub_interval=args.scrub_interval,
        scrub_bytes_per_second=args.scrub_mbps * 1024 * 1024,
        bitrot_mtbf=args.bitrot_mtbf,
        seed=args.seed,
    )
    result = run_bit_rot(config)
    text = render_bit_rot(result)
    target = args.out / "scrub.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(result.summary(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"[written {args.json}]")
    # A scrub demo that loses data or leaves rot unrepaired is a
    # failure, same contract as ``repro fsck``.
    healthy = (
        result.blocks_permanently_lost == 0
        and result.episodes_unrepaired == 0
        and (result.fsck is None or result.fsck.healthy)
    )
    return 0 if healthy else 1


def _cmd_ha(args: argparse.Namespace) -> int:
    """``repro ha``: quick replicated-metadata-plane demo."""
    from repro.experiments.chaos import (
        LeaderKillConfig,
        render_leader_kill,
        run_leader_kill,
    )

    args.out.mkdir(parents=True, exist_ok=True)
    config = LeaderKillConfig(
        num_replicas=args.replicas, kill_at=args.kill_at, seed=args.seed,
    )
    result = run_leader_kill(config)
    text = render_leader_kill(result)
    target = args.out / "ha.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    healthy = result.metadata_lost == 0 and (
        result.fsck is None or result.fsck.healthy
    )
    return 0 if healthy else 1


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.experiments.overload import (
        OverloadStormConfig,
        render_overload,
        render_overload_pair,
        run_overload,
        run_overload_pair,
    )

    from repro.obs.telemetry import TelemetrySession

    args.out.mkdir(parents=True, exist_ok=True)
    if args.metrics_out is not None:
        obs.enable()
        obs.get_registry().reset()
        obs.get_tracer().clear()
    config = OverloadStormConfig(
        horizon=args.minutes * 60.0,
        load_multiplier=args.load,
        shed_policy=args.policy,
        seed=args.seed,
    )

    def make_session(label: str) -> Optional[TelemetrySession]:
        if args.telemetry_out is None:
            return None
        session = TelemetrySession(
            label=label, seed=args.seed,
            trace_sample_rate=args.trace_sample_rate,
            interval=config.tick * 2,
        )
        session.meta.update({
            "command": "overload",
            "load_multiplier": config.load_multiplier,
            "shed_policy": config.shed_policy,
            "horizon": config.horizon,
        })
        return session

    if args.protected_only:
        session = make_session("overload-protected")
        protected = run_overload(config, telemetry=session)
        results = [protected]
        text = render_overload(protected)
        if session is not None:
            print(f"[written {session.write(args.telemetry_out)}]")
    else:
        protected_session = make_session("overload-protected")
        unprotected_session = make_session("overload-unprotected")
        written = []

        def flush_protected() -> None:
            # The second leg's install() clears the shared span buffer,
            # so the protected leg must hit disk between the two runs.
            if protected_session is not None:
                written.append(protected_session.write(
                    args.telemetry_out / "protected"
                ))

        protected, unprotected = run_overload_pair(
            config,
            telemetry=protected_session,
            unprotected_telemetry=unprotected_session,
            between=flush_protected,
        )
        results = [protected, unprotected]
        if unprotected_session is not None:
            written.append(unprotected_session.write(
                args.telemetry_out / "unprotected"
            ))
        for path in written:
            print(f"[written {path}]")
        text = "\n\n".join([
            render_overload_pair(protected, unprotected),
            render_overload(protected),
            render_overload(unprotected),
        ])
    target = args.out / "overload.txt"
    target.write_text(text + "\n", encoding="utf-8")
    print(text)
    print(f"[written {target}]")
    if args.metrics_out is not None:
        snapshot = obs.write_snapshot(args.metrics_out)
        print(f"[written {snapshot}]")
    # Overload sheds reads by design, but it must never corrupt the
    # namespace — an unhealthy closing fsck in either leg fails the run.
    healthy = all(
        result.fsck is None or result.fsck.healthy for result in results
    )
    return 0 if healthy else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    import json

    from repro.dfs.fsck import render_fsck
    from repro.experiments.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        horizon=args.hours * 3600.0,
        profiles=tuple(args.profiles),
        seed=args.seed,
    )
    result = run_chaos(config)
    report = result.fsck
    assert report is not None  # run_chaos always checks
    print(render_fsck(report))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"[written {args.json}]")
    return 0 if report.healthy else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    if args.from_file is not None:
        # Offline mode: rehydrate a saved snapshot into a fresh registry
        # and render it, without touching the process-global state.
        data = json.loads(args.from_file.read_text(encoding="utf-8"))
        metrics = data.get("metrics", data) if isinstance(data, dict) else {}
        registry = obs.MetricsRegistry(enabled=True)
        registry.merge(metrics)
        text = obs.to_prometheus_text(registry)
        print(text, end="")
        series = sum(
            len(metric.get("series", {})) for metric in metrics.values()
        )
        spans = data.get("spans", []) if isinstance(data, dict) else []
        print(
            f"# snapshot {args.from_file}: {len(metrics)} metric(s), "
            f"{series} series, {len(spans)} span(s)"
        )
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text, encoding="utf-8")
            print(f"[written {args.out}]")
        return 0
    obs.enable()
    registry = obs.get_registry()
    tracer = obs.get_tracer()
    if args.demo:
        registry.reset()
        tracer.clear()
        # Two hours so the hourly reconfiguration period fires at least
        # once inside the horizon (exercising the core + aurora layers).
        trace = generate_yahoo_trace(YahooTraceConfig(
            num_files=15, jobs_per_hour=80.0, duration_hours=2.0,
            mean_task_duration=60.0, seed=args.seed,
        ))
        run_experiment(
            trace,
            ExperimentConfig(
                system=SystemKind.AURORA, cluster=_QUICK_CLUSTER,
                drain_hours=1.0, seed=args.seed,
            ),
        )
    print(obs.to_prometheus_text(registry), end="")
    if args.out is not None:
        obs.write_snapshot(args.out, registry, tracer)
        print(f"[written {args.out}]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import render_html, render_markdown
    from repro.obs.telemetry import TelemetryBundle

    bundle = TelemetryBundle.load(args.telemetry)
    out = args.out if args.out is not None else args.telemetry
    out.mkdir(parents=True, exist_ok=True)
    markdown = render_markdown(bundle, top_traces=args.top)
    html_target = out / "report.html"
    md_target = out / "report.md"
    html_target.write_text(
        render_html(bundle, top_traces=args.top), encoding="utf-8"
    )
    md_target.write_text(markdown + "\n", encoding="utf-8")
    print(markdown)
    print(f"[written {html_target}]")
    print(f"[written {md_target}]")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    import json

    from repro.obs.telemetry import TelemetryBundle
    from repro.obs.tracing import format_trace

    bundle = TelemetryBundle.load(args.telemetry)
    traces = bundle.traces()
    total = len(traces)
    if args.trace_id is not None:
        traces = [t for t in traces if t.trace_id == args.trace_id]
        if not traces:
            print(
                f"no trace {args.trace_id} among the {total} in "
                f"{args.telemetry}", file=sys.stderr,
            )
            return 1
    else:
        traces = traces[:args.top]
    for trace in traces:
        print(format_trace(trace))
        chain = " -> ".join(node.name for node in trace.critical_path())
        print(f"  critical path: {chain}")
        print()
    print(f"[{len(traces)} trace(s) shown of {total} recorded]")
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps([t.to_dict() for t in traces], indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"[written {args.json}]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the cluster as real processes over sockets."""
    import json
    import time

    from repro.serve.supervisor import (
        ClusterSupervisor,
        ServeConfig,
        run_datanode,
        run_namenode,
        serve_check,
        serve_demo,
    )

    # Child-process entrypoints (spawned by the supervisor).
    if args.role == "namenode":
        return run_namenode(args)
    if args.role == "datanode":
        return run_datanode(args)

    config = ServeConfig(
        num_racks=args.racks,
        datanodes_per_rack=args.datanodes_per_rack,
        capacity_blocks=args.capacity,
        host=args.host,
        port=args.port,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_expiry=args.heartbeat_expiry,
        default_replication=args.replication,
        aurora_period=args.aurora_period,
    )
    if args.check or args.demo:
        result = (
            serve_check(config) if args.check
            else serve_demo(config, seed=args.seed)
        )
        if args.json is not None:
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(
                json.dumps(result, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
            print(f"[written {args.json}]")
        for key, value in result.items():
            print(f"  {key:<28} {value}")
        return 0 if result.get("ok") else 1

    # Foreground mode: boot and serve until interrupted.
    supervisor = ClusterSupervisor(config)
    try:
        address = supervisor.start()
        supervisor.wait_ready()
        print(f"namenode listening on http://{address}")
        for node, dn_address in sorted(
            supervisor.datanode_addresses.items()
        ):
            print(f"  datanode {node} on http://{dn_address}")
        print("press Ctrl-C to stop")
        while supervisor.namenode_proc.poll() is None:
            time.sleep(0.5)
        print("namenode exited; shutting down")
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        supervisor.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    obs.configure(level=obs.verbosity_to_level(args.verbose, args.quiet))
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "ablation":
        return _cmd_ablation(args)
    if args.command == "scale":
        return _cmd_scale(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "scrub":
        return _cmd_scrub(args)
    if args.command == "ha":
        return _cmd_ha(args)
    if args.command == "overload":
        return _cmd_overload(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "traces":
        return _cmd_traces(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
