"""The client SDK: :class:`~repro.dfs.client.DfsClient` semantics over
real sockets.

A :class:`ServeClient` talks JSON-over-HTTP to one namenode (following
leader redirects when that namenode is a standby) and raw bytes to the
datanode processes.  The read path is a port of the simulated client's
failover walk, so chaos behaves identically on the wire:

* candidates come from the namenode in its ``replica_preference`` order
  and are walked in order, skipping nodes whose circuit breaker is open;
* a dead node (connection refused / reset / timeout) and a stale
  location (404) cost a backoff before the next attempt;
* an overload shed (503) and a corrupt read (checksum mismatch) fail
  over *without* backoff — the node answered instantly, just not
  usefully;
* every served read is verified against the shipped checksum; a
  mismatch is reported to the namenode (which quarantines the replica
  and schedules repair) and never returned to the caller;
* when one pass over the candidates is exhausted but the retry policy
  still admits, the SDK re-fetches locations — re-replication may have
  minted a fresh replica in the meantime;
* exhaustion raises the same exceptions as the in-process client:
  :class:`ChecksumError` when corruption was detected and never
  bypassed, :class:`OverloadSheddedError` when at least one replica
  shed and none served, :class:`DatanodeUnavailableError` otherwise.

Backoffs are real ``time.sleep`` waits driven by the same
:class:`~repro.faults.retry.RetryPolicy`; breakers are the same
:class:`~repro.overload.breaker.CircuitBreaker` objects, fed wall-clock
time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ChecksumError,
    DatanodeUnavailableError,
    DfsError,
    NoLeaderError,
    OverloadSheddedError,
)
from repro.faults.retry import RetryPolicy
from repro.overload.breaker import CircuitBreaker
from repro.serve.httpd import HttpCallError, http_call
from repro.serve.wire import (
    CreateFileRequest,
    FileInfo,
    LocateResponse,
    ReplicaLocation,
    ScrubSummary,
    decode_error,
    payload_checksum,
)

__all__ = ["ServeClient", "BlockRead"]


@dataclass
class BlockRead:
    """One successful over-the-wire block read."""

    block_id: int
    data: bytes
    source: int
    address: str
    attempts: int = 1
    failovers: int = 0
    backoff: float = 0.0
    checksum: int = 0

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class _Walk:
    """Accounting for one read's failover walk."""

    tried: List[Tuple[int, str]] = field(default_factory=list)
    failures: int = 0
    waited: float = 0.0
    shed_any: bool = False
    corrupt_any: bool = False


class ServeClient:
    """Synchronous SDK for the networked Aurora service."""

    def __init__(
        self,
        namenode_address: str,
        reader: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        breakers: Optional[Dict[int, CircuitBreaker]] = None,
        timeout: float = 10.0,
        max_redirects: int = 4,
    ) -> None:
        self.namenode_address = namenode_address
        self.reader = reader
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, base_delay=0.1, max_delay=2.0, jitter=0.1
        )
        self._rng = rng
        self.breakers = breakers
        self.timeout = timeout
        self.max_redirects = max_redirects
        # Mirrors of the in-process client's counters.
        self.read_failovers = 0
        self.read_errors = 0
        self.reads_shed = 0
        self.breaker_skips = 0
        self.checksum_failures = 0

    # -- namenode RPC ------------------------------------------------------

    def _namenode_call(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One metadata call, following leader redirects."""
        address = self.namenode_address
        for _hop in range(self.max_redirects + 1):
            status, body, headers = http_call(
                address, method, path, payload, timeout=self.timeout
            )
            if status == 307:
                leader = None
                if isinstance(body, dict):
                    leader = body.get("leader")
                if not leader:
                    location = headers.get("location", "")
                    leader = location.removeprefix("http://") or None
                if not leader:
                    raise NoLeaderError(
                        f"{address} redirected without naming a leader"
                    )
                address = leader
                continue
            if status >= 400:
                if isinstance(body, dict) and "error" in body:
                    raise decode_error(body)
                raise DfsError(f"{method} {path}: HTTP {status}")
            if not isinstance(body, dict):
                raise DfsError(f"{method} {path}: non-JSON response")
            return body
        raise NoLeaderError(
            f"gave up after {self.max_redirects} leader redirects"
        )

    # -- write path --------------------------------------------------------

    def write_file(
        self,
        path: str,
        blocks: Sequence[bytes],
        replication: Optional[int] = None,
        rack_spread: Optional[int] = None,
    ) -> FileInfo:
        """Create ``path`` and push every block through the write
        pipeline: bytes go to the first allocated replica, which
        forwards them hop-by-hop to the rest."""
        if not blocks:
            raise DfsError("a file needs at least one block")
        block_size = max(len(data) for data in blocks) or 1
        info = FileInfo.from_wire(self._namenode_call(
            "POST", "/v1/files",
            CreateFileRequest(
                path=path, num_blocks=len(blocks), block_size=block_size,
                replication=replication, rack_spread=rack_spread,
                writer=self.reader,
            ).to_wire(),
        ))
        for block, data in zip(info.blocks, blocks):
            self._push_block(block.block_id, block.locations, data)
        return info

    def _push_block(
        self,
        block_id: int,
        locations: Sequence[ReplicaLocation],
        data: bytes,
    ) -> None:
        if not locations:
            raise DatanodeUnavailableError(
                f"block {block_id} has no allocated replicas"
            )
        last_error: Optional[Exception] = None
        for head in range(len(locations)):
            primary = locations[head]
            pipeline = [
                loc.address for loc in locations if loc is not primary
            ]
            query = "?generation=0"
            if pipeline:
                query += f"&pipeline={','.join(pipeline)}"
            try:
                status, body, _ = http_call(
                    primary.address, "PUT",
                    f"/blocks/{block_id}{query}", data,
                    timeout=self.timeout,
                )
            except HttpCallError as exc:
                last_error = exc
                continue
            if status == 200 and isinstance(body, dict) and body.get("ok"):
                return
            last_error = DfsError(
                f"write of block {block_id} to {primary.address} "
                f"failed (HTTP {status})"
            )
        raise DatanodeUnavailableError(
            f"could not push block {block_id} to any allocated replica: "
            f"{last_error}"
        )

    # -- read path ---------------------------------------------------------

    def locate(self, block_id: int) -> LocateResponse:
        return LocateResponse.from_wire(self._namenode_call(
            "GET", f"/v1/blocks/{block_id}/locations?reader={self.reader}"
        ))

    def read_block(self, block_id: int) -> BlockRead:
        """Read one block, failing over across replicas as needed."""
        policy = self.retry_policy
        walk = _Walk()
        while True:
            candidates = [
                loc for loc in self.locate(block_id).candidates
                if (loc.node, loc.address) not in walk.tried
            ]
            made_progress = False
            for candidate in candidates:
                if not policy.admits(walk.failures, walk.waited):
                    break
                breaker = (self.breakers or {}).get(candidate.node)
                if breaker is not None and not breaker.allow(
                    time.monotonic()
                ):
                    self.breaker_skips += 1
                    continue
                made_progress = True
                result = self._attempt(block_id, candidate, walk)
                if result is not None:
                    result.failovers = walk.failures
                    result.attempts = walk.failures + 1
                    result.backoff = walk.waited
                    self.read_failovers += walk.failures
                    return result
            if not made_progress or not policy.admits(
                walk.failures, walk.waited
            ):
                break
            # One full pass failed but the policy still admits: the
            # namenode may have repaired or re-replicated by now, so
            # re-fetch locations and keep walking.
            walk.tried.clear()
        self.read_errors += 1
        if walk.corrupt_any:
            raise ChecksumError(
                f"no replica of block {block_id} served verified data"
            )
        if walk.shed_any:
            self.reads_shed += 1
            raise OverloadSheddedError(
                f"every replica of block {block_id} shed the read"
            )
        raise DatanodeUnavailableError(
            f"no replica of block {block_id} is reachable "
            f"({walk.failures} failures)"
        )

    def _attempt(
        self,
        block_id: int,
        candidate: ReplicaLocation,
        walk: _Walk,
    ) -> Optional[BlockRead]:
        """One read attempt; None means failed over (walk updated)."""
        walk.tried.append((candidate.node, candidate.address))
        breaker = (self.breakers or {}).get(candidate.node)
        backoff = True
        try:
            status, body, headers = http_call(
                candidate.address, "GET", f"/blocks/{block_id}",
                timeout=self.timeout,
            )
        except HttpCallError:
            status, body, headers = -1, b"", {}
        if status == 200 and isinstance(body, bytes):
            claimed = int(headers.get("x-repro-checksum", "-1"))
            if payload_checksum(body) == claimed:
                if breaker is not None:
                    breaker.record_success(time.monotonic())
                self._report_access(block_id, candidate.node)
                return BlockRead(
                    block_id=block_id, data=body, source=candidate.node,
                    address=candidate.address, checksum=claimed,
                )
            # Corrupt bytes: report (namenode quarantines + repairs),
            # fail over immediately — the node answered fast, the next
            # replica is the fix, waiting buys nothing.
            self.checksum_failures += 1
            walk.corrupt_any = True
            backoff = False
            self._report_corrupt(block_id, candidate.node)
        elif status == 503:
            walk.shed_any = True
            backoff = False
        if breaker is not None:
            breaker.record_failure(time.monotonic())
        walk.failures += 1
        if backoff and self.retry_policy.admits(walk.failures, walk.waited):
            delay = self.retry_policy.delay(walk.failures, self._rng)
            time.sleep(delay)
            walk.waited += delay
        return None

    def _report_access(self, block_id: int, source: int) -> None:
        try:
            self._namenode_call(
                "POST", f"/v1/blocks/{block_id}/access",
                {"reader": self.reader, "source": source},
            )
        except (DfsError, HttpCallError):
            pass  # accounting is best-effort

    def _report_corrupt(self, block_id: int, node: int) -> None:
        try:
            self._namenode_call(
                "POST", f"/v1/blocks/{block_id}/corrupt",
                {"node": node, "detector": "client"},
            )
        except (DfsError, HttpCallError):
            pass

    # -- namespace / admin -------------------------------------------------

    def lookup(self, path: str) -> FileInfo:
        from urllib.parse import quote

        return FileInfo.from_wire(self._namenode_call(
            "GET", f"/v1/files?path={quote(path, safe='')}"
        ))

    def read_file(self, path: str) -> List[BlockRead]:
        return [
            self.read_block(block.block_id)
            for block in self.lookup(path).blocks
        ]

    def delete_file(self, path: str) -> None:
        from urllib.parse import quote

        self._namenode_call(
            "DELETE", f"/v1/files?path={quote(path, safe='')}"
        )

    def list_files(self) -> List[str]:
        return list(self._namenode_call("GET", "/v1/files")["paths"])

    def set_replication(self, path: str, factor: int) -> None:
        self._namenode_call(
            "POST", "/v1/files/replication",
            {"path": path, "factor": factor},
        )

    def fsck(self, verify: bool = False) -> Dict[str, Any]:
        suffix = "?verify=1" if verify else ""
        return self._namenode_call("GET", f"/v1/fsck{suffix}")

    def scrub(self) -> ScrubSummary:
        return ScrubSummary.from_wire(
            self._namenode_call("POST", "/v1/scrub")
        )

    def status(self) -> Dict[str, Any]:
        return self._namenode_call("GET", "/v1/status")

    def healthz(self) -> Dict[str, Any]:
        return self._namenode_call("GET", "/healthz")
