"""Aurora over the wire: the networked namenode/datanode service.

The package keeps the discrete-event path untouched and adds a real
deployment mode next to it:

* :mod:`repro.serve.wire` — JSON schemas + the exception codec;
* :mod:`repro.serve.httpd` — stdlib asyncio HTTP server and sync client;
* :mod:`repro.serve.namenode_service` — the metadata process (the real
  :class:`~repro.dfs.namenode.Namenode` re-based onto wall time, with
  replication transfers rewired to datanode-to-datanode pulls);
* :mod:`repro.serve.datanode_service` — the block-bytes process;
* :mod:`repro.serve.client` — the SDK with the simulated client's
  failover/breaker semantics over sockets;
* :mod:`repro.serve.backend` — the transport-agnostic
  :class:`~repro.serve.backend.DfsBackend` surface both modes implement;
* :mod:`repro.serve.supervisor` — process spawning, the ``--check``
  boot probe, and the ``--demo`` chaos drill.
"""

from repro.serve.backend import DfsBackend, SimBackend
from repro.serve.client import BlockRead, ServeClient
from repro.serve.wire import (
    WIRE_SCHEMAS,
    decode_error,
    encode_error,
    payload_checksum,
)

__all__ = [
    "DfsBackend",
    "SimBackend",
    "BlockRead",
    "ServeClient",
    "WIRE_SCHEMAS",
    "decode_error",
    "encode_error",
    "payload_checksum",
]
